"""Learning-rate schedules.

:class:`MultiStepLR` reproduces the CNN recipe (decay by 0.1 at fixed epochs);
:class:`NoamLR` reproduces the Transformer warmup schedule from
"Attention Is All You Need", which the paper follows for the WMT14 experiments.
"""

from __future__ import annotations

from .optimizer import Optimizer

__all__ = ["LRScheduler", "MultiStepLR", "NoamLR", "CosineAnnealingLR"]


class LRScheduler:
    """Base class: scales every parameter group's initial LR by a factor."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lrs = [group["lr"] for group in optimizer.param_groups]
        self.last_step = 0

    def get_factor(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.last_step += 1
        factor = self.get_factor(self.last_step)
        for group, base_lr in zip(self.optimizer.param_groups, self.base_lrs):
            group["lr"] = base_lr * factor

    def current_lrs(self) -> list[float]:
        return [group["lr"] for group in self.optimizer.param_groups]

    def state_dict(self) -> dict:
        """Serializable snapshot: step counter plus the base learning rates."""
        return {"last_step": self.last_step, "base_lrs": list(self.base_lrs)}

    def load_state_dict(self, state: dict) -> None:
        """Restore the step counter and re-apply the schedule to the optimizer.

        At ``last_step == 0`` no step has happened yet, so groups go back to
        their base LRs — restoring a step-0 snapshot over a decayed optimizer
        must undo the decay, not leave it in place.
        """
        self.last_step = int(state["last_step"])
        self.base_lrs = [float(lr) for lr in state["base_lrs"]]
        factor = self.get_factor(self.last_step) if self.last_step > 0 else 1.0
        for group, base_lr in zip(self.optimizer.param_groups, self.base_lrs):
            group["lr"] = base_lr * factor


class MultiStepLR(LRScheduler):
    """Multiply the LR by ``gamma`` each time a milestone epoch is passed."""

    def __init__(self, optimizer: Optimizer, milestones: list[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_factor(self, step: int) -> float:
        passed = sum(1 for milestone in self.milestones if step >= milestone)
        return self.gamma ** passed


class NoamLR(LRScheduler):
    """Inverse-square-root schedule with linear warmup (Transformer training)."""

    def __init__(self, optimizer: Optimizer, model_dim: int, warmup_steps: int = 4000,
                 scale: float = 1.0):
        super().__init__(optimizer)
        self.model_dim = model_dim
        self.warmup_steps = warmup_steps
        self.scale = scale

    def get_factor(self, step: int) -> float:
        step = max(step, 1)
        return self.scale * (self.model_dim ** -0.5) * min(step ** -0.5,
                                                           step * self.warmup_steps ** -1.5)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_factor`` of it over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_factor: float = 0.0):
        super().__init__(optimizer)
        self.total_steps = max(total_steps, 1)
        self.min_factor = min_factor

    def get_factor(self, step: int) -> float:
        import math
        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_factor + (1.0 - self.min_factor) * cosine
