"""Adam optimizer, used for the Transformer translation experiments."""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments and optional weight decay."""

    def __init__(self, parameters, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.98),
                 eps: float = 1e-9, weight_decay: float = 0.0):
        defaults = {"lr": lr, "betas": betas, "eps": eps, "weight_decay": weight_decay}
        super().__init__(parameters, defaults)

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            for parameter in group["params"]:
                if parameter.grad is None:
                    continue
                grad = parameter.grad
                if weight_decay:
                    grad = grad + weight_decay * parameter.data
                state = self._param_state(parameter)
                if not state:
                    state.update({
                        "step": 0,
                        "m": np.zeros_like(parameter.data),
                        "v": np.zeros_like(parameter.data),
                    })
                state["step"] += 1
                state["m"] = beta1 * state["m"] + (1 - beta1) * grad
                state["v"] = beta2 * state["v"] + (1 - beta2) * grad * grad
                m_hat = state["m"] / (1 - beta1 ** state["step"])
                v_hat = state["v"] / (1 - beta2 ** state["step"])
                parameter.data -= lr * m_hat / (np.sqrt(v_hat) + eps)
