"""Optimizers and learning-rate schedules."""

from .optimizer import Optimizer, split_parameter_groups
from .sgd import SGD
from .adam import Adam
from .lr_scheduler import LRScheduler, MultiStepLR, NoamLR, CosineAnnealingLR

__all__ = [
    "Optimizer",
    "split_parameter_groups",
    "SGD",
    "Adam",
    "LRScheduler",
    "MultiStepLR",
    "NoamLR",
    "CosineAnnealingLR",
]
