"""Optimizer base class with parameter groups.

Parameter groups are essential for this reproduction: the paper trains the
eigenvalue parameters Λᵏ of the proposed quadratic neuron with a much smaller
learning rate (1e-4 to 1e-6) than the rest of the network (0.1).
:func:`split_parameter_groups` builds exactly that split from the ``tag``
attribute carried by :class:`repro.nn.Parameter`.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module, Parameter

__all__ = ["Optimizer", "split_parameter_groups"]


class Optimizer:
    """Base optimizer managing parameter groups and gradient clearing."""

    def __init__(self, parameters, defaults: dict):
        self.defaults = dict(defaults)
        self.param_groups: list[dict] = []
        parameters = list(parameters)
        if parameters and isinstance(parameters[0], dict):
            for group in parameters:
                self.add_param_group(group)
        else:
            self.add_param_group({"params": parameters})

    def add_param_group(self, group: dict) -> None:
        resolved = dict(self.defaults)
        resolved.update({key: value for key, value in group.items() if key != "params"})
        resolved["params"] = list(group["params"])
        self.param_groups.append(resolved)

    def parameters(self) -> list[Parameter]:
        return [parameter for group in self.param_groups for parameter in group["params"]]

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place; returns the pre-clip norm."""
        grads = [p.grad for p in self.parameters() if p.grad is not None]
        if not grads:
            return 0.0
        total_norm = float(np.sqrt(sum(float((g.astype(np.float64) ** 2).sum()) for g in grads)))
        if total_norm > max_norm and total_norm > 0:
            scale = max_norm / total_norm
            for parameter in self.parameters():
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return total_norm

    def step(self) -> None:
        raise NotImplementedError


def split_parameter_groups(model: Module, base_lr: float, quadratic_lr: float,
                           **common) -> list[dict]:
    """Split a model's parameters into linear and quadratic learning-rate groups.

    Parameters tagged ``"quadratic"`` (the Λᵏ eigenvalues of the proposed
    neuron) go into a group with ``quadratic_lr``; everything else uses
    ``base_lr``.  This mirrors the training recipe of Sec. IV of the paper.
    """
    linear_params, quadratic_params = [], []
    for parameter in model.parameters():
        if getattr(parameter, "tag", "linear") == "quadratic":
            quadratic_params.append(parameter)
        else:
            linear_params.append(parameter)
    groups = [{"params": linear_params, "lr": base_lr, **common}]
    if quadratic_params:
        groups.append({"params": quadratic_params, "lr": quadratic_lr, **common})
    return groups
