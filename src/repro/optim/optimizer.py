"""Optimizer base class with parameter groups.

Parameter groups are essential for this reproduction: the paper trains the
eigenvalue parameters Λᵏ of the proposed quadratic neuron with a much smaller
learning rate (1e-4 to 1e-6) than the rest of the network (0.1).
:func:`split_parameter_groups` builds exactly that split from the ``tag``
attribute carried by :class:`repro.nn.Parameter`.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module, Parameter

__all__ = ["Optimizer", "split_parameter_groups"]


class Optimizer:
    """Base optimizer managing parameter groups, per-parameter state and clearing.

    Subclasses keep all per-parameter state (momentum buffers, Adam moments,
    step counts) in :attr:`state` via :meth:`_param_state`, which makes
    :meth:`state_dict`/:meth:`load_state_dict` work uniformly: state is
    serialized keyed by the parameter's position in :meth:`parameters`, so a
    checkpoint can be restored into a freshly built optimizer as long as the
    model architecture (and therefore the parameter order) is unchanged.
    """

    def __init__(self, parameters, defaults: dict):
        self.defaults = dict(defaults)
        self.param_groups: list[dict] = []
        self.state: dict[int, dict] = {}
        parameters = list(parameters)
        if parameters and isinstance(parameters[0], dict):
            for group in parameters:
                self.add_param_group(group)
        else:
            self.add_param_group({"params": parameters})

    def add_param_group(self, group: dict) -> None:
        resolved = dict(self.defaults)
        resolved.update({key: value for key, value in group.items() if key != "params"})
        resolved["params"] = list(group["params"])
        self.param_groups.append(resolved)

    def parameters(self) -> list[Parameter]:
        return [parameter for group in self.param_groups for parameter in group["params"]]

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place; returns the pre-clip norm."""
        grads = [p.grad for p in self.parameters() if p.grad is not None]
        if not grads:
            return 0.0
        total_norm = float(np.sqrt(sum(float((g.astype(np.float64) ** 2).sum()) for g in grads)))
        if total_norm > max_norm and total_norm > 0:
            scale = max_norm / total_norm
            for grad in grads:
                grad *= scale
        return total_norm

    def step(self) -> None:
        raise NotImplementedError

    # -- per-parameter state and serialization ----------------------------------

    def _param_state(self, parameter: Parameter) -> dict:
        """Mutable state slot for one parameter (created on first access)."""
        return self.state.setdefault(id(parameter), {})

    def state_dict(self) -> dict:
        """Serializable snapshot: per-parameter state + group hyperparameters.

        Per-parameter state is keyed by the parameter's index in
        :meth:`parameters` (object identities do not survive a process
        restart).  Group hyperparameters include the *current* learning rates,
        so a scheduler-decayed LR is restored exactly.
        """
        parameters = self.parameters()
        state = {}
        for index, parameter in enumerate(parameters):
            per_param = self.state.get(id(parameter))
            if per_param:
                state[str(index)] = {
                    key: value.copy() if isinstance(value, np.ndarray) else value
                    for key, value in per_param.items()}
        groups = []
        for group in self.param_groups:
            saved = {key: value for key, value in group.items() if key != "params"}
            saved["num_params"] = len(group["params"])
            groups.append(saved)
        return {"state": state, "param_groups": groups}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this optimizer.

        The optimizer must have been constructed over the same parameter
        structure (same group count and sizes) as the one that was saved.
        """
        saved_groups = state["param_groups"]
        if len(saved_groups) != len(self.param_groups):
            raise ValueError(f"state dict has {len(saved_groups)} parameter groups, "
                             f"optimizer has {len(self.param_groups)}")
        for group, saved in zip(self.param_groups, saved_groups):
            expected = saved.get("num_params", len(group["params"]))
            if expected != len(group["params"]):
                raise ValueError(f"parameter group size mismatch: state dict has "
                                 f"{expected}, optimizer has {len(group['params'])}")
            group.update({key: _restore_hyper(value) for key, value in saved.items()
                          if key != "num_params"})
        parameters = self.parameters()
        self.state = {}
        for key, per_param in state["state"].items():
            index = int(key)
            if not 0 <= index < len(parameters):
                raise ValueError(f"state dict refers to parameter index {index}, "
                                 f"optimizer only has {len(parameters)} parameters")
            self.state[id(parameters[index])] = {
                name: np.array(value) if isinstance(value, (np.ndarray, list)) else value
                for name, value in per_param.items()}


def _restore_hyper(value):
    """Hyperparameters round-tripped through JSON come back as lists."""
    return tuple(value) if isinstance(value, list) else value


def split_parameter_groups(model: Module, base_lr: float, quadratic_lr: float,
                           **common) -> list[dict]:
    """Split a model's parameters into linear and quadratic learning-rate groups.

    Parameters tagged ``"quadratic"`` (the Λᵏ eigenvalues of the proposed
    neuron) go into a group with ``quadratic_lr``; everything else uses
    ``base_lr``.  This mirrors the training recipe of Sec. IV of the paper.
    """
    linear_params, quadratic_params = [], []
    for parameter in model.parameters():
        if getattr(parameter, "tag", "linear") == "quadratic":
            quadratic_params.append(parameter)
        else:
            linear_params.append(parameter)
    groups = [{"params": linear_params, "lr": base_lr, **common}]
    if quadratic_params:
        groups.append({"params": quadratic_params, "lr": quadratic_lr, **common})
    return groups
