"""Stochastic gradient descent with momentum and weight decay.

This is the optimizer used for all CNN experiments in the paper (SGD, 180
epochs, initial learning rate 0.1 decayed at epochs 90/135).
"""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with classical momentum and decoupled L2 weight decay."""

    def __init__(self, parameters, lr: float = 0.1, momentum: float = 0.9,
                 weight_decay: float = 0.0, nesterov: bool = False):
        defaults = {"lr": lr, "momentum": momentum, "weight_decay": weight_decay,
                    "nesterov": nesterov}
        super().__init__(parameters, defaults)

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            weight_decay = group["weight_decay"]
            nesterov = group["nesterov"]
            for parameter in group["params"]:
                if parameter.grad is None:
                    continue
                grad = parameter.grad
                if weight_decay:
                    grad = grad + weight_decay * parameter.data
                if momentum:
                    state = self._param_state(parameter)
                    velocity = state.get("momentum_buffer")
                    if velocity is None:
                        velocity = np.zeros_like(parameter.data)
                    velocity = momentum * velocity + grad
                    state["momentum_buffer"] = velocity
                    grad = grad + momentum * velocity if nesterov else velocity
                parameter.data -= lr * grad
