"""Per-layer parameter distribution analysis (Fig. 7 of the paper).

Fig. 7 plots the distribution of *linear* convolution weights and *quadratic*
eigenvalue parameters Λᵏ across the layers of a trained ResNet-20, observing
that the quadratic parameters collapse towards zero in some layers while
staying significant in others.  This module collects exactly those statistics
from any trained model built with the proposed neurons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from ..quadratic.efficient import EfficientQuadraticConv2d, EfficientQuadraticLinear

__all__ = ["LayerParameterStats", "collect_parameter_distribution", "quadratic_significance"]


@dataclass
class LayerParameterStats:
    """Distribution summary of one layer's parameters of one kind."""

    layer_index: int
    layer_name: str
    kind: str                   # "linear" or "quadratic"
    minimum: float
    maximum: float
    mean: float
    std: float
    quantile_05: float
    quantile_95: float
    count: int

    @classmethod
    def from_values(cls, layer_index: int, layer_name: str, kind: str,
                    values: np.ndarray) -> "LayerParameterStats":
        flat = np.asarray(values, dtype=np.float64).reshape(-1)
        return cls(
            layer_index=layer_index,
            layer_name=layer_name,
            kind=kind,
            minimum=float(flat.min()),
            maximum=float(flat.max()),
            mean=float(flat.mean()),
            std=float(flat.std()),
            quantile_05=float(np.quantile(flat, 0.05)),
            quantile_95=float(np.quantile(flat, 0.95)),
            count=int(flat.size),
        )


def collect_parameter_distribution(model: Module) -> list[LayerParameterStats]:
    """Walk the model and summarize linear vs quadratic parameters per neuron layer.

    Linear statistics come from the convolution / dense weights ``w`` (and the
    linear part of the proposed neuron); quadratic statistics come from the
    eigenvalue parameters Λᵏ.  The layer index counts neuron layers in forward
    order, matching the x-axis of Fig. 7.
    """
    stats: list[LayerParameterStats] = []
    layer_index = 0
    for name, module in model.named_modules():
        if isinstance(module, (EfficientQuadraticConv2d, EfficientQuadraticLinear)):
            layer_index += 1
            stats.append(LayerParameterStats.from_values(
                layer_index, name, "linear", module.weight.data))
            stats.append(LayerParameterStats.from_values(
                layer_index, name, "quadratic", module.lambdas.data))
        elif isinstance(module, (Conv2d, Linear)):
            layer_index += 1
            stats.append(LayerParameterStats.from_values(
                layer_index, name, "linear", module.weight.data))
    return stats


def quadratic_significance(stats: list[LayerParameterStats]) -> dict[int, float]:
    """Spread (95th − 5th percentile) of quadratic parameters per layer.

    The paper uses the spread of Λᵏ to argue that quadratic neurons matter in
    some layers (wide spread) and are nearly inactive in others (spread ≈ 0),
    so per-layer deployment choices matter.
    """
    significance: dict[int, float] = {}
    for stat in stats:
        if stat.kind == "quadratic":
            significance[stat.layer_index] = stat.quantile_95 - stat.quantile_05
    return significance
