"""Training-stability analysis (Fig. 6 of the paper).

Fig. 6 compares the training curves of ResNet-18 equipped with kervolutional
neurons in the first ``n`` layers ("KNN-n") against the proposed quadratic
neuron in all layers, and marks runs whose loss diverges.  These helpers turn
a :class:`repro.training.History` into the quantities needed for that
comparison: divergence flags, loss fluctuation, and final/best accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..training.history import History

__all__ = ["StabilityReport", "analyze_history", "compare_stability"]


@dataclass
class StabilityReport:
    """Summary of one training run's stability."""

    label: str
    diverged: bool
    divergence_epoch: int | None
    final_train_loss: float
    best_train_accuracy: float
    final_eval_accuracy: float | None
    loss_fluctuation: float
    max_loss: float
    eval_extreme_values: bool = False

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "diverged": self.diverged,
            "divergence_epoch": self.divergence_epoch,
            "final_train_loss": self.final_train_loss,
            "best_train_accuracy": self.best_train_accuracy,
            "final_eval_accuracy": self.final_eval_accuracy,
            "loss_fluctuation": self.loss_fluctuation,
            "max_loss": self.max_loss,
            "eval_extreme_values": self.eval_extreme_values,
        }


def analyze_history(history: History, label: str = "") -> StabilityReport:
    """Summarize a training history into a :class:`StabilityReport`.

    ``loss_fluctuation`` is the standard deviation of epoch-to-epoch loss
    differences — the quantitative analogue of the "obvious fluctuation" the
    paper points at in the unstable KNN curves.
    """
    losses = [value for value in history.column("train_loss")]
    finite_losses = [value for value in losses if math.isfinite(value)]
    diverged_flags = history.column("diverged")
    diverged = bool(diverged_flags and diverged_flags[-1]) or any(
        not math.isfinite(value) for value in losses)

    divergence_epoch = None
    for record in history:
        loss = record.get("train_loss", 0.0)
        if record.get("diverged") or not math.isfinite(loss):
            divergence_epoch = record["epoch"]
            break

    if len(finite_losses) >= 2:
        fluctuation = float(np.std(np.diff(finite_losses)))
    else:
        fluctuation = 0.0

    # The paper notes "extreme values can be found during the testing process"
    # for the unstable kervolution runs; a non-finite (or huge) held-out loss
    # at any epoch captures the same symptom.
    eval_losses = history.column("eval_loss")
    eval_extreme = any(not math.isfinite(value) or abs(value) > 1e3 for value in eval_losses)

    return StabilityReport(
        eval_extreme_values=eval_extreme,
        label=label,
        diverged=diverged,
        divergence_epoch=divergence_epoch,
        final_train_loss=finite_losses[-1] if finite_losses else float("inf"),
        best_train_accuracy=history.best("train_accuracy", mode="max") or 0.0,
        final_eval_accuracy=history.last("eval_accuracy"),
        loss_fluctuation=fluctuation,
        max_loss=max(finite_losses) if finite_losses else float("inf"),
    )


def compare_stability(reports: list[StabilityReport]) -> dict:
    """Rank runs: stable runs first, then by best training accuracy."""
    ranked = sorted(reports, key=lambda report: (report.diverged,
                                                 -report.best_train_accuracy))
    return {
        "ranking": [report.label for report in ranked],
        "stable": [report.label for report in reports if not report.diverged],
        "diverged": [report.label for report in reports if report.diverged],
    }
