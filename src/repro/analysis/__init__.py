"""Analysis tools for the paper's Sec. IV-C studies (Figs. 6, 7 and 8)."""

from .parameter_distribution import (
    LayerParameterStats,
    collect_parameter_distribution,
    quadratic_significance,
)
from .response import ResponseMaps, layer_responses, frequency_energy_split
from .stability import StabilityReport, analyze_history, compare_stability

__all__ = [
    "LayerParameterStats",
    "collect_parameter_distribution",
    "quadratic_significance",
    "ResponseMaps",
    "layer_responses",
    "frequency_energy_split",
    "StabilityReport",
    "analyze_history",
    "compare_stability",
]
