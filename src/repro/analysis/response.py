"""Linear vs quadratic neuron response analysis (Fig. 8 of the paper).

Fig. 8 visualizes, for individual input images, the response of the linear
part ``wᵀx + b`` and of the quadratic part ``y₂ᵏ = (fᵏ)ᵀΛᵏfᵏ`` of a proposed
quadratic convolution, and observes that the quadratic response concentrates
on whole-object, low-frequency structure while the linear response extracts
edges (high-frequency detail).  This module computes both response maps and a
frequency-energy decomposition that quantifies the same observation without
needing a plotting backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quadratic.efficient import EfficientQuadraticConv2d
from ..tensor import Tensor, conv2d, no_grad

__all__ = ["ResponseMaps", "layer_responses", "frequency_energy_split"]


@dataclass
class ResponseMaps:
    """Per-image linear and quadratic response maps of one quadratic conv layer.

    Both arrays have shape ``(batch, num_filters, height, width)``.
    """

    linear: np.ndarray
    quadratic: np.ndarray

    @property
    def combined(self) -> np.ndarray:
        return self.linear + self.quadratic


def layer_responses(layer: EfficientQuadraticConv2d, images: np.ndarray) -> ResponseMaps:
    """Compute the linear and quadratic responses of ``layer`` for ``images``.

    ``images`` has shape ``(batch, in_channels, height, width)``.
    """
    if not isinstance(layer, EfficientQuadraticConv2d):
        raise TypeError("layer_responses expects an EfficientQuadraticConv2d layer")
    with no_grad():
        x = Tensor(np.asarray(images, dtype=np.float32))
        linear = conv2d(x, layer.weight, layer.bias, stride=layer.stride,
                        padding=layer.padding)
        projections = conv2d(x, layer.q_weight, None, stride=layer.stride,
                             padding=layer.padding)
        batch = x.shape[0]
        height, width = projections.shape[2], projections.shape[3]
        grouped = projections.data.reshape(batch, layer.num_filters, layer.rank, height, width)
        lambdas = layer.lambdas.data[None, :, :, None, None]
        quadratic = (grouped ** 2 * lambdas).sum(axis=2)
    return ResponseMaps(linear=linear.data.copy(), quadratic=quadratic)


def frequency_energy_split(response: np.ndarray, cutoff_fraction: float = 0.25) -> dict:
    """Fraction of spectral energy below / above a spatial-frequency cutoff.

    A 2-D FFT is taken over the spatial dimensions of ``response`` (any shape
    ending in ``(height, width)``); frequencies whose radius is below
    ``cutoff_fraction`` of the Nyquist radius count as "low frequency".  The
    paper's qualitative claim translates to the quadratic response having a
    higher low-frequency fraction than the linear response.
    """
    response = np.asarray(response, dtype=np.float64)
    height, width = response.shape[-2:]
    spectrum = np.abs(np.fft.fft2(response, axes=(-2, -1))) ** 2

    freq_y = np.fft.fftfreq(height)[:, None]
    freq_x = np.fft.fftfreq(width)[None, :]
    radius = np.sqrt(freq_y ** 2 + freq_x ** 2)
    low_mask = radius <= cutoff_fraction * 0.5 * np.sqrt(2.0)

    total = spectrum.sum()
    if total <= 0:
        return {"low_fraction": 0.0, "high_fraction": 0.0, "total_energy": 0.0}
    low = float(spectrum[..., low_mask].sum())
    return {
        "low_fraction": low / float(total),
        "high_fraction": 1.0 - low / float(total),
        "total_energy": float(total),
    }
