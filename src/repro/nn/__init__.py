"""Neural-network layer library built on the autograd tensor engine."""

from .module import Module, Parameter, Sequential, ModuleList, Identity
from .layers import (
    Linear,
    Conv2d,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
    Dropout,
    Embedding,
)
from .activations import ReLU, GELU, Sigmoid, Tanh, LeakyReLU, SiLU, Softmax
from .normalization import BatchNorm2d, BatchNorm1d, LayerNorm
from .loss import CrossEntropyLoss, LabelSmoothingLoss, MSELoss
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Identity",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Embedding",
    "ReLU",
    "GELU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "SiLU",
    "Softmax",
    "BatchNorm2d",
    "BatchNorm1d",
    "LayerNorm",
    "CrossEntropyLoss",
    "LabelSmoothingLoss",
    "MSELoss",
    "init",
]
