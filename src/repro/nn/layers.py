"""Standard (linear-neuron) layers: dense, convolution, pooling, dropout, embedding.

These are the building blocks of the baseline networks the paper compares
against; the quadratic counterparts live in :mod:`repro.quadratic`.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, conv2d, max_pool2d, avg_pool2d, global_avg_pool2d
from ..tensor import functional as F
from ..tensor.fused import linear as fused_linear
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Embedding",
]


class Linear(Module):
    """Fully connected layer ``y = x Wᵀ + b`` built from linear neurons."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return fused_linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Conv2d(Module):
    """2-D convolution layer with square kernels."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
                f"k={self.kernel_size}, stride={self.stride}, padding={self.padding})")


class MaxPool2d(Module):
    """Max pooling over square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, collapsing ``(N, C, H, W)`` to ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, rng=self.rng)


class Embedding(Module):
    """Token embedding lookup table used by the Transformer models."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None, padding_idx: int | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.normal((num_embeddings, embedding_dim), rng, std=embedding_dim ** -0.5)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        return self.weight[token_ids]
