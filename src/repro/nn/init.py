"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that every
experiment in the reproduction is fully deterministic given its seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "orthogonal",
    "zeros",
    "ones",
    "normal",
    "uniform",
]


def _fan_in_fan_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:
        fan_in, fan_out = shape[1], shape[0]
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in, fan_out = shape[1] * receptive, shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in = int(np.prod(shape[1:]))
        fan_out = shape[0]
    return fan_in, fan_out


def kaiming_normal(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0),
                   dtype=np.float32) -> np.ndarray:
    """He-normal initialization (suited to ReLU networks)."""
    fan_in, _ = _fan_in_fan_out(tuple(shape))
    std = gain / np.sqrt(max(fan_in, 1))
    return (rng.standard_normal(shape) * std).astype(dtype)


def kaiming_uniform(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0),
                    dtype=np.float32) -> np.ndarray:
    """He-uniform initialization."""
    fan_in, _ = _fan_in_fan_out(tuple(shape))
    bound = gain * np.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0,
                  dtype=np.float32) -> np.ndarray:
    """Glorot-normal initialization (suited to tanh/linear layers)."""
    fan_in, fan_out = _fan_in_fan_out(tuple(shape))
    std = gain * np.sqrt(2.0 / max(fan_in + fan_out, 1))
    return (rng.standard_normal(shape) * std).astype(dtype)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0,
                   dtype=np.float32) -> np.ndarray:
    """Glorot-uniform initialization."""
    fan_in, fan_out = _fan_in_fan_out(tuple(shape))
    bound = gain * np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def orthogonal(shape, rng: np.random.Generator, gain: float = 1.0,
               dtype=np.float32) -> np.ndarray:
    """Orthogonal initialization via QR decomposition of a Gaussian matrix.

    For non-square shapes the result has orthonormal rows or columns
    (whichever is smaller), which is the natural initialization for the
    eigenvector factor ``Qᵏ`` of the proposed quadratic neuron.
    """
    rows = shape[0]
    cols = int(np.prod(shape[1:])) if len(shape) > 1 else 1
    gaussian = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q_matrix, r_matrix = np.linalg.qr(gaussian)
    # Make the decomposition unique (and the distribution uniform) by fixing signs.
    q_matrix = q_matrix * np.sign(np.diag(r_matrix))
    if rows < cols:
        q_matrix = q_matrix.T
    return (gain * q_matrix[:rows, :cols].reshape(shape)).astype(dtype)


def zeros(shape, dtype=np.float32) -> np.ndarray:
    return np.zeros(shape, dtype=dtype)


def ones(shape, dtype=np.float32) -> np.ndarray:
    return np.ones(shape, dtype=dtype)


def normal(shape, rng: np.random.Generator, mean: float = 0.0, std: float = 0.02,
           dtype=np.float32) -> np.ndarray:
    return (rng.standard_normal(shape) * std + mean).astype(dtype)


def uniform(shape, rng: np.random.Generator, low: float = -0.1, high: float = 0.1,
            dtype=np.float32) -> np.ndarray:
    return rng.uniform(low, high, size=shape).astype(dtype)
