"""Loss functions used by the classification and translation experiments."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor import functional as F
from .module import Module

__all__ = ["CrossEntropyLoss", "LabelSmoothingLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Cross-entropy over integer class targets (mean by default).

    ``ignore_index`` masks padding positions in sequence-to-sequence training.
    ``reduction="sum"`` skips the normalization — data-parallel gradient
    workers use it so per-shard losses add exactly before the parent divides
    by the global batch size once.
    """

    def __init__(self, label_smoothing: float = 0.0, ignore_index: int | None = None,
                 reduction: str = "mean"):
        super().__init__()
        if reduction not in ("mean", "sum"):
            raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
        self.label_smoothing = label_smoothing
        self.ignore_index = ignore_index
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy_with_logits(
            logits, targets,
            label_smoothing=self.label_smoothing,
            ignore_index=self.ignore_index,
            reduction=self.reduction)


class LabelSmoothingLoss(CrossEntropyLoss):
    """Cross-entropy with the label smoothing used for Transformer training."""

    def __init__(self, smoothing: float = 0.1, ignore_index: int | None = None,
                 reduction: str = "mean"):
        super().__init__(label_smoothing=smoothing, ignore_index=ignore_index,
                         reduction=reduction)


class MSELoss(Module):
    """Mean (or, with ``reduction="sum"``, summed) squared error."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        if reduction not in ("mean", "sum"):
            raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
        self.reduction = reduction

    def forward(self, prediction: Tensor, target) -> Tensor:
        return F.mse_loss(prediction, target, reduction=self.reduction)
