"""Loss functions used by the classification and translation experiments."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor import functional as F
from .module import Module

__all__ = ["CrossEntropyLoss", "LabelSmoothingLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Mean cross-entropy over integer class targets.

    ``ignore_index`` masks padding positions in sequence-to-sequence training.
    """

    def __init__(self, label_smoothing: float = 0.0, ignore_index: int | None = None):
        super().__init__()
        self.label_smoothing = label_smoothing
        self.ignore_index = ignore_index

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy_with_logits(
            logits, targets,
            label_smoothing=self.label_smoothing,
            ignore_index=self.ignore_index)


class LabelSmoothingLoss(CrossEntropyLoss):
    """Cross-entropy with the label smoothing used for Transformer training."""

    def __init__(self, smoothing: float = 0.1, ignore_index: int | None = None):
        super().__init__(label_smoothing=smoothing, ignore_index=ignore_index)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        return F.mse_loss(prediction, target)
