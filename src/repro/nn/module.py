"""Module/parameter system: the layer abstraction all models are built on.

The design mirrors ``torch.nn``: a :class:`Module` owns :class:`Parameter`
leaves and child modules, exposes recursive iteration over both, and carries a
``training`` flag toggled by :meth:`Module.train` / :meth:`Module.eval`.
State can be exported/imported as plain NumPy dictionaries, which the training
harness uses for checkpointing best models.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "Identity"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable leaf of a module.

    The optional ``tag`` labels the parameter's role (for example
    ``"quadratic"`` for the eigenvalue vector Λ of the proposed neuron), which
    lets optimizers apply the per-group learning rates used in the paper and
    lets the analysis tools separate linear from quadratic parameters.
    """

    __slots__ = ("tag",)

    def __init__(self, data, tag: str = "linear"):
        super().__init__(data, requires_grad=True)
        self.tag = tag


class Module:
    """Base class for all layers and models."""

    #: Self-describing spec ``{"name": ..., "kwargs": {...}}`` attached by the
    #: model registry (:mod:`repro.models.registry`) when the module was built
    #: by a registered builder; ``None`` means "not reconstructible by name"
    #: and such modules cannot be saved as servable bundles.
    model_spec: dict | None = None

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._forward_hooks: list = []
        self.training = True

    # -- attribute registration ---------------------------------------------

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BatchNorm running statistics)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- iteration ------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def modules(self) -> list["Module"]:
        return [module for _, module in self.named_modules()]

    def children(self) -> list["Module"]:
        return list(self._modules.values())

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    # -- training mode ---------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- gradients and state ----------------------------------------------------

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def state_dict(self) -> dict:
        state = {name: parameter.data.copy() for name, parameter in self.named_parameters()}
        state.update({f"buffer::{name}": buffer.copy() for name, buffer in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict, strict: bool = True) -> tuple[list, list]:
        """Load parameters and buffers from a :meth:`state_dict` snapshot.

        With ``strict`` (the default) the state must cover the module exactly:
        a ``KeyError`` listing *both* the missing and the unexpected keys is
        raised otherwise — a silent partial load would let a truncated or
        mismatched checkpoint go unnoticed.  With ``strict=False`` the
        intersection is loaded and ``(missing_keys, unexpected_keys)`` is
        returned for the caller to inspect.
        """
        parameters = dict(self.named_parameters())
        buffer_targets: dict[str, tuple[Module, str]] = {}
        for owner_prefix, owner in self._iter_buffer_owners():
            for local in owner._buffers:
                buffer_targets[f"buffer::{owner_prefix}{local}"] = (owner, local)

        expected = set(parameters) | set(buffer_targets)
        provided = set(state)
        missing = sorted(expected - provided)
        unexpected = sorted(provided - expected)
        if strict and (missing or unexpected):
            raise KeyError(f"state dict does not match module: "
                           f"missing keys {missing}, unexpected keys {unexpected}")

        # Validate every shape before mutating anything, so a mismatch never
        # leaves the module half-loaded.
        writes = []
        for name in sorted(provided & expected):
            value = np.asarray(state[name])
            if name in parameters:
                target = parameters[name].data
            else:
                owner, local = buffer_targets[name]
                target = owner._buffers[local]
            if tuple(value.shape) != tuple(target.shape):
                raise ValueError(f"shape mismatch for {name!r}: state has {value.shape}, "
                                 f"module has {target.shape}")
            writes.append((target, value))
        for target, value in writes:
            target[...] = value
        return missing, unexpected

    def _iter_buffer_owners(self, prefix: str = ""):
        if self._buffers:
            yield (prefix, self)
        for child_name, child in self._modules.items():
            yield from child._iter_buffer_owners(prefix=f"{prefix}{child_name}.")

    # -- forward ----------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def register_forward_hook(self, hook) -> None:
        """Register ``hook(module, inputs, output)``, called after every forward.

        Used by the profiler (to record activation shapes) and by the analysis
        tools (to capture intermediate responses for Fig. 8).
        """
        self._forward_hooks.append(hook)

    def clear_forward_hooks(self) -> None:
        self._forward_hooks = []

    def __call__(self, *args, **kwargs):
        output = self.forward(*args, **kwargs)
        for hook in self._forward_hooks:
            hook(self, args, output)
        return output

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {module.__class__.__name__}"
                       for name, module in self._modules.items()]
        header = self.__class__.__name__
        if not child_lines:
            return f"{header}()"
        return header + "(\n" + "\n".join(child_lines) + "\n)"


class Identity(Module):
    """Pass-through module (useful as a neutral shortcut in residual blocks)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Run child modules in order, feeding each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """A list of modules whose parameters are all registered."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]
