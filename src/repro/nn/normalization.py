"""Normalization layers: batch normalization for CNNs, layer normalization for Transformers."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .module import Module, Parameter

__all__ = ["BatchNorm2d", "BatchNorm1d", "LayerNorm"]


class _BatchNormBase(Module):
    """Shared implementation of 1-D and 2-D batch normalization."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_features, dtype=np.float32))
            self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def _normalize(self, x: Tensor, reduce_axes: tuple, shape: tuple) -> Tensor:
        if self.training:
            # One set of reductions serves both the normalization graph and
            # the running-statistics update (read back from .data), and the
            # centered activations are shared with the variance.
            mean = x.mean(axis=reduce_axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=reduce_axes, keepdims=True)
            batch_mean = mean.data.reshape(self.num_features)
            batch_var = var.data.reshape(self.num_features)
            self._buffers["running_mean"][...] = (
                (1 - self.momentum) * self._buffers["running_mean"] + self.momentum * batch_mean)
            self._buffers["running_var"][...] = (
                (1 - self.momentum) * self._buffers["running_var"] + self.momentum * batch_var)
            normalized = centered / (var + self.eps).sqrt()
        else:
            mean = Tensor(self._buffers["running_mean"].reshape(shape))
            var = Tensor(self._buffers["running_var"].reshape(shape))
            normalized = (x - mean) / (var + self.eps).sqrt()
        if self.affine:
            normalized = normalized * self.weight.reshape(shape) + self.bias.reshape(shape)
        return normalized


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over ``(N, C, H, W)`` activations."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects 4-D input, got shape {x.shape}")
        return self._normalize(x, reduce_axes=(0, 2, 3), shape=(1, self.num_features, 1, 1))


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over ``(N, C)`` activations."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects 2-D input, got shape {x.shape}")
        return self._normalize(x, reduce_axes=(0,), shape=(1, self.num_features))


class LayerNorm(Module):
    """Layer normalization over the last dimension (Transformer convention)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (var + self.eps).sqrt()
        return normalized * self.weight + self.bias
