"""Activation-function modules."""

from __future__ import annotations

from ..tensor import Tensor
from ..tensor import functional as F
from .module import Module

__all__ = ["ReLU", "GELU", "Sigmoid", "Tanh", "LeakyReLU", "SiLU", "Softmax"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Gaussian error linear unit (exact erf formulation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class LeakyReLU(Module):
    """Leaky rectified linear unit."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class SiLU(Module):
    """Sigmoid linear unit (swish)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.silu(x)


class Softmax(Module):
    """Softmax along a configurable axis."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)
