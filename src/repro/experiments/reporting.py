"""Plain-text reporting helpers shared by the experiment drivers and benchmarks."""

from __future__ import annotations

import sys
import time

__all__ = ["format_table", "format_percentage", "relative_change", "SweepReporter"]


def format_table(rows: list[dict], columns: list[str] | None = None,
                 float_format: str = "{:.3f}") -> str:
    """Render a list of dictionaries as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Floats are formatted with ``float_format``; other values are
    converted with ``str``.
    """
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(width) for cell, width in zip(line, widths))
                     for line in rendered)
    return "\n".join([header, separator, body])


class SweepReporter:
    """Parent-side consumer of sweep progress: task events and outcomes.

    The parallel executor never lets workers write to the terminal; instead
    the parent feeds this reporter, which prints one line per experiment as
    it finishes (plus retry notices) and a final one-line summary whose
    ``N ran / N cached / N failed`` counts the CI smoke job asserts on.
    """

    def __init__(self, total: int, stream=None, verbose: bool = True):
        self.total = total
        self.stream = stream if stream is not None else sys.stdout
        self.verbose = verbose
        self.outcomes = []
        self._started = time.perf_counter()

    # -- TaskEvent hook (live, completion order) ---------------------------
    def on_event(self, event) -> None:
        if self.verbose and event.kind == "retrying":
            print(f"?? {event.key}: attempt {event.attempt} failed "
                  f"({event.error}); retrying", file=self.stream)

    # -- Outcome hook (one per experiment) ---------------------------------
    def on_outcome(self, outcome) -> None:
        self.outcomes.append(outcome)
        if not self.verbose:
            return
        position = f"[{len(self.outcomes)}/{self.total}]"
        if not outcome.ok:
            first_line = (outcome.error or "failed").splitlines()[0]
            print(f"!! {position} {outcome.name} @ {outcome.scale}: FAILED "
                  f"({first_line})", file=self.stream)
        else:
            status = ("cached" if outcome.cache_hit
                      else f"ran in {outcome.elapsed_seconds:.1f}s")
            print(f"== {position} {outcome.name} @ {outcome.scale}: {status} "
                  f"-> {outcome.path}", file=self.stream)

    # -- Summary -----------------------------------------------------------
    @property
    def failed(self):
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def cached(self):
        return [outcome for outcome in self.outcomes if outcome.ok and outcome.cache_hit]

    @property
    def ran(self):
        return [outcome for outcome in self.outcomes
                if outcome.ok and not outcome.cache_hit]

    def summary_line(self) -> str:
        elapsed = time.perf_counter() - self._started
        return (f"sweep: {len(self.outcomes)} experiments | {len(self.ran)} ran | "
                f"{len(self.cached)} cached | {len(self.failed)} failed | "
                f"{elapsed:.1f}s")

    def print_summary(self) -> None:
        print(self.summary_line(), file=self.stream)
        for outcome in self.failed:
            print(f"--- {outcome.name} failure ---\n{outcome.error}", file=self.stream)


def relative_change(new_value: float, reference_value: float) -> float:
    """Relative change ``(new - reference) / reference`` (negative = reduction)."""
    if reference_value == 0:
        return 0.0
    return (new_value - reference_value) / reference_value


def format_percentage(fraction: float) -> str:
    """Render a fraction as a signed percentage string (``-0.293`` → ``"-29.3%"``)."""
    return f"{fraction * 100:+.1f}%"
