"""Plain-text reporting helpers shared by the experiment drivers and benchmarks."""

from __future__ import annotations

__all__ = ["format_table", "format_percentage", "relative_change"]


def format_table(rows: list[dict], columns: list[str] | None = None,
                 float_format: str = "{:.3f}") -> str:
    """Render a list of dictionaries as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Floats are formatted with ``float_format``; other values are
    converted with ``str``.
    """
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(width) for cell, width in zip(line, widths))
                     for line in rendered)
    return "\n".join([header, separator, body])


def relative_change(new_value: float, reference_value: float) -> float:
    """Relative change ``(new - reference) / reference`` (negative = reduction)."""
    if reference_value == 0:
        return 0.0
    return (new_value - reference_value) / reference_value


def format_percentage(fraction: float) -> str:
    """Render a fraction as a signed percentage string (``-0.293`` → ``"-29.3%"``)."""
    return f"{fraction * 100:+.1f}%"
