"""Table I — parameter and computation complexity of quadratic neuron designs.

Table I of the paper lists, for each neuron formulation, the parameter count
and MAC count as functions of the fan-in ``n`` and (where applicable) the
decomposition rank ``k``.  This driver regenerates the table for concrete
``(n, k)`` settings and additionally *verifies* the symbolic counts against
the actual number of trainable parameters of the instantiated layers, so the
formulas and the implementation can never drift apart.
"""

from __future__ import annotations

import numpy as np

from ..quadratic import make_dense, neuron_complexity, table_i_rows
from .reporting import format_table

__all__ = ["run", "verify_against_layers", "DEFAULT_SETTINGS"]

#: (n, k) settings reported by default: a 3×3×3 conv receptive field with the
#: paper's k = 9, and a wider dense fan-in.
DEFAULT_SETTINGS = ((27, 9), (64, 9), (576, 9))

#: Neuron types whose dense layers carry exactly the Table I parameters
#: (plus an explicit bias, which Table I ignores by convention).
_VERIFIABLE_TYPES = {
    "linear": 0,
    "quad1": 0,
    "quad2": 0,
    "quad_residual": 0,
    "factorized": 0,
    "general": 0,
}


def run(settings: tuple[tuple[int, int], ...] = DEFAULT_SETTINGS) -> dict:
    """Regenerate Table I for each ``(n, k)`` setting and verify the counts."""
    tables = {}
    for n, k in settings:
        rows = table_i_rows(n, k)
        tables[(n, k)] = rows
    verification = verify_against_layers(n=settings[0][0], k=settings[0][1])
    first_rows = tables[settings[0]]
    return {
        "tables": tables,
        "verification": verification,
        "report": format_table(first_rows,
                               columns=["neuron", "formula", "parameters", "macs",
                                        "outputs_per_neuron", "parameters_per_output",
                                        "macs_per_output"]),
    }


def verify_against_layers(n: int = 27, k: int = 9, out_features: int = 5) -> list[dict]:
    """Check the symbolic Table I counts against instantiated dense layers.

    For every verifiable neuron type a dense layer with ``out_features``
    neurons is built without bias; its trainable parameter count must equal
    ``out_features`` times the per-neuron Table I count.  For the proposed
    neuron the layer-level helper :meth:`EfficientQuadraticLinear.parameter_count`
    is compared against Eq. (9) directly.
    """
    rng = np.random.default_rng(0)
    results = []
    for neuron_type in _VERIFIABLE_TYPES:
        layer = make_dense(neuron_type, n, out_features, rank=k, bias=False, rng=rng)
        expected = out_features * neuron_complexity(neuron_type, n, k).parameters
        actual = layer.num_parameters()
        results.append({
            "neuron": neuron_type,
            "expected_parameters": expected,
            "actual_parameters": actual,
            "match": expected == actual,
        })

    proposed = make_dense("proposed", n, out_features * (k + 1), rank=k, bias=False, rng=rng)
    expected = proposed.parameter_count()
    actual = proposed.num_parameters()
    results.append({
        "neuron": "proposed",
        "expected_parameters": expected,
        "actual_parameters": actual,
        "match": expected == actual,
    })
    return results


from .registry import register

register(name="table1", artifact="Table I",
         title="Neuron parameter/MAC complexity (symbolic counts vs layers)",
         runner=run, uses_scale=False)


def main() -> None:
    """Command-line entry point: print the regenerated Table I."""
    result = run()
    print("Table I — neuron complexity (n = 27, k = 9)")
    print(result["report"])
    print()
    print(format_table(result["verification"]))


if __name__ == "__main__":
    main()
