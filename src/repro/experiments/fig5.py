"""Fig. 5 — comparison against prior quadratic neurons (Quad-1 [19], Quad-2 [21]).

The paper equips the same ResNets with the quadratic neurons of Fan et al.
("Quad 1") and Xu et al. / QuadraLib ("Quad 2") and with the proposed neuron
(slightly widened for an accuracy edge), then compares accuracy against
parameter and MAC budgets.  Headline result: the proposed neuron achieves
better or equal accuracy with at least ≈24 % fewer parameters and MACs, and
the Quad-2 networks degrade as depth grows.

:func:`run` reproduces the sweep on the synthetic CIFAR-10 stand-in and
reports, per depth, the savings of the proposed neuron over each baseline.
"""

from __future__ import annotations

from ..models import CifarResNet
from .common import (
    build_image_dataset,
    classifier_result_row,
    describe_image_dataset,
    profile_classifier,
    run_model_grid,
    train_image_classifier,
)
from .config import ExperimentScale, get_scale, scale_from_payload
from .reporting import format_table, relative_change

__all__ = ["run", "train_cell", "QUADRATIC_BASELINES"]

#: Neuron types compared in Fig. 5 (label → factory key).
QUADRATIC_BASELINES = {"quad1": "quad1", "quad2": "quad2", "proposed": "proposed"}

#: Widening factor applied to the proposed-neuron networks, mirroring the
#: paper's "expanded the networks ... by adding channels" for a slight
#: accuracy advantage in the iso-accuracy comparison.
PROPOSED_WIDTH_MULTIPLIER = 1.25


def train_cell(scale, depth: int, label: str) -> dict:
    """Train one (depth, baseline) cell of the Fig. 5 grid — parallel-executor entry."""
    scale = scale_from_payload(scale)
    neuron_type = QUADRATIC_BASELINES[label]
    dataset = build_image_dataset(scale)
    width_multiplier = PROPOSED_WIDTH_MULTIPLIER if neuron_type == "proposed" else 1.0
    model = CifarResNet(depth, num_classes=scale.num_classes, neuron_type=neuron_type,
                        rank=scale.rank, base_width=scale.base_width,
                        width_multiplier=width_multiplier, seed=scale.seed + depth)
    profile = profile_classifier(model, dataset)
    trainer, metrics = train_image_classifier(model, dataset, scale)
    row = classifier_result_row(
        f"ResNet-{depth}/{label}", depth, label, profile, metrics, trainer)
    row["width_multiplier"] = width_multiplier
    return row


def run(scale: ExperimentScale | None = None) -> dict:
    """Train the Fig. 5 sweep and return rows plus per-depth savings."""
    scale = scale or get_scale("bench")

    cells = [{"depth": int(depth), "label": label}
             for depth in scale.resnet_depths for label in QUADRATIC_BASELINES]
    rows = run_model_grid("fig5", "repro.experiments.fig5:train_cell", cells, scale)

    savings = _savings_vs_baselines(rows, scale.resnet_depths)
    return {
        "rows": rows,
        "savings": savings,
        "report": format_table(rows, columns=["model", "depth", "neuron", "test_accuracy",
                                              "parameters", "macs"]),
        "scale": scale.name,
        "dataset": describe_image_dataset(scale),
    }


def _savings_vs_baselines(rows: list[dict], depths: tuple[int, ...]) -> list[dict]:
    """Parameter/MAC change of the proposed neuron relative to Quad-1 and Quad-2."""
    by_key = {(row["depth"], row["neuron"]): row for row in rows}
    savings = []
    for depth in depths:
        proposed = by_key.get((depth, "proposed"))
        if proposed is None:
            continue
        for baseline in ("quad1", "quad2"):
            reference = by_key.get((depth, baseline))
            if reference is None:
                continue
            savings.append({
                "depth": depth,
                "baseline": baseline,
                "parameter_change": relative_change(proposed["parameters"],
                                                    reference["parameters"]),
                "mac_change": relative_change(proposed["macs"], reference["macs"]),
                "accuracy_difference": proposed["test_accuracy"] - reference["test_accuracy"],
            })
    return savings


from .registry import register

register(name="fig5", artifact="Fig. 5",
         title="Proposed neuron vs prior quadratic neurons (Quad-1 / Quad-2)",
         runner=run)


def main(scale_name: str = "bench") -> None:
    """Command-line entry point: print the Fig. 5 reproduction tables."""
    result = run(get_scale(scale_name))
    print("Fig. 5 — proposed neuron vs prior quadratic neurons")
    print(result["report"])
    print()
    print(format_table(result["savings"]))


if __name__ == "__main__":
    main()
