"""Shared building blocks for the experiment drivers."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..data import DataLoader, SyntheticImageClassification, standard_cifar_augmentation
from ..io.bundle import default_bundle_name, save_bundle
from ..metrics.profiler import ModelProfile, profile_model
from ..nn import CrossEntropyLoss
from ..nn.module import Module
from ..optim import SGD, MultiStepLR, split_parameter_groups
from ..parallel import Task, run_tasks
from ..parallel.executor import raise_on_failure
from ..tensor import Tensor
from ..training import Trainer
from .config import ExperimentScale, scale_to_payload
from .runner import active_bundle_dir

__all__ = [
    "build_image_dataset",
    "describe_image_dataset",
    "classifier_bundle_info",
    "make_trainer",
    "train_image_classifier",
    "profile_classifier",
    "classifier_result_row",
    "run_model_grid",
]


#: One-slot memo for :func:`build_image_dataset`.  Grid cells rebuild "their"
#: dataset from configuration (nothing rich crosses a process boundary), and
#: within one process every cell of a sweep asks for the same configuration —
#: the memo makes that one eager data generation per process, exactly like the
#: old share-one-instance sequential code, while a single slot (rather than an
#: unbounded cache) avoids pinning a paper-scale array set after a sweep moves
#: on to a differently-configured workload.
_DATASET_MEMO: list[tuple[tuple, SyntheticImageClassification]] = []


def build_image_dataset(scale: ExperimentScale, num_classes: int | None = None,
                        image_size: int | None = None, train_size: int | None = None,
                        test_size: int | None = None, seed: int | None = None
                        ) -> SyntheticImageClassification:
    """Create (or reuse) the synthetic image-classification workload for a scale.

    The returned dataset is shared within the process for repeated calls with
    an identical configuration; it is generated deterministically from the
    seed, so sharing never changes results (and training never mutates it).
    """
    config = {
        "num_classes": num_classes if num_classes is not None else scale.num_classes,
        "image_size": image_size if image_size is not None else scale.image_size,
        "train_size": train_size if train_size is not None else scale.train_size,
        "test_size": test_size if test_size is not None else scale.test_size,
        "noise_level": scale.noise_level,
        "seed": seed if seed is not None else scale.seed,
    }
    key = tuple(sorted(config.items()))
    if not _DATASET_MEMO or _DATASET_MEMO[0][0] != key:
        _DATASET_MEMO[:] = [(key, SyntheticImageClassification(**config))]
    return _DATASET_MEMO[0][1]


def describe_image_dataset(scale: ExperimentScale, **overrides) -> dict:
    """The :meth:`describe` dict of :func:`build_image_dataset`'s dataset,
    computed from configuration alone — no images are generated, so drivers
    whose grid cells rebuild their own datasets can report the workload
    without paying for an extra parent-side copy."""
    return SyntheticImageClassification.describe_config(
        num_classes=scale.num_classes, image_size=scale.image_size,
        train_size=scale.train_size, test_size=scale.test_size,
        noise_level=scale.noise_level, seed=scale.seed, **overrides)


def make_trainer(model: Module, scale: ExperimentScale, epochs: int | None = None,
                 learning_rate: float | None = None,
                 quadratic_learning_rate: float | None = None,
                 world_size: int = 1, train_jobs: int | None = None,
                 train_seed: int = 0) -> Trainer:
    """SGD + multi-step schedule trainer with the paper's two-group learning rates.

    ``world_size > 1`` returns a
    :class:`~repro.training.DataParallelTrainer` splitting every batch into
    that many gradient shards, executed by ``train_jobs`` worker processes
    (the worker count never changes the bytes; the shard count does — see
    :mod:`repro.training.distributed`).
    """
    epochs = epochs or scale.epochs
    base_lr = learning_rate if learning_rate is not None else scale.learning_rate
    quadratic_lr = (quadratic_learning_rate if quadratic_learning_rate is not None
                    else scale.quadratic_learning_rate)
    groups = split_parameter_groups(model, base_lr=base_lr, quadratic_lr=quadratic_lr)
    optimizer = SGD(groups, lr=base_lr, momentum=scale.momentum,
                    weight_decay=scale.weight_decay)
    scheduler = MultiStepLR(optimizer, milestones=scale.lr_milestones(epochs), gamma=0.1)
    if world_size > 1:
        from ..training import DataParallelTrainer

        return DataParallelTrainer(model, optimizer, CrossEntropyLoss(),
                                   scheduler=scheduler, world_size=world_size,
                                   workers=train_jobs, seed=train_seed)
    return Trainer(model, optimizer, CrossEntropyLoss(), scheduler=scheduler)


def classifier_bundle_info(dataset: SyntheticImageClassification) -> dict:
    """Serving metadata for a classifier trained on ``dataset``.

    Embedded in every checkpoint/bundle the trainer writes: the raw-pixel
    normalization of the training split, the class labels and the per-sample
    input shape ``repro serve`` needs to validate and preprocess requests.
    """
    return {
        "normalization": dict(dataset.train_normalization),
        "classes": [f"class_{index}" for index in range(dataset.num_classes)],
        "input_shape": [dataset.channels, dataset.image_size, dataset.image_size],
    }


def train_image_classifier(model: Module, dataset: SyntheticImageClassification,
                           scale: ExperimentScale, epochs: int | None = None,
                           learning_rate: float | None = None,
                           quadratic_learning_rate: float | None = None,
                           augment: bool = True,
                           bundle_dir: str | Path | None = None) -> tuple[Trainer, dict]:
    """Train ``model`` on ``dataset`` and return the trainer plus final test metrics.

    When a bundle directory is active — passed explicitly, or ambiently set by
    the experiment runner for the duration of a sweep — the trained model is
    additionally saved there as a self-describing bundle (weights + model spec
    + normalization stats), under a deterministic name, so every experiment's
    models come out directly servable by ``repro predict`` / ``repro serve``.
    """
    epochs = epochs or scale.epochs
    augmentation = standard_cifar_augmentation(scale.augmentation_padding) if augment else None
    loader = DataLoader(dataset.train_images, dataset.train_labels,
                        batch_size=scale.batch_size, shuffle=True,
                        augmentation=augmentation, seed=scale.seed)
    trainer = make_trainer(model, scale, epochs=epochs, learning_rate=learning_rate,
                           quadratic_learning_rate=quadratic_learning_rate)
    trainer.bundle_info = classifier_bundle_info(dataset)
    trainer.fit(loader, epochs, eval_inputs=dataset.test_images,
                eval_targets=dataset.test_labels)
    final = trainer.evaluate(dataset.test_images, dataset.test_labels) \
        if not trainer.diverged else {"loss": float("inf"), "accuracy": 0.0}

    bundle_dir = Path(bundle_dir) if bundle_dir is not None else active_bundle_dir()
    if bundle_dir is not None and getattr(model, "model_spec", None) is not None:
        # Training knobs never reach the model constructor, so they go into
        # the filename digest: two cells training an identical architecture
        # under different recipes must not overwrite each other's bundle.
        discriminator = {"epochs": epochs, "learning_rate": learning_rate,
                         "quadratic_learning_rate": quadratic_learning_rate,
                         "augment": augment, "scale_seed": scale.seed}
        save_bundle(bundle_dir / default_bundle_name(model, discriminator), model,
                    info={**trainer.bundle_info,
                          "metrics": {"test_loss": final["loss"],
                                      "test_accuracy": final["accuracy"]},
                          "diverged": trainer.diverged})
    return trainer, final


def profile_classifier(model: Module, dataset: SyntheticImageClassification) -> ModelProfile:
    """Parameter/MAC profile of an image classifier for the dataset's geometry."""
    example = Tensor(dataset.test_images[:1])
    return profile_model(model, example)


def run_model_grid(experiment: str, task_fn: str, cells: list[dict],
                   scale: ExperimentScale, jobs: int | str | None = None) -> list[dict]:
    """Fan a per-model training grid out through the parallel executor.

    ``task_fn`` is a dotted ``"module:function"`` reference to a *top-level*
    function taking ``(scale, **cell)`` — with ``scale`` delivered as a
    :func:`~repro.experiments.config.scale_to_payload` dict — and returning a
    JSON-safe result row.  ``cells`` are the grid coordinates (one kwargs dict
    per model).  Results come back in grid order regardless of completion
    order, and each task seeds the global RNGs deterministically from the
    scale seed and its cell key, so a parallel grid is byte-identical to the
    sequential one.

    ``jobs=None`` defers to ``$REPRO_JOBS`` (set by ``run_many`` / the CLI);
    inside a pool worker the grid is clamped to sequential execution rather
    than nesting pools.  A cell that crashes is retried once and then raises
    :class:`~repro.parallel.executor.ParallelTaskError`, surfacing as *this
    experiment's* failure in the surrounding sweep instead of aborting it.
    """
    payload = scale_to_payload(scale)

    def cell_key(cell: dict) -> str:
        parts = "/".join(f"{name}={cell[name]}" for name in sorted(cell))
        return f"{experiment}[{parts}]"

    tasks = [Task(key=cell_key(cell), fn=task_fn,
                  kwargs={"scale": payload, **cell}) for cell in cells]
    results = run_tasks(tasks, jobs=jobs, retries=1, seed=scale.seed)
    raise_on_failure(results)
    return [result.value for result in results]


def classifier_result_row(label: str, depth: int, neuron_type: str, profile: ModelProfile,
                          metrics: dict, trainer: Trainer) -> dict:
    """Standard row schema shared by the Fig. 4 / Fig. 5 sweeps."""
    return {
        "model": label,
        "depth": depth,
        "neuron": neuron_type,
        "test_accuracy": metrics["accuracy"],
        "best_train_accuracy": trainer.history.best("train_accuracy") or 0.0,
        "parameters": profile.total_parameters,
        "macs": profile.total_macs,
        "parameters_millions": profile.parameters_millions,
        "macs_millions": profile.macs_millions,
        "diverged": trainer.diverged,
    }
