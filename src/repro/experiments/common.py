"""Shared building blocks for the experiment drivers."""

from __future__ import annotations

import numpy as np

from ..data import DataLoader, SyntheticImageClassification, standard_cifar_augmentation
from ..metrics.profiler import ModelProfile, profile_model
from ..nn import CrossEntropyLoss
from ..nn.module import Module
from ..optim import SGD, MultiStepLR, split_parameter_groups
from ..tensor import Tensor
from ..training import Trainer
from .config import ExperimentScale

__all__ = [
    "build_image_dataset",
    "make_trainer",
    "train_image_classifier",
    "profile_classifier",
    "classifier_result_row",
]


def build_image_dataset(scale: ExperimentScale, num_classes: int | None = None,
                        image_size: int | None = None, train_size: int | None = None,
                        test_size: int | None = None, seed: int | None = None
                        ) -> SyntheticImageClassification:
    """Create the synthetic image-classification workload for a given scale."""
    return SyntheticImageClassification(
        num_classes=num_classes if num_classes is not None else scale.num_classes,
        image_size=image_size if image_size is not None else scale.image_size,
        train_size=train_size if train_size is not None else scale.train_size,
        test_size=test_size if test_size is not None else scale.test_size,
        noise_level=scale.noise_level,
        seed=seed if seed is not None else scale.seed,
    )


def make_trainer(model: Module, scale: ExperimentScale, epochs: int | None = None,
                 learning_rate: float | None = None,
                 quadratic_learning_rate: float | None = None) -> Trainer:
    """SGD + multi-step schedule trainer with the paper's two-group learning rates."""
    epochs = epochs or scale.epochs
    base_lr = learning_rate if learning_rate is not None else scale.learning_rate
    quadratic_lr = (quadratic_learning_rate if quadratic_learning_rate is not None
                    else scale.quadratic_learning_rate)
    groups = split_parameter_groups(model, base_lr=base_lr, quadratic_lr=quadratic_lr)
    optimizer = SGD(groups, lr=base_lr, momentum=scale.momentum,
                    weight_decay=scale.weight_decay)
    scheduler = MultiStepLR(optimizer, milestones=scale.lr_milestones(epochs), gamma=0.1)
    return Trainer(model, optimizer, CrossEntropyLoss(), scheduler=scheduler)


def train_image_classifier(model: Module, dataset: SyntheticImageClassification,
                           scale: ExperimentScale, epochs: int | None = None,
                           learning_rate: float | None = None,
                           quadratic_learning_rate: float | None = None,
                           augment: bool = True) -> tuple[Trainer, dict]:
    """Train ``model`` on ``dataset`` and return the trainer plus final test metrics."""
    epochs = epochs or scale.epochs
    augmentation = standard_cifar_augmentation(scale.augmentation_padding) if augment else None
    loader = DataLoader(dataset.train_images, dataset.train_labels,
                        batch_size=scale.batch_size, shuffle=True,
                        augmentation=augmentation, seed=scale.seed)
    trainer = make_trainer(model, scale, epochs=epochs, learning_rate=learning_rate,
                           quadratic_learning_rate=quadratic_learning_rate)
    trainer.fit(loader, epochs, eval_inputs=dataset.test_images,
                eval_targets=dataset.test_labels)
    final = trainer.evaluate(dataset.test_images, dataset.test_labels) \
        if not trainer.diverged else {"loss": float("inf"), "accuracy": 0.0}
    return trainer, final


def profile_classifier(model: Module, dataset: SyntheticImageClassification) -> ModelProfile:
    """Parameter/MAC profile of an image classifier for the dataset's geometry."""
    example = Tensor(dataset.test_images[:1])
    return profile_model(model, example)


def classifier_result_row(label: str, depth: int, neuron_type: str, profile: ModelProfile,
                          metrics: dict, trainer: Trainer) -> dict:
    """Standard row schema shared by the Fig. 4 / Fig. 5 sweeps."""
    return {
        "model": label,
        "depth": depth,
        "neuron": neuron_type,
        "test_accuracy": metrics["accuracy"],
        "best_train_accuracy": trainer.history.best("train_accuracy") or 0.0,
        "parameters": profile.total_parameters,
        "macs": profile.total_macs,
        "parameters_millions": profile.parameters_millions,
        "macs_millions": profile.macs_millions,
        "diverged": trainer.diverged,
    }
