"""Table II — machine translation with baseline and quadratic Transformers.

The paper replaces every linear projection in the multi-head attention blocks
of a Transformer with the proposed quadratic neuron, trains on WMT14
English→German, and evaluates BLEU on newstest2014 under four settings
(13a / international tokenization × cased / uncased).  Because each quadratic
neuron produces ``k + 1`` outputs, the quadratic Transformer needs a smaller
model dimension for the same effective width, cutting parameters (and, since
Transformer FLOPs ≈ 2 × parameters per token, computation) by ≈20 % while
matching or beating the baseline BLEU.  Three learning rates for the
quadratic parameters Λᵏ (1e-4, 1e-5, 1e-6) are compared.

:func:`run` reproduces the experiment on the synthetic translation task: it
trains the baseline and the three quadratic variants, scores BLEU under all
four evaluation settings and reports the parameter reduction.
"""

from __future__ import annotations

from ..data import SyntheticTranslationTask
from ..io.bundle import default_bundle_name, save_bundle
from ..metrics.bleu import EVALUATION_SETTINGS
from ..models import Transformer
from ..nn import LabelSmoothingLoss
from ..optim import Adam, split_parameter_groups
from ..training import Seq2SeqTrainer
from .config import ExperimentScale, get_scale
from .reporting import format_table, relative_change
from .runner import active_bundle_dir

__all__ = ["run", "build_transformer", "train_translation_model",
           "save_translation_bundle"]


def _scaled_dim(dim: int, scale_factor: float, multiple_of: int) -> int:
    """Scale ``dim`` and round to the nearest positive multiple of ``multiple_of``."""
    scaled = max(multiple_of, int(round(dim * scale_factor / multiple_of)) * multiple_of)
    return scaled


def build_transformer(task: SyntheticTranslationTask, scale: ExperimentScale,
                      neuron_type: str = "linear") -> Transformer:
    """Build the baseline or quadratic Transformer for the translation task.

    The quadratic variant uses a reduced model/hidden dimension (the paper's
    mechanism for the ≈20 % parameter saving) and the proposed neuron in all
    attention projections.
    """
    if neuron_type == "linear":
        model_dim = scale.transformer_dim
        hidden_dim = scale.transformer_hidden
    else:
        model_dim = _scaled_dim(scale.transformer_dim, scale.quadratic_dim_scale,
                                scale.transformer_heads)
        hidden_dim = _scaled_dim(scale.transformer_hidden, scale.quadratic_dim_scale, 2)
    return Transformer(
        src_vocab_size=len(task.source_vocab),
        tgt_vocab_size=len(task.target_vocab),
        model_dim=model_dim,
        num_heads=scale.transformer_heads,
        num_layers=scale.transformer_layers,
        hidden_dim=hidden_dim,
        max_len=task.max_len,
        neuron_type=neuron_type,
        rank=scale.transformer_rank,
        pad_id=task.pad_id,
        seed=scale.seed,
    )


def train_translation_model(model: Transformer, task: SyntheticTranslationTask,
                            scale: ExperimentScale, quadratic_lr: float = 1e-4,
                            base_lr: float = 3e-3) -> Seq2SeqTrainer:
    """Train a translation model with label smoothing and per-group learning rates."""
    groups = split_parameter_groups(model, base_lr=base_lr, quadratic_lr=quadratic_lr)
    optimizer = Adam(groups, lr=base_lr)
    loss_fn = LabelSmoothingLoss(smoothing=0.1, ignore_index=task.pad_id)
    trainer = Seq2SeqTrainer(model, optimizer, loss_fn, grad_clip=1.0, seed=scale.seed)
    trainer.fit(task, epochs=scale.translation_epochs,
                batch_size=scale.translation_batch_size)
    return trainer


def save_translation_bundle(model: Transformer, task: SyntheticTranslationTask,
                            discriminator: dict | None = None,
                            bundle_dir=None) -> str | None:
    """Save ``model`` as a *servable generation bundle* when a bundle
    directory is active (or passed explicitly).

    The bundle carries a ``generation`` section — delimiter ids, position
    budget and both vocabularies — so ``repro.load`` returns a
    :class:`~repro.serve.generate.GenerationPredictor` for it and
    ``repro serve`` exposes ``POST /v1/models/<name>/generate``.  Returns
    the bundle filename (relative use is the runner's concern) or ``None``
    when no directory is active.
    """
    from ..serve.generate import generation_bundle_info

    bundle_dir = bundle_dir if bundle_dir is not None else active_bundle_dir()
    if bundle_dir is None or getattr(model, "model_spec", None) is None:
        return None
    name = default_bundle_name(model, discriminator)
    save_bundle(bundle_dir / name, model,
                info={"generation": generation_bundle_info(task),
                      "task": task.describe()})
    return name


def run(scale: ExperimentScale | None = None) -> dict:
    """Train the Table II models and return BLEU rows plus the parameter comparison."""
    scale = scale or get_scale("bench")
    task = SyntheticTranslationTask(train_size=scale.translation_train_size,
                                    test_size=scale.translation_test_size,
                                    seed=scale.seed + 31)

    # Baseline Transformer with linear neurons.
    baseline = build_transformer(task, scale, neuron_type="linear")
    baseline_trainer = train_translation_model(baseline, task, scale)
    baseline_bleu = baseline_trainer.evaluate_bleu(task)
    baseline_params = baseline.num_parameters()
    save_translation_bundle(baseline, task,
                            discriminator={"neuron": "linear",
                                           "scale_seed": scale.seed})

    # Quadratic Transformers with different Λ learning rates.
    quadratic_results = {}
    quadratic_params = None
    for quadratic_lr in scale.transformer_lambda_lrs:
        model = build_transformer(task, scale, neuron_type="proposed")
        trainer = train_translation_model(model, task, scale, quadratic_lr=quadratic_lr)
        quadratic_results[quadratic_lr] = trainer.evaluate_bleu(task)
        quadratic_params = model.num_parameters()
        save_translation_bundle(model, task,
                                discriminator={"neuron": "proposed",
                                               "quadratic_lr": quadratic_lr,
                                               "scale_seed": scale.seed})

    # Table II layout: one row per evaluation setting.
    rows = []
    for tokenization, cased in EVALUATION_SETTINGS:
        row = {
            "tokenization": tokenization,
            "cased": cased,
            "baseline": baseline_bleu[(tokenization, cased)],
        }
        for quadratic_lr in scale.transformer_lambda_lrs:
            row[f"quadratic_{quadratic_lr:.0e}"] = \
                quadratic_results[quadratic_lr][(tokenization, cased)]
        rows.append(row)

    parameter_row = {
        "baseline_parameters": baseline_params,
        "quadratic_parameters": quadratic_params,
        "parameter_change": relative_change(quadratic_params, baseline_params),
    }
    best_quadratic = max(
        max(result[setting] for setting in EVALUATION_SETTINGS)
        for result in quadratic_results.values())
    return {
        "rows": rows,
        "parameters": parameter_row,
        "baseline_bleu": {key: value for key, value in baseline_bleu.items()
                          if key != "hypotheses"},
        "quadratic_bleu": {lr: {key: value for key, value in result.items()
                                if key != "hypotheses"}
                           for lr, result in quadratic_results.items()},
        "best_quadratic_bleu": best_quadratic,
        "report": format_table(rows),
        "scale": scale.name,
        "task": task.describe(),
    }


from .registry import register

register(name="table2", artifact="Table II",
         title="Transformer translation BLEU and parameter cost",
         runner=run)


def main(scale_name: str = "bench") -> None:
    """Command-line entry point: print the Table II reproduction."""
    result = run(get_scale(scale_name))
    print("Table II — translation BLEU and parameter cost")
    print(result["report"])
    print()
    parameters = result["parameters"]
    print(f"baseline parameters:  {parameters['baseline_parameters']:,}")
    print(f"quadratic parameters: {parameters['quadratic_parameters']:,} "
          f"({parameters['parameter_change'] * 100:+.1f}%)")


if __name__ == "__main__":
    main()
