"""Declarative experiment registry.

Every paper artifact (fig4–fig8, table1, table2, ablation) registers one
:class:`ExperimentSpec` describing how to run it — mirroring how
:mod:`repro.tensor.ops` made "add a new op" a single registration, this makes
"add a new experiment" a single :func:`register` call at the bottom of the
driver module.  The shared runner (:mod:`repro.experiments.runner`) and the
CLI (``python -m repro``) consume the registry; nothing else needs to change
when an experiment is added.

To add a new experiment::

    # src/repro/experiments/fig9.py
    def run(scale):
        ...
        return {"rows": [...], "report": "..."}

    from .registry import register
    register(name="fig9", artifact="Fig. 9", title="...", runner=run)

and import the module from :mod:`repro.experiments` so the registration runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["ExperimentSpec", "register", "unregister", "get_spec",
           "experiment_names", "all_specs", "ensure_loaded",
           "EXTRA_MODULES_ENV"]

#: Comma-separated module names imported (and thereby registered) alongside the
#: built-in drivers.  This is how out-of-tree specs become resolvable inside
#: spawned pool workers, which re-resolve every spec by name in a fresh
#: interpreter: the environment variable is inherited by the worker process,
#: so :func:`ensure_loaded` re-imports the same modules there.
EXTRA_MODULES_ENV = "REPRO_EXPERIMENT_MODULES"


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the shared runner needs to execute one paper artifact.

    ``runner`` is called as ``runner(scale)`` (or ``runner()`` when
    ``uses_scale`` is false, e.g. the analytic Table I) and must return a
    JSON-sanitizable result dictionary.  ``version`` participates in the
    artifact content hash — bump it when the driver's semantics change so
    stale cached artifacts are invalidated.  ``report_keys`` names the result
    entries the CLI prints: each is either a report string or a sub-result
    dictionary containing one.
    """

    name: str
    artifact: str
    title: str
    runner: Callable[..., dict]
    uses_scale: bool = True
    version: int = 1
    report_keys: tuple[str, ...] = ("report",)


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(name: str, artifact: str, title: str, runner: Callable[..., dict],
             **options) -> ExperimentSpec:
    """Create and register an :class:`ExperimentSpec`.

    Re-registering the *same* definition is idempotent and returns the
    existing spec (running a driver as a script re-executes its module under
    ``__main__``, hitting the module-bottom ``register`` a second time);
    registering a *conflicting* definition under an existing name raises.
    """
    spec = ExperimentSpec(name=name, artifact=artifact, title=title, runner=runner,
                          **options)
    existing = _REGISTRY.get(name)
    if existing is not None:
        if _same_definition(existing, spec):
            return existing
        raise ValueError(f"experiment '{name}' is already registered "
                         f"with a different definition")
    _REGISTRY[name] = spec
    return spec


def _same_definition(a: ExperimentSpec, b: ExperimentSpec) -> bool:
    """Equality ignoring runner identity (re-executed modules rebuild functions)."""
    return (a.artifact == b.artifact and a.title == b.title
            and a.uses_scale == b.uses_scale and a.version == b.version
            and a.report_keys == b.report_keys
            and getattr(a.runner, "__name__", None) == getattr(b.runner, "__name__", None))


def unregister(name: str) -> None:
    """Remove a registration (used by tests to register throwaway specs)."""
    _REGISTRY.pop(name, None)


def ensure_loaded() -> None:
    """Import the drivers so their module-level registrations have run.

    Also imports any modules named in ``$REPRO_EXPERIMENT_MODULES``, letting
    tests and plugins make their specs resolvable in worker processes.
    """
    from importlib import import_module

    import_module("repro.experiments")
    extra = os.environ.get(EXTRA_MODULES_ENV, "")
    for module_name in filter(None, (name.strip() for name in extra.split(","))):
        import_module(module_name)


def get_spec(name: str) -> ExperimentSpec:
    ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(f"unknown experiment '{name}'; "
                       f"available: {', '.join(experiment_names())}")
    return _REGISTRY[name]


def experiment_names() -> list[str]:
    """Registered experiment names in registration order."""
    ensure_loaded()
    return list(_REGISTRY)


def all_specs() -> list[ExperimentSpec]:
    ensure_loaded()
    return list(_REGISTRY.values())
