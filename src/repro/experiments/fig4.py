"""Fig. 4 — accuracy vs parameters/FLOPs of ResNets with linear and proposed neurons.

The paper sweeps ResNet-20/32/44/56/110 on CIFAR-10 with (a) conventional
linear neurons and (b) the proposed quadratic neuron in every 3×3 convolution,
and plots accuracy against the number of parameters and MACs.  The headline
observations are

* a quadratic ResNet matches or beats the accuracy of the *next deeper* linear
  ResNet (e.g. quadratic ResNet-32 vs linear ResNet-44) with ≈29 % fewer
  parameters and ≈28 % fewer MACs, and
* for the deepest pair (quadratic ResNet-56 vs linear ResNet-110) the saving
  grows to ≈50 %.

:func:`run` trains the sweep on the synthetic CIFAR-10 stand-in at the chosen
scale and reports the same rows; :func:`paper_scale_costs` additionally
reproduces the exact parameter / MAC budgets of the paper-scale architectures
(32×32 inputs, width 16, k = 9) without training, so the cost axes of Fig. 4
can be checked against the paper directly.
"""

from __future__ import annotations

import numpy as np

from ..metrics.profiler import profile_model
from ..models import CifarResNet
from ..tensor import Tensor
from .common import (
    build_image_dataset,
    classifier_result_row,
    describe_image_dataset,
    profile_classifier,
    run_model_grid,
    train_image_classifier,
)
from .config import ExperimentScale, get_scale, scale_from_payload
from .reporting import format_table, relative_change

__all__ = ["run", "train_cell", "paper_scale_costs", "NEURON_TYPES"]

NEURON_TYPES = ("linear", "proposed")


def train_cell(scale, depth: int, neuron_type: str) -> dict:
    """Train one (depth, neuron) cell of the Fig. 4 grid — parallel-executor entry.

    Top-level and primitive-argument only so the grid can run the cell in a
    pool worker; the synthetic dataset is rebuilt from the scale seed, so
    every cell sees identical data whatever process it lands in.
    """
    scale = scale_from_payload(scale)
    dataset = build_image_dataset(scale)
    model = CifarResNet(depth, num_classes=scale.num_classes, neuron_type=neuron_type,
                        rank=scale.rank, base_width=scale.base_width,
                        seed=scale.seed + depth)
    profile = profile_classifier(model, dataset)
    trainer, metrics = train_image_classifier(model, dataset, scale)
    return classifier_result_row(
        f"ResNet-{depth}/{neuron_type}", depth, neuron_type, profile, metrics, trainer)


def run(scale: ExperimentScale | None = None) -> dict:
    """Train the Fig. 4 sweep and return rows, pairwise comparisons and a report."""
    scale = scale or get_scale("bench")

    cells = [{"depth": int(depth), "neuron_type": neuron_type}
             for depth in scale.resnet_depths for neuron_type in NEURON_TYPES]
    rows = run_model_grid("fig4", "repro.experiments.fig4:train_cell", cells, scale)

    comparisons = _depth_shift_comparisons(rows, scale.resnet_depths)
    return {
        "rows": rows,
        "comparisons": comparisons,
        "report": format_table(rows, columns=["model", "depth", "neuron", "test_accuracy",
                                              "parameters", "macs"]),
        "scale": scale.name,
        "dataset": describe_image_dataset(scale),
    }


def _depth_shift_comparisons(rows: list[dict], depths: tuple[int, ...]) -> list[dict]:
    """Quadratic ResNet at depth d vs linear ResNet at the next deeper depth.

    This reproduces the paper's headline comparisons (quadratic ResNet-32 vs
    linear ResNet-44: −29.3 % parameters; quadratic ResNet-56 vs linear
    ResNet-110: ≈−50 %).
    """
    by_key = {(row["depth"], row["neuron"]): row for row in rows}
    comparisons = []
    depths = tuple(sorted(depths))
    for shallow, deep in zip(depths[:-1], depths[1:]):
        quadratic = by_key.get((shallow, "proposed"))
        linear = by_key.get((deep, "linear"))
        if quadratic is None or linear is None:
            continue
        comparisons.append({
            "quadratic_model": quadratic["model"],
            "linear_model": linear["model"],
            "parameter_change": relative_change(quadratic["parameters"], linear["parameters"]),
            "mac_change": relative_change(quadratic["macs"], linear["macs"]),
            "accuracy_difference": quadratic["test_accuracy"] - linear["test_accuracy"],
        })
    return comparisons


def paper_scale_costs(depths: tuple[int, ...] = (20, 32, 44, 56, 110), rank: int = 9,
                      image_size: int = 32, base_width: int = 16) -> list[dict]:
    """Analytic parameter/MAC budgets of the paper-scale Fig. 4 architectures.

    No training is involved; a single batch-1 forward pass per model computes
    the costs.  These numbers are directly comparable to the x-axes of Fig. 4
    (parameters in millions, MACs in millions).
    """
    example = Tensor(np.zeros((1, 3, image_size, image_size), dtype=np.float32))
    rows = []
    for depth in depths:
        for neuron_type in NEURON_TYPES:
            model = CifarResNet(depth, num_classes=10, neuron_type=neuron_type, rank=rank,
                                base_width=base_width, seed=0)
            profile = profile_model(model, example)
            rows.append({
                "model": f"ResNet-{depth}/{neuron_type}",
                "depth": depth,
                "neuron": neuron_type,
                "parameters": profile.total_parameters,
                "parameters_millions": profile.parameters_millions,
                "macs_millions": profile.macs_millions,
            })
    return rows


from .registry import register

register(name="fig4", artifact="Fig. 4",
         title="Linear vs proposed ResNets: accuracy against parameters/MACs",
         runner=run)


def main(scale_name: str = "bench") -> None:
    """Command-line entry point: print the Fig. 4 reproduction tables."""
    result = run(get_scale(scale_name))
    print("Fig. 4 — linear vs proposed quadratic neurons")
    print(result["report"])
    print()
    print(format_table(result["comparisons"]))


if __name__ == "__main__":
    main()
