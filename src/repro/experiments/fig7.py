"""Fig. 7 — distribution of linear vs quadratic parameters across layers.

The paper trains a quadratic ResNet-20 on CIFAR-100 and plots, per layer, the
spread of the linear convolution weights and of the quadratic eigenvalue
parameters Λᵏ.  The observation: quadratic parameters stay significant in some
layers (1, 6, 8) but collapse towards zero in others (11, 13, 19), i.e. the
usefulness of second-order terms is depth-dependent — neither "first layer
only" nor "nowhere" is the right deployment.

:func:`run` trains a quadratic ResNet on the synthetic CIFAR-100 stand-in and
returns per-layer distribution statistics plus a summary of how unevenly the
quadratic parameters are used.
"""

from __future__ import annotations

import numpy as np

from ..analysis.parameter_distribution import (
    collect_parameter_distribution,
    quadratic_significance,
)
from ..models import CifarResNet
from .common import build_image_dataset, train_image_classifier
from .config import ExperimentScale, get_scale
from .reporting import format_table

__all__ = ["run"]


def run(scale: ExperimentScale | None = None, depth: int | None = None) -> dict:
    """Train a quadratic ResNet and summarize its parameter distributions per layer."""
    scale = scale or get_scale("bench")
    depth = depth or max(scale.resnet_depths)
    dataset = build_image_dataset(scale, num_classes=scale.analysis_num_classes * 2,
                                  seed=scale.seed + 17)

    model = CifarResNet(depth, num_classes=scale.analysis_num_classes * 2,
                        neuron_type="proposed", rank=scale.rank,
                        base_width=scale.base_width, seed=scale.seed)
    trainer, metrics = train_image_classifier(model, dataset, scale,
                                              epochs=scale.analysis_epochs)

    stats = collect_parameter_distribution(model)
    stat_rows = [vars(stat) for stat in stats]
    significance = quadratic_significance(stats)
    spreads = np.array(list(significance.values()), dtype=np.float64)

    summary = {
        "test_accuracy": metrics["accuracy"],
        "num_layers": len(significance),
        "max_quadratic_spread": float(spreads.max()) if spreads.size else 0.0,
        "min_quadratic_spread": float(spreads.min()) if spreads.size else 0.0,
        "spread_ratio_max_to_min": float(spreads.max() / max(spreads.min(), 1e-12))
        if spreads.size else 0.0,
        "most_significant_layers": sorted(significance, key=significance.get,
                                          reverse=True)[:3],
        "least_significant_layers": sorted(significance, key=significance.get)[:3],
    }
    quadratic_rows = [row for row in stat_rows if row["kind"] == "quadratic"]
    return {
        "stats": stat_rows,
        "significance": significance,
        "summary": summary,
        "report": format_table(quadratic_rows,
                               columns=["layer_index", "layer_name", "minimum", "maximum",
                                        "std", "quantile_05", "quantile_95"]),
        "scale": scale.name,
    }


from .registry import register

register(name="fig7", artifact="Fig. 7",
         title="Per-layer distribution of linear vs quadratic parameters",
         runner=run)


def main(scale_name: str = "bench") -> None:
    """Command-line entry point: print the Fig. 7 parameter-distribution summary."""
    result = run(get_scale(scale_name))
    print("Fig. 7 — quadratic parameter distribution per layer")
    print(result["report"])
    print()
    for key, value in result["summary"].items():
        print(f"{key}: {value}")


if __name__ == "__main__":
    main()
