"""Experiment scales.

Every experiment driver accepts an :class:`ExperimentScale` that fixes the
dataset size, image resolution, network width and training budget.  Three
presets are provided:

* ``smoke``  — seconds per experiment; used by the test suite.
* ``bench``  — the default for the pytest-benchmark harness (a couple of
  minutes for the full suite on a laptop CPU); large enough for the paper's
  qualitative trends to emerge.
* ``paper``  — the closest practical approximation of the paper's settings
  (full CIFAR-style widths and depths).  Training at this scale on the NumPy
  substrate takes hours and is not run in CI; the preset exists so the exact
  architecture/cost numbers of the paper can be reproduced analytically and
  so that users with time to spare can launch the full runs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace

__all__ = ["ExperimentScale", "SCALES", "get_scale",
           "scale_to_payload", "scale_from_payload"]


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs that trade fidelity against runtime."""

    name: str
    # Image-classification workload.
    image_size: int = 12
    num_classes: int = 10
    train_size: int = 320
    test_size: int = 96
    batch_size: int = 32
    epochs: int = 20
    base_width: int = 4
    resnet_depths: tuple[int, ...] = (8, 14, 20)
    rank: int = 3
    noise_level: float = 0.3
    learning_rate: float = 0.1
    quadratic_learning_rate: float = 1e-3
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_milestone_fractions: tuple[float, ...] = (0.5, 0.75)
    augmentation_padding: int = 2
    # Stability study (Fig. 6).
    stability_image_size: int = 12
    stability_num_classes: int = 8
    stability_train_size: int = 192
    stability_epochs: int = 5
    stability_base_width: int = 4
    kervolution_degree: int = 3
    kervolution_first_n: tuple[int, ...] = (3, 7, 11)
    # Transformer workload (Table II).
    translation_train_size: int = 384
    translation_test_size: int = 64
    translation_epochs: int = 12
    translation_batch_size: int = 32
    transformer_dim: int = 48
    transformer_heads: int = 4
    transformer_layers: int = 2
    transformer_hidden: int = 96
    transformer_rank: int = 5
    quadratic_dim_scale: float = 0.9
    transformer_lambda_lrs: tuple[float, ...] = (1e-4, 1e-5, 1e-6)
    # Analysis experiments (Figs. 7 and 8).
    analysis_epochs: int = 4
    analysis_num_classes: int = 10
    # Misc.
    seed: int = 0

    def with_overrides(self, **overrides) -> "ExperimentScale":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def lr_milestones(self, epochs: int | None = None) -> list[int]:
        """Concrete milestone epochs from the milestone fractions."""
        epochs = epochs or self.epochs
        return [max(1, int(round(fraction * epochs)))
                for fraction in self.lr_milestone_fractions]


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        image_size=10,
        train_size=96,
        test_size=48,
        epochs=2,
        base_width=4,
        resnet_depths=(8, 14),
        rank=3,
        stability_train_size=96,
        stability_epochs=2,
        kervolution_first_n=(3, 7),
        translation_train_size=128,
        translation_test_size=32,
        translation_epochs=3,
        transformer_dim=32,
        transformer_hidden=64,
        analysis_epochs=2,
    ),
    "bench": ExperimentScale(name="bench"),
    "paper": ExperimentScale(
        name="paper",
        image_size=32,
        train_size=50_000,
        test_size=10_000,
        batch_size=128,
        epochs=180,
        base_width=16,
        resnet_depths=(20, 32, 44, 56, 110),
        rank=9,
        noise_level=0.35,
        learning_rate=0.1,
        quadratic_learning_rate=1e-4,
        lr_milestone_fractions=(0.5, 0.75),
        augmentation_padding=4,
        stability_image_size=64,
        stability_num_classes=1000,
        stability_train_size=1_281_167,
        stability_epochs=100,
        stability_base_width=64,
        kervolution_first_n=(3, 7, 11, 15),
        translation_train_size=4_500_000,
        translation_test_size=3003,
        translation_epochs=20,
        transformer_dim=512,
        transformer_heads=8,
        transformer_layers=6,
        transformer_hidden=2048,
        transformer_rank=9,
        analysis_epochs=250,
    ),
}


def get_scale(name: str = "bench") -> ExperimentScale:
    """Look up a preset scale by name."""
    if name not in SCALES:
        raise KeyError(f"unknown scale '{name}'; available: {sorted(SCALES)}")
    return SCALES[name]


#: Fields whose values are tuples (payload round-trips turn them into lists).
_TUPLE_FIELDS = frozenset(f.name for f in fields(ExperimentScale)
                          if isinstance(getattr(SCALES["bench"], f.name), tuple))


def scale_to_payload(scale: ExperimentScale) -> dict:
    """Flatten a scale into primitives that survive pickling / JSON transport.

    Parallel workers receive scales in this form so nothing richer than
    dicts, lists and scalars ever crosses a process boundary.
    """
    return asdict(scale)


def scale_from_payload(payload: "ExperimentScale | str | dict") -> ExperimentScale:
    """Rebuild an :class:`ExperimentScale` from whatever crossed the boundary.

    Accepts an already-live scale, a preset name, or a
    :func:`scale_to_payload` dictionary (tuple-valued fields are restored so
    the rebuilt scale compares — and content-hashes — equal to the original).
    """
    if isinstance(payload, ExperimentScale):
        return payload
    if isinstance(payload, str):
        return get_scale(payload)
    restored = {key: tuple(value) if key in _TUPLE_FIELDS and isinstance(value, list)
                else value for key, value in payload.items()}
    return ExperimentScale(**restored)
