"""Fig. 8 — response visualization of linear and quadratic neuron parts.

The paper feeds images through a trained quadratic CNN and visualizes, for a
first-layer quadratic convolution, the linear response ``wᵀx + b`` and the
quadratic response ``y₂ᵏ`` side by side.  Qualitative findings: the linear
part extracts edges (high-frequency content), the quadratic part highlights
whole objects (low-frequency content).

Without a plotting backend the reproduction reports the same information
numerically: the per-image response maps plus the fraction of spectral energy
in low spatial frequencies for both parts.  The paper's claim corresponds to
``low_fraction(quadratic) > low_fraction(linear)``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.response import frequency_energy_split, layer_responses
from ..models import SimpleCNN
from ..quadratic.efficient import EfficientQuadraticConv2d
from .common import build_image_dataset, train_image_classifier
from .config import ExperimentScale, get_scale
from .reporting import format_table

__all__ = ["run"]


def _first_quadratic_conv(model) -> EfficientQuadraticConv2d:
    for module in model.modules():
        if isinstance(module, EfficientQuadraticConv2d):
            return module
    raise RuntimeError("model contains no EfficientQuadraticConv2d layer")


def run(scale: ExperimentScale | None = None, num_images: int = 4) -> dict:
    """Train a small quadratic CNN and analyze its linear vs quadratic responses."""
    scale = scale or get_scale("bench")
    dataset = build_image_dataset(scale, seed=scale.seed + 23)

    model = SimpleCNN(num_classes=scale.num_classes, neuron_type="proposed", rank=scale.rank,
                      base_width=scale.base_width, image_size=scale.image_size,
                      seed=scale.seed)
    trainer, metrics = train_image_classifier(model, dataset, scale,
                                              epochs=scale.analysis_epochs)

    layer = _first_quadratic_conv(model)
    images = dataset.test_images[:num_images]
    responses = layer_responses(layer, images)

    rows = []
    for image_index in range(images.shape[0]):
        linear_energy = frequency_energy_split(responses.linear[image_index])
        quadratic_energy = frequency_energy_split(responses.quadratic[image_index])
        rows.append({
            "image": image_index,
            "linear_low_fraction": linear_energy["low_fraction"],
            "quadratic_low_fraction": quadratic_energy["low_fraction"],
            "quadratic_more_low_frequency":
                quadratic_energy["low_fraction"] > linear_energy["low_fraction"],
            "linear_response_std": float(np.std(responses.linear[image_index])),
            "quadratic_response_std": float(np.std(responses.quadratic[image_index])),
        })

    mean_linear = float(np.mean([row["linear_low_fraction"] for row in rows]))
    mean_quadratic = float(np.mean([row["quadratic_low_fraction"] for row in rows]))
    return {
        "rows": rows,
        "responses": responses,
        "summary": {
            "test_accuracy": metrics["accuracy"],
            "mean_linear_low_fraction": mean_linear,
            "mean_quadratic_low_fraction": mean_quadratic,
            "quadratic_is_lower_frequency": mean_quadratic > mean_linear,
        },
        "report": format_table(rows, columns=["image", "linear_low_fraction",
                                              "quadratic_low_fraction",
                                              "quadratic_more_low_frequency"]),
        "scale": scale.name,
    }


from .registry import register

register(name="fig8", artifact="Fig. 8",
         title="Linear vs quadratic neuron response frequency analysis",
         runner=run)


def main(scale_name: str = "bench") -> None:
    """Command-line entry point: print the Fig. 8 response analysis."""
    result = run(get_scale(scale_name))
    print("Fig. 8 — linear vs quadratic response frequency analysis")
    print(result["report"])
    print()
    for key, value in result["summary"].items():
        print(f"{key}: {value}")


if __name__ == "__main__":
    main()
