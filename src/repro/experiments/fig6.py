"""Fig. 6 — training stability: proposed neuron vs kervolutional neurons (KNN-n).

The paper trains ResNet-18 on ImageNet with (a) the proposed quadratic neuron
in every convolution and (b) kervolutional neurons [14] deployed only in the
first n ∈ {3, 7, 11, 15} layers.  With few kervolutional layers training is
stable; with many, the loss fluctuates heavily and eventually diverges, while
the proposed neuron trains stably everywhere.

:func:`run` reproduces the study on the synthetic ImageNet stand-in with a
scaled ResNet-18: every configuration is trained with the same recipe, per-
epoch curves are recorded, and divergence / fluctuation statistics are
summarized through :mod:`repro.analysis.stability`.
"""

from __future__ import annotations

from ..analysis.stability import StabilityReport, analyze_history, compare_stability
from ..data import DataLoader, SyntheticImageClassification
from ..models import ResNet18
from .common import make_trainer
from .config import ExperimentScale, get_scale
from .reporting import format_table

__all__ = ["run", "stability_configurations"]


def stability_configurations(scale: ExperimentScale) -> list[dict]:
    """The Fig. 6 model configurations: proposed everywhere, KNN in the first n layers."""
    configurations = [{
        "label": "Ours",
        "neuron_type": "proposed",
        "first_n": None,
        "neuron_kwargs": {},
    }]
    for first_n in scale.kervolution_first_n:
        configurations.append({
            "label": f"KNN-{first_n}",
            "neuron_type": "kervolution",
            "first_n": int(first_n),
            "neuron_kwargs": {"degree": scale.kervolution_degree},
        })
    return configurations


def run(scale: ExperimentScale | None = None) -> dict:
    """Train every stability configuration and return curves plus stability reports."""
    scale = scale or get_scale("bench")
    dataset = SyntheticImageClassification(
        num_classes=scale.stability_num_classes,
        image_size=scale.stability_image_size,
        train_size=scale.stability_train_size,
        test_size=max(scale.stability_train_size // 4, 32),
        seed=scale.seed + 7)

    curves: dict[str, list[dict]] = {}
    reports: list[StabilityReport] = []
    for configuration in stability_configurations(scale):
        model = ResNet18(num_classes=scale.stability_num_classes,
                         neuron_type=configuration["neuron_type"],
                         rank=scale.rank,
                         base_width=scale.stability_base_width,
                         neuron_first_n=configuration["first_n"],
                         neuron_kwargs=configuration["neuron_kwargs"],
                         seed=scale.seed)
        loader = DataLoader(dataset.train_images, dataset.train_labels,
                            batch_size=scale.batch_size, shuffle=True, seed=scale.seed)
        # The stability study deliberately uses the plain high learning rate of
        # the ImageNet recipe with no gradient clipping, so instability shows.
        trainer = make_trainer(model, scale, epochs=scale.stability_epochs,
                               learning_rate=scale.learning_rate,
                               quadratic_learning_rate=scale.quadratic_learning_rate)
        trainer.fit(loader, scale.stability_epochs,
                    eval_inputs=dataset.test_images, eval_targets=dataset.test_labels,
                    stop_on_divergence=False)
        curves[configuration["label"]] = trainer.history.to_list()
        reports.append(analyze_history(trainer.history, label=configuration["label"]))

    report_rows = [report.as_dict() for report in reports]
    return {
        "curves": curves,
        "reports": report_rows,
        "comparison": compare_stability(reports),
        "report": format_table(report_rows,
                               columns=["label", "diverged", "divergence_epoch",
                                        "loss_fluctuation", "max_loss",
                                        "best_train_accuracy", "eval_extreme_values"]),
        "scale": scale.name,
    }


from .registry import register

register(name="fig6", artifact="Fig. 6",
         title="Training stability: proposed neuron vs kervolutional KNN-n",
         runner=run)


def main(scale_name: str = "bench") -> None:
    """Command-line entry point: print the Fig. 6 stability comparison."""
    result = run(get_scale(scale_name))
    print("Fig. 6 — training stability (proposed vs KNN-n)")
    print(result["report"])
    print()
    print("stable:", ", ".join(result["comparison"]["stable"]))
    print("diverged:", ", ".join(result["comparison"]["diverged"]) or "(none)")


if __name__ == "__main__":
    main()
