"""Shared experiment runner with content-addressed artifact caching.

One runner executes every registered :class:`~repro.experiments.registry.ExperimentSpec`.
Before running, the experiment's configuration — spec name + spec version +
the full :class:`~repro.experiments.config.ExperimentScale` — is hashed; the
JSON artifact is cached under ``<cache_dir>/<name>-<scale>-<hash12>.json``.
A second invocation with an unchanged configuration is a cache hit and skips
the (expensive) training entirely, which makes sweeps incremental: interrupt
``run all`` at any point and re-running resumes where it left off, and
changing any scale knob (or bumping ``spec.version``) changes the hash and
transparently invalidates only the affected artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from ..io.serialization import to_jsonable
from .config import ExperimentScale, get_scale
from .registry import ExperimentSpec, get_spec

__all__ = ["ExperimentOutcome", "config_hash", "artifact_path",
           "run_experiment", "run_many", "default_cache_dir"]

#: Version of the artifact JSON layout (not of any single experiment).
ARTIFACT_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """Artifact cache root: ``$REPRO_ARTIFACTS`` or ``./artifacts``."""
    return Path(os.environ.get("REPRO_ARTIFACTS", "artifacts"))


@dataclass
class ExperimentOutcome:
    """Result of one :func:`run_experiment` call.

    ``artifact`` is the JSON structure written to / read from ``path``:
    ``{"meta": {...}, "result": <sanitized driver result>}``.  ``cache_hit``
    tells whether the driver actually ran; ``elapsed_seconds`` is 0.0 for
    cache hits.
    """

    name: str
    scale: str
    config_hash: str
    path: Path
    cache_hit: bool
    elapsed_seconds: float
    artifact: dict

    @property
    def result(self) -> dict:
        return self.artifact["result"]


def resolve_scale(scale: str | ExperimentScale) -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    return get_scale(scale)


def config_hash(spec: ExperimentSpec, scale: ExperimentScale) -> str:
    """SHA-256 over the experiment's full configuration (name, version, scale)."""
    config = {
        "experiment": spec.name,
        "spec_version": spec.version,
        "scale": to_jsonable(asdict(scale)) if spec.uses_scale else None,
    }
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def artifact_path(cache_dir: Path, spec: ExperimentSpec, scale: ExperimentScale,
                  digest: str) -> Path:
    # Scale-independent experiments get one artifact regardless of the sweep's
    # --scale, matching their scale-independent config hash.
    scale_tag = scale.name if spec.uses_scale else "noscale"
    return Path(cache_dir) / f"{spec.name}-{scale_tag}-{digest[:12]}.json"


def _read_artifact(path: Path) -> dict | None:
    """Load a cached artifact; ``None`` (→ cache miss) if unreadable or from a
    different artifact-format version, so layout changes recompute instead of
    serving stale structures."""
    try:
        artifact = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if artifact.get("meta", {}).get("format_version") != ARTIFACT_FORMAT_VERSION:
        return None
    return artifact


def run_experiment(name: str, scale: str | ExperimentScale = "bench",
                   cache_dir: str | Path | None = None,
                   force: bool = False, use_cache: bool = True) -> ExperimentOutcome:
    """Run one registered experiment, reusing its cached artifact when possible.

    ``force`` (or ``use_cache=False``) bypasses the cache check; the fresh
    artifact still overwrites the cache entry so later runs benefit.
    """
    spec = get_spec(name)
    scale = resolve_scale(scale)
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    digest = config_hash(spec, scale)
    path = artifact_path(cache_dir, spec, scale, digest)

    if use_cache and not force and path.exists():
        artifact = _read_artifact(path)
        if artifact is not None:
            return ExperimentOutcome(name=name, scale=scale.name, config_hash=digest,
                                     path=path, cache_hit=True, elapsed_seconds=0.0,
                                     artifact=artifact)

    start = time.perf_counter()
    result = spec.runner(scale) if spec.uses_scale else spec.runner()
    elapsed = time.perf_counter() - start

    artifact = {
        "meta": {
            "experiment": spec.name,
            "artifact": spec.artifact,
            "title": spec.title,
            "scale": scale.name,
            "config_hash": digest,
            "spec_version": spec.version,
            "format_version": ARTIFACT_FORMAT_VERSION,
            "elapsed_seconds": elapsed,
        },
        "result": to_jsonable(result),
    }
    cache_dir.mkdir(parents=True, exist_ok=True)
    temp_path = path.with_name(path.name + ".tmp")
    temp_path.write_text(json.dumps(artifact, indent=2))
    os.replace(temp_path, path)
    return ExperimentOutcome(name=name, scale=scale.name, config_hash=digest,
                             path=path, cache_hit=False, elapsed_seconds=elapsed,
                             artifact=artifact)


def run_many(names: list[str], scale: str | ExperimentScale = "bench",
             cache_dir: str | Path | None = None, force: bool = False,
             use_cache: bool = True, progress=None) -> list[ExperimentOutcome]:
    """Run several experiments in sequence (incrementally, via the cache).

    ``progress`` is an optional callable receiving each
    :class:`ExperimentOutcome` as it completes.
    """
    outcomes = []
    for name in names:
        outcome = run_experiment(name, scale=scale, cache_dir=cache_dir,
                                 force=force, use_cache=use_cache)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return outcomes
