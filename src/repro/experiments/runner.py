"""Shared experiment runner: content-addressed artifact cache + process-pool sweeps.

One runner executes every registered :class:`~repro.experiments.registry.ExperimentSpec`.
Before running, the experiment's configuration — spec name + spec version +
the full :class:`~repro.experiments.config.ExperimentScale` — is hashed; the
JSON artifact is cached under ``<cache_dir>/<name>-<scale>-<hash12>.json``.
A second invocation with an unchanged configuration is a cache hit and skips
the (expensive) training entirely, which makes sweeps incremental: interrupt
``run all`` at any point and re-running resumes where it left off, and
changing any scale knob (or bumping ``spec.version``) changes the hash and
transparently invalidates only the affected artifacts.

:func:`run_many` fans experiments out over a process pool
(:mod:`repro.parallel`): each worker re-resolves its spec *by name* from the
registry (specs never cross the process boundary), takes an ``fcntl`` file
lock on the artifact's cache key, re-checks the cache under the lock (a
concurrent worker may have just trained the same configuration — the loser of
the race gets a cache hit instead of a duplicate training run), and writes the
artifact via an atomic temp-file + rename so a crash can never leave a torn
JSON document to poison later cache reads.  Worker failures are retried once
and then reported as per-experiment errors; one bad experiment never aborts
the sweep.

Artifacts are deliberately free of wall-clock metadata, so ``--jobs N`` and
``--jobs 1`` produce byte-identical files (timings live on the in-memory
:class:`ExperimentOutcome` only).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from ..io.serialization import atomic_write_json, to_jsonable
from ..parallel import FileLock, Task, effective_jobs, run_tasks
from ..parallel.executor import JOBS_ENV
from .config import ExperimentScale, get_scale, scale_from_payload, scale_to_payload
from .registry import ExperimentSpec, get_spec

__all__ = ["ExperimentOutcome", "config_hash", "artifact_path", "bundle_dir_path",
           "active_bundle_dir", "run_experiment", "run_experiment_task",
           "run_many", "default_cache_dir", "BUNDLE_DIR_ENV"]

#: Version of the artifact JSON layout (not of any single experiment).
#: Bumped to 2 when wall-clock metadata left the artifact (parallel runs must
#: be byte-identical to sequential ones); to 3 when the meta section gained
#: the ``bundles`` listing of servable model bundles produced by the run.
ARTIFACT_FORMAT_VERSION = 3

#: While an experiment driver runs, this environment variable points at the
#: directory where it (and any grid-cell worker process it fans out to)
#: should drop servable model bundles.  An environment variable rather than a
#: Python context so the location survives the spawn boundary of per-model
#: grids.
BUNDLE_DIR_ENV = "REPRO_BUNDLE_DIR"


def default_cache_dir() -> Path:
    """Artifact cache root: ``$REPRO_ARTIFACTS`` or ``./artifacts``."""
    return Path(os.environ.get("REPRO_ARTIFACTS", "artifacts"))


@dataclass
class ExperimentOutcome:
    """Result of one :func:`run_experiment` call.

    ``artifact`` is the JSON structure written to / read from ``path``:
    ``{"meta": {...}, "result": <sanitized driver result>}``.  ``cache_hit``
    tells whether the driver actually ran; ``elapsed_seconds`` is 0.0 for
    cache hits.  ``error`` is set (and ``artifact`` empty) when the
    experiment failed after retries in a :func:`run_many` sweep.
    """

    name: str
    scale: str
    config_hash: str
    path: Path
    cache_hit: bool
    elapsed_seconds: float
    artifact: dict
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def result(self) -> dict:
        return self.artifact["result"]


def resolve_scale(scale: str | ExperimentScale) -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    return get_scale(scale)


def config_hash(spec: ExperimentSpec, scale: ExperimentScale) -> str:
    """SHA-256 over the experiment's full configuration (name, version, scale)."""
    config = {
        "experiment": spec.name,
        "spec_version": spec.version,
        "scale": to_jsonable(asdict(scale)) if spec.uses_scale else None,
    }
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def artifact_path(cache_dir: Path, spec: ExperimentSpec, scale: ExperimentScale,
                  digest: str) -> Path:
    # Scale-independent experiments get one artifact regardless of the sweep's
    # --scale, matching their scale-independent config hash.
    scale_tag = scale.name if spec.uses_scale else "noscale"
    return Path(cache_dir) / f"{spec.name}-{scale_tag}-{digest[:12]}.json"


def bundle_dir_path(cache_dir: Path, spec: ExperimentSpec, scale: ExperimentScale,
                    digest: str) -> Path:
    """Where one experiment configuration's servable bundles live.

    Mirrors :func:`artifact_path` (same ``<name>-<scale>-<hash12>`` key) under
    ``<cache_dir>/bundles/``, so bundles are invalidated/recomputed exactly
    when their artifact is.
    """
    scale_tag = scale.name if spec.uses_scale else "noscale"
    return Path(cache_dir) / "bundles" / f"{spec.name}-{scale_tag}-{digest[:12]}"


def active_bundle_dir() -> Path | None:
    """The bundle directory of the currently-running experiment, if any.

    Set by :func:`run_experiment` for the duration of the driver call (and
    inherited by grid-cell worker processes); drivers and
    :func:`~repro.experiments.common.train_image_classifier` consult it to
    decide where — and whether — to save trained models as bundles.
    """
    value = os.environ.get(BUNDLE_DIR_ENV)
    return Path(value) if value else None


@contextlib.contextmanager
def _bundle_environment(path: Path):
    previous = os.environ.get(BUNDLE_DIR_ENV)
    os.environ[BUNDLE_DIR_ENV] = str(path)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(BUNDLE_DIR_ENV, None)
        else:
            os.environ[BUNDLE_DIR_ENV] = previous


def _lock_path(path: Path) -> Path:
    # Locks live in a sidecar directory so the artifact directory itself stays
    # clean (byte-comparable across sweeps).
    return path.parent / ".locks" / (path.name + ".lock")


def _read_artifact(path: Path) -> dict | None:
    """Load a cached artifact; ``None`` (→ cache miss) if unreadable or from a
    different artifact-format version, so layout changes recompute instead of
    serving stale structures."""
    try:
        artifact = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if artifact.get("meta", {}).get("format_version") != ARTIFACT_FORMAT_VERSION:
        return None
    return artifact


def run_experiment(name: str, scale: str | ExperimentScale = "bench",
                   cache_dir: str | Path | None = None,
                   force: bool = False, use_cache: bool = True) -> ExperimentOutcome:
    """Run one registered experiment, reusing its cached artifact when possible.

    ``force`` (or ``use_cache=False``) bypasses the cache check; the fresh
    artifact still overwrites the cache entry so later runs benefit.

    Concurrent-safe: the cache-check → train → write sequence runs under a
    per-cache-key file lock with a second cache check after acquisition, so
    two processes racing the same configuration train it exactly once — the
    second comes back as a cache hit.
    """
    spec = get_spec(name)
    scale = resolve_scale(scale)
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    digest = config_hash(spec, scale)
    path = artifact_path(cache_dir, spec, scale, digest)

    def cached_outcome() -> ExperimentOutcome | None:
        if not (use_cache and not force and path.exists()):
            return None
        artifact = _read_artifact(path)
        if artifact is None:
            return None
        return ExperimentOutcome(name=name, scale=scale.name, config_hash=digest,
                                 path=path, cache_hit=True, elapsed_seconds=0.0,
                                 artifact=artifact)

    outcome = cached_outcome()
    if outcome is not None:
        return outcome

    with FileLock(_lock_path(path)):
        # Double-checked locking: a concurrent worker may have produced the
        # artifact while we waited; serving it avoids a duplicate training run.
        outcome = cached_outcome()
        if outcome is not None:
            return outcome

        bundle_dir = bundle_dir_path(cache_dir, spec, scale, digest)
        start = time.perf_counter()
        with _bundle_environment(bundle_dir):
            result = spec.runner(scale) if spec.uses_scale else spec.runner()
        elapsed = time.perf_counter() - start

        # Bundles the driver (or its grid-cell workers) dropped during the
        # run, recorded cache-dir-relative with POSIX separators: the listing
        # is deterministic, so sequential and parallel sweeps still produce
        # byte-identical artifacts.
        bundles = sorted(entry.relative_to(cache_dir).as_posix()
                         for entry in bundle_dir.glob("*.npz")) \
            if bundle_dir.is_dir() else []

        artifact = {
            "meta": {
                "experiment": spec.name,
                "artifact": spec.artifact,
                "title": spec.title,
                "scale": scale.name,
                "config_hash": digest,
                "spec_version": spec.version,
                "format_version": ARTIFACT_FORMAT_VERSION,
                "bundles": bundles,
            },
            "result": to_jsonable(result),
        }
        atomic_write_json(path, artifact)
    return ExperimentOutcome(name=name, scale=scale.name, config_hash=digest,
                             path=path, cache_hit=False, elapsed_seconds=elapsed,
                             artifact=artifact)


def run_experiment_task(name: str, scale, cache_dir: str,
                        force: bool = False, use_cache: bool = True) -> dict:
    """Worker entry point for one experiment of a parallel sweep.

    Receives only primitives (the scale as a :func:`scale_to_payload` dict)
    and re-resolves the spec by name inside the worker; returns a slim
    primitive payload — the parent re-reads the artifact JSON from disk
    rather than shipping it through the pickle channel.
    """
    outcome = run_experiment(name, scale=scale_from_payload(scale),
                             cache_dir=cache_dir, force=force, use_cache=use_cache)
    return {"name": outcome.name, "scale": outcome.scale,
            "config_hash": outcome.config_hash, "path": str(outcome.path),
            "cache_hit": outcome.cache_hit,
            "elapsed_seconds": outcome.elapsed_seconds}


@contextlib.contextmanager
def _jobs_environment(jobs: int):
    """Expose the sweep's worker budget as ``$REPRO_JOBS`` for the duration.

    Per-model grids deep inside a driver read it through
    :func:`~repro.parallel.executor.effective_jobs`: when a *single*
    experiment runs in-process with ``--jobs 4`` its internal grid fans out
    4-wide, while grids inside pool workers are clamped back to 1 by the
    worker's parallel depth.
    """
    previous = os.environ.get(JOBS_ENV)
    os.environ[JOBS_ENV] = str(jobs)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(JOBS_ENV, None)
        else:
            os.environ[JOBS_ENV] = previous


def run_many(names: list[str], scale: str | ExperimentScale = "bench",
             cache_dir: str | Path | None = None, force: bool = False,
             use_cache: bool = True, jobs: int | str | None = None,
             progress=None, on_event=None) -> list[ExperimentOutcome]:
    """Run several experiments, fanning out over a process pool when ``jobs > 1``.

    Returns one :class:`ExperimentOutcome` per name, in input order; failed
    experiments (after one retry) come back with ``.error`` set instead of
    aborting the sweep.  ``progress`` receives each outcome as it is
    finalized; ``on_event`` receives raw
    :class:`~repro.parallel.events.TaskEvent` updates for live reporting.

    ``jobs`` may be an int, ``"auto"`` (one worker per CPU) or ``None``
    (``$REPRO_JOBS`` or 1).  With ``jobs=1`` everything runs inline in this
    process — byte-identical artifacts, no subprocesses.
    """
    names = list(names)
    scale = resolve_scale(scale)
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    resolved_jobs = effective_jobs(jobs)
    scale_payload = scale_to_payload(scale)

    def make_task(index: int, name: str) -> Task:
        return Task(key=f"{index:03d}:{name}",
                    fn="repro.experiments.runner:run_experiment_task",
                    kwargs={"name": name, "scale": scale_payload,
                            "cache_dir": str(cache_dir), "force": force,
                            "use_cache": use_cache})

    def finalize(result, name: str) -> ExperimentOutcome:
        if result.ok:
            payload = result.value
            path = Path(payload["path"])
            artifact = _read_artifact(path)
            if artifact is None:
                # The artifact vanished between the worker writing it and the
                # parent reading it back — surface as a failure, not a crash.
                return _failure_outcome(name, scale, cache_dir,
                                        f"artifact {path} unreadable after run")
            return ExperimentOutcome(name=payload["name"], scale=payload["scale"],
                                     config_hash=payload["config_hash"], path=path,
                                     cache_hit=payload["cache_hit"],
                                     elapsed_seconds=payload["elapsed_seconds"],
                                     artifact=artifact)
        error = result.error or "unknown failure"
        if result.traceback:
            error = f"{error}\n{result.traceback}"
        return _failure_outcome(name, scale, cache_dir, error)

    # Finalize each experiment the moment its task completes (live progress,
    # completion order); the returned list is assembled in input order.
    finalized: dict[int, ExperimentOutcome] = {}

    def handle_result(result) -> None:
        outcome = finalize(result, names[result.index])
        finalized[result.index] = outcome
        if progress is not None:
            progress(outcome)

    tasks = [make_task(index, name) for index, name in enumerate(names)]
    with _jobs_environment(resolved_jobs):
        run_tasks(tasks, jobs=resolved_jobs, retries=1, on_event=on_event,
                  on_result=handle_result)
    return [finalized[index] for index in range(len(names))]


def _failure_outcome(name: str, scale: ExperimentScale, cache_dir: Path,
                     error: str) -> ExperimentOutcome:
    return ExperimentOutcome(name=name, scale=scale.name, config_hash="",
                             path=cache_dir / f"{name}-{scale.name}-failed.json",
                             cache_hit=False, elapsed_seconds=0.0,
                             artifact={}, error=error)
