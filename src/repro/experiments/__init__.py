"""Experiment drivers: one module per table / figure of the paper.

===========  ==================================================================
Module       Paper artifact
===========  ==================================================================
``table1``   Table I  — neuron parameter/MAC complexity
``fig4``     Fig. 4   — linear vs proposed ResNets on CIFAR-10 (accuracy vs cost)
``fig5``     Fig. 5   — proposed vs prior quadratic neurons (Quad-1 / Quad-2)
``fig6``     Fig. 6   — training stability vs kervolutional neurons (KNN-n)
``table2``   Table II — Transformer translation BLEU and parameter cost
``fig7``     Fig. 7   — linear vs quadratic parameter distributions per layer
``fig8``     Fig. 8   — linear vs quadratic neuron response analysis
``ablation`` Extra    — rank-k sweep and vectorized-output ablation
===========  ==================================================================
"""

from . import ablation, fig4, fig5, fig6, fig7, fig8, table1, table2
from .config import ExperimentScale, SCALES, get_scale
from .registry import ExperimentSpec, all_specs, experiment_names, get_spec, register
from .reporting import SweepReporter, format_table, format_percentage, relative_change
from .runner import ExperimentOutcome, config_hash, run_experiment, run_many

__all__ = [
    "ablation",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table1",
    "table2",
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "ExperimentSpec",
    "register",
    "get_spec",
    "experiment_names",
    "all_specs",
    "ExperimentOutcome",
    "SweepReporter",
    "config_hash",
    "run_experiment",
    "run_many",
    "format_table",
    "format_percentage",
    "relative_change",
]
