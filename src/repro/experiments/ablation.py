"""Ablations of the proposed neuron's design choices.

The paper motivates two design decisions analytically (Sec. III): the rank-k
eigendecomposition (expressivity vs cost knob) and the vectorized output
(reusing the intermediate features ``fᵏ`` instead of discarding them).  This
driver quantifies both on the synthetic classification workload:

* ``rank sweep`` — accuracy and cost of the proposed neuron for several k at a
  fixed output width;
* ``vectorized-output ablation`` — the same network with the extra outputs
  enabled vs disabled (the disabled variant needs one neuron per output
  channel, paying the full quadratic cost for every channel).
"""

from __future__ import annotations

from ..metrics.profiler import profile_model
from ..models import SimpleCNN
from ..tensor import Tensor
from .common import build_image_dataset, train_image_classifier
from .config import ExperimentScale, get_scale
from .reporting import format_table

__all__ = ["run_rank_sweep", "run_vectorized_output_ablation", "run"]


def _evaluate_configuration(label: str, neuron_kwargs: dict, rank: int,
                            scale: ExperimentScale, dataset) -> dict:
    model = SimpleCNN(num_classes=scale.num_classes, neuron_type="proposed", rank=rank,
                      base_width=scale.base_width, image_size=scale.image_size,
                      neuron_kwargs=neuron_kwargs, seed=scale.seed)
    profile = profile_model(model, Tensor(dataset.test_images[:1]))
    trainer, metrics = train_image_classifier(model, dataset, scale)
    return {
        "configuration": label,
        "rank": rank,
        "test_accuracy": metrics["accuracy"],
        "parameters": profile.total_parameters,
        "macs": profile.total_macs,
        "diverged": trainer.diverged,
    }


def run_rank_sweep(scale: ExperimentScale | None = None,
                   ranks: tuple[int, ...] = (1, 3, 6, 9)) -> dict:
    """Sweep the decomposition rank k at fixed output width."""
    scale = scale or get_scale("bench")
    dataset = build_image_dataset(scale, seed=scale.seed + 41)
    rows = [_evaluate_configuration(f"rank-{rank}", {}, rank, scale, dataset)
            for rank in ranks]
    return {"rows": rows, "report": format_table(rows), "scale": scale.name}


def run_vectorized_output_ablation(scale: ExperimentScale | None = None) -> dict:
    """Compare the proposed neuron with and without the vectorized output."""
    scale = scale or get_scale("bench")
    dataset = build_image_dataset(scale, seed=scale.seed + 43)
    rows = [
        _evaluate_configuration("vectorized-output", {"vectorized_output": True},
                                scale.rank, scale, dataset),
        _evaluate_configuration("scalar-output", {"vectorized_output": False},
                                scale.rank, scale, dataset),
    ]
    comparison = {
        "parameter_ratio": rows[1]["parameters"] / max(rows[0]["parameters"], 1),
        "mac_ratio": rows[1]["macs"] / max(rows[0]["macs"], 1),
        "accuracy_difference": rows[0]["test_accuracy"] - rows[1]["test_accuracy"],
    }
    return {"rows": rows, "comparison": comparison, "report": format_table(rows),
            "scale": scale.name}


def run(scale: ExperimentScale | None = None) -> dict:
    """Run both ablations."""
    scale = scale or get_scale("bench")
    return {
        "rank_sweep": run_rank_sweep(scale),
        "vectorized_output": run_vectorized_output_ablation(scale),
    }


from .registry import register

register(name="ablation", artifact="Ablation",
         title="Decomposition-rank sweep and vectorized-output ablation",
         runner=run, report_keys=("rank_sweep", "vectorized_output"))


def main(scale_name: str = "bench") -> None:
    """Command-line entry point: print both ablation tables."""
    result = run(get_scale(scale_name))
    print("Ablation — decomposition rank")
    print(result["rank_sweep"]["report"])
    print()
    print("Ablation — vectorized output")
    print(result["vectorized_output"]["report"])


if __name__ == "__main__":
    main()
