"""Numerical gradient checking for the autograd engine.

Central finite differences are compared against the analytic gradients
produced by :meth:`repro.tensor.Tensor.backward`.  The checker is used both in
the test suite (to validate every primitive operation) and as a debugging tool
for new layers.

:func:`check_registered_ops` is the registry-driven mode: it sweeps **every**
op registered in :mod:`repro.tensor.ops` using the op's own declared
``sample`` inputs, so a newly registered primitive is gradient-checked
automatically without touching any test list.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .engine import apply_op
from .ops import OPS
from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients", "check_registered_ops",
           "max_relative_error"]


def numerical_gradient(func: Callable[[], Tensor], tensor: Tensor,
                       epsilon: float = 1e-5) -> np.ndarray:
    """Estimate d(func())/d(tensor) with central finite differences.

    ``func`` must be a zero-argument callable returning a scalar
    :class:`Tensor` and must read ``tensor.data`` on every call.
    """
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        loss_plus = float(func().data)
        flat[index] = original - epsilon
        loss_minus = float(func().data)
        flat[index] = original
        grad_flat[index] = (loss_plus - loss_minus) / (2.0 * epsilon)
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Maximum elementwise relative error between two gradient estimates."""
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    scale = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / scale))


def check_gradients(func: Callable[[], Tensor], parameters: Sequence[Tensor],
                    epsilon: float = 1e-5, tolerance: float = 1e-4) -> dict:
    """Verify analytic gradients of ``func`` with respect to ``parameters``.

    Returns a report dictionary with per-parameter relative errors.  Raises
    ``AssertionError`` if any relative error exceeds ``tolerance``.  Parameters
    should hold ``float64`` data for the finite differences to be reliable.
    """
    for parameter in parameters:
        parameter.zero_grad()
    loss = func()
    loss.backward()

    report = {}
    for index, parameter in enumerate(parameters):
        if parameter.grad is None:
            raise AssertionError(f"parameter {index} received no gradient")
        numeric = numerical_gradient(func, parameter, epsilon=epsilon)
        error = max_relative_error(parameter.grad, numeric)
        report[index] = error
        if error > tolerance:
            raise AssertionError(
                f"gradient check failed for parameter {index}: relative error {error:.3e} "
                f"exceeds tolerance {tolerance:.1e}")
    return report


def check_registered_ops(names: Sequence[str] | None = None, epsilon: float = 1e-5,
                         tolerance: float = 1e-4, seed: int = 0) -> dict:
    """Gradient-check every op in the registry against finite differences.

    For each registered :class:`~repro.tensor.ops.OpDef`, the op's declared
    ``sample`` builds float64 inputs (chosen to avoid non-differentiable
    kinks); the objective contracts the op output with a fixed random
    coefficient array so every output element influences the scalar loss.

    Parameters
    ----------
    names:
        Optional subset of op names to check; by default the whole registry
        is swept.  Unknown names raise ``KeyError``.
    epsilon, tolerance:
        Forwarded to :func:`check_gradients`.
    seed:
        Seed of the sample-input generator.

    Returns
    -------
    ``{op_name: max_relative_error}`` for every checked op.  Raises
    ``AssertionError`` if an op has no sample (every registered op must
    declare one) or if any gradient disagrees with finite differences.
    """
    if names is not None:
        missing = [name for name in names if name not in OPS]
        if missing:
            raise KeyError(f"unknown ops requested: {missing}")
    rng = np.random.default_rng(seed)
    report: dict[str, float] = {}
    for name in sorted(OPS):
        if names is not None and name not in names:
            continue
        opdef = OPS[name]
        if opdef.sample is None:
            raise AssertionError(
                f"op '{name}' declares no gradcheck sample; every registered op "
                f"must provide one so the registry sweep stays exhaustive")
        arrays, kwargs = opdef.sample(rng)
        parameters = [Tensor(np.asarray(array, dtype=np.float64), requires_grad=True)
                      for array in arrays]
        probe = apply_op(name, *parameters, **kwargs)
        coefficients = Tensor(rng.standard_normal(probe.shape))

        def objective(name=name, parameters=parameters, kwargs=kwargs,
                      coefficients=coefficients):
            return (apply_op(name, *parameters, **kwargs) * coefficients).sum()

        op_report = check_gradients(objective, parameters,
                                    epsilon=epsilon, tolerance=tolerance)
        report[name] = max(op_report.values()) if op_report else 0.0
    return report
