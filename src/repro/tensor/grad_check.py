"""Numerical gradient checking for the autograd engine.

Central finite differences are compared against the analytic gradients
produced by :meth:`repro.tensor.Tensor.backward`.  The checker is used both in
the test suite (to validate every primitive operation) and as a debugging tool
for new layers.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients", "max_relative_error"]


def numerical_gradient(func: Callable[[], Tensor], tensor: Tensor,
                       epsilon: float = 1e-5) -> np.ndarray:
    """Estimate d(func())/d(tensor) with central finite differences.

    ``func`` must be a zero-argument callable returning a scalar
    :class:`Tensor` and must read ``tensor.data`` on every call.
    """
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        loss_plus = float(func().data)
        flat[index] = original - epsilon
        loss_minus = float(func().data)
        flat[index] = original
        grad_flat[index] = (loss_plus - loss_minus) / (2.0 * epsilon)
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Maximum elementwise relative error between two gradient estimates."""
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    scale = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / scale))


def check_gradients(func: Callable[[], Tensor], parameters: Sequence[Tensor],
                    epsilon: float = 1e-5, tolerance: float = 1e-4) -> dict:
    """Verify analytic gradients of ``func`` with respect to ``parameters``.

    Returns a report dictionary with per-parameter relative errors.  Raises
    ``AssertionError`` if any relative error exceeds ``tolerance``.  Parameters
    should hold ``float64`` data for the finite differences to be reliable.
    """
    for parameter in parameters:
        parameter.zero_grad()
    loss = func()
    loss.backward()

    report = {}
    for index, parameter in enumerate(parameters):
        if parameter.grad is None:
            raise AssertionError(f"parameter {index} received no gradient")
        numeric = numerical_gradient(func, parameter, epsilon=epsilon)
        error = max_relative_error(parameter.grad, numeric)
        report[index] = error
        if error > tolerance:
            raise AssertionError(
                f"gradient check failed for parameter {index}: relative error {error:.3e} "
                f"exceeds tolerance {tolerance:.1e}")
    return report
