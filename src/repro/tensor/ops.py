"""Declarative autograd op registry: every primitive declared once.

This module is the bottom layer of the autograd stack:

``ops.py`` (this file)
    Pure NumPy definitions.  Each primitive operation is registered exactly
    once as an :class:`OpDef` — a ``(name, forward, vjp, sample)`` record.
    ``forward`` maps input arrays to an output array; ``vjp`` maps the output
    gradient back to one gradient per input; ``sample`` builds a random but
    well-conditioned input set so :func:`repro.tensor.grad_check
    .check_registered_ops` can sweep the whole registry with finite
    differences.  Nothing in this file knows about :class:`Tensor`.

``engine.py``
    The graph executor.  :func:`repro.tensor.engine.apply_op` looks up an
    :class:`OpDef`, runs its forward, and wires the output into the autograd
    graph; :func:`repro.tensor.engine.backward` topologically sorts the graph
    and drives the VJPs, accumulating gradients in place.

``tensor.py``
    A thin :class:`Tensor` wrapper whose operator methods dispatch through
    ``apply_op``.

Conventions
-----------
* ``forward(ctx, *arrays, **kwargs) -> ndarray``.  ``ctx`` is an
  :class:`OpContext`; anything the VJP needs besides the raw inputs is stored
  on ``ctx.saved`` (only when ``ctx.requires_grad`` is set — inference-mode
  calls skip the bookkeeping).
* ``vjp(ctx, grad, needs) -> tuple`` aligned with the inputs.  ``needs[i]``
  tells the VJP whether input ``i`` requires a gradient; entries for inputs
  that do not may be ``None``.
* VJPs must never mutate ``grad`` — the executor may still hand the same
  buffer to a sibling node.
* ``sample(rng) -> (inputs, kwargs)`` must avoid non-differentiable kinks
  (``relu`` at 0, ties in ``max`` …) so central differences are reliable.

The registry also hosts the fused composite kernels for the paper's hot
paths: ``quadratic_response`` / ``quadratic_conv2d`` evaluate the proposed
neuron ``y = wᵀx + b + (fᵏ)ᵀΛᵏfᵏ`` with a single hand-derived VJP instead of
the ~8-node subgraph the unfused composition builds, and ``conv2d`` shares a
cached im2col column buffer between inference calls.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy import special

__all__ = [
    "OpContext",
    "OpDef",
    "OPS",
    "register_op",
    "get_op",
    "op_names",
    "unbroadcast",
    "conv_output_size",
    "im2col",
    "col2im",
    "ColumnBufferCache",
    "column_cache",
]


# ---------------------------------------------------------------------------
# Registry machinery
# ---------------------------------------------------------------------------

class OpContext:
    """Scratch space shared between one node's forward pass and its VJP.

    ``inputs`` holds the raw input arrays, ``kwargs`` the non-differentiable
    configuration, and ``saved`` whatever the forward stashed for the
    backward.  ``requires_grad`` tells the forward whether a VJP will run at
    all, so it can skip saving intermediates (and reuse scratch buffers) in
    inference mode.
    """

    __slots__ = ("inputs", "kwargs", "requires_grad", "saved")

    def __init__(self, inputs: tuple, kwargs: dict, requires_grad: bool):
        self.inputs = inputs
        self.kwargs = kwargs
        self.requires_grad = requires_grad
        self.saved = None


class OpDef:
    """A primitive operation declared once: ``(name, forward, vjp, sample)``.

    ``elementwise`` marks ops that map inputs to the output point-by-point
    (after broadcasting) with no cross-element data flow; the trace compiler
    (:mod:`repro.tensor.plan`) may fuse chains of such ops and write their
    results into preallocated arena buffers.  ``forward_out`` is the
    out-parameter twin of ``forward`` used for that: ``forward_out(out,
    *arrays, **kwargs)`` must produce **bit-identical** results to ``forward``
    while writing into ``out`` (which is allowed to alias an input array).
    """

    __slots__ = ("name", "forward", "vjp", "sample", "elementwise", "forward_out")

    def __init__(self, name: str, forward: Callable, vjp: Callable,
                 sample: Callable | None = None, elementwise: bool = False,
                 forward_out: Callable | None = None):
        self.name = name
        self.forward = forward
        self.vjp = vjp
        self.sample = sample
        self.elementwise = elementwise
        self.forward_out = forward_out

    def __repr__(self) -> str:
        return f"OpDef({self.name!r})"


OPS: dict[str, OpDef] = {}


def register_op(name: str, forward: Callable, vjp: Callable,
                sample: Callable | None = None, *, elementwise: bool = False,
                forward_out: Callable | None = None) -> OpDef:
    """Register a primitive; raises if ``name`` is already taken."""
    if name in OPS:
        raise ValueError(f"op '{name}' is already registered")
    opdef = OpDef(name, forward, vjp, sample, elementwise, forward_out)
    OPS[name] = opdef
    return opdef


def get_op(name: str) -> OpDef:
    try:
        return OPS[name]
    except KeyError:
        raise KeyError(f"unknown op '{name}'; registered ops: {sorted(OPS)}") from None


def op_names() -> list[str]:
    """Sorted names of every registered primitive."""
    return sorted(OPS)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operand was broadcast during the forward pass, its gradient must
    be summed over the broadcast dimensions.  ``shape`` is the original
    operand shape; ``grad`` has the (possibly larger) output shape.
    """
    if grad.shape == shape:
        return grad
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _flatten_leading(*arrays: np.ndarray) -> list[np.ndarray]:
    """Collapse all leading (batch) dimensions of each array to one."""
    return [a.reshape(-1, a.shape[-1]) for a in arrays]


# -- sample-input helpers (gradient-check sweep) ----------------------------

def _sn(rng, *shape, scale: float = 1.0):
    return rng.standard_normal(shape) * scale


def _positive(rng, *shape):
    return np.abs(rng.standard_normal(shape)) + 0.5


def _away_from_zero(rng, *shape, gap: float = 0.2):
    signs = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    return signs * (gap + rng.random(shape))


def _distinct(rng, *shape, scale: float = 0.1):
    values = rng.permutation(int(np.prod(shape))).astype(np.float64)
    return values.reshape(shape) * scale


# ---------------------------------------------------------------------------
# Arithmetic primitives
# ---------------------------------------------------------------------------

def _add_fw(ctx, a, b):
    return a + b


def _add_out(out, a, b):
    np.add(a, b, out=out)


def _add_vjp(ctx, grad, needs):
    a, b = ctx.inputs
    return (unbroadcast(grad, a.shape) if needs[0] else None,
            unbroadcast(grad, b.shape) if needs[1] else None)


register_op("add", _add_fw, _add_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3), _sn(rng, 3)], {}),
            elementwise=True, forward_out=_add_out)


def _sub_fw(ctx, a, b):
    return a - b


def _sub_out(out, a, b):
    np.subtract(a, b, out=out)


def _sub_vjp(ctx, grad, needs):
    a, b = ctx.inputs
    return (unbroadcast(grad, a.shape) if needs[0] else None,
            unbroadcast(-grad, b.shape) if needs[1] else None)


register_op("sub", _sub_fw, _sub_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3), _sn(rng, 1, 3)], {}),
            elementwise=True, forward_out=_sub_out)


def _neg_fw(ctx, a):
    return -a


def _neg_out(out, a):
    np.negative(a, out=out)


def _neg_vjp(ctx, grad, needs):
    return (-grad,)


register_op("neg", _neg_fw, _neg_vjp, sample=lambda rng: ([_sn(rng, 3, 4)], {}),
            elementwise=True, forward_out=_neg_out)


def _mul_fw(ctx, a, b):
    return a * b


def _mul_out(out, a, b):
    np.multiply(a, b, out=out)


def _mul_vjp(ctx, grad, needs):
    a, b = ctx.inputs
    return (unbroadcast(grad * b, a.shape) if needs[0] else None,
            unbroadcast(grad * a, b.shape) if needs[1] else None)


register_op("mul", _mul_fw, _mul_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3, 4), _sn(rng, 3, 4)], {}),
            elementwise=True, forward_out=_mul_out)


def _div_fw(ctx, a, b):
    return a / b


def _div_out(out, a, b):
    np.divide(a, b, out=out)


def _div_vjp(ctx, grad, needs):
    a, b = ctx.inputs
    return (unbroadcast(grad / b, a.shape) if needs[0] else None,
            unbroadcast(-grad * a / (b ** 2), b.shape) if needs[1] else None)


register_op("div", _div_fw, _div_vjp,
            sample=lambda rng: ([_sn(rng, 3, 3), _positive(rng, 3, 3)], {}),
            elementwise=True, forward_out=_div_out)


def _pow_fw(ctx, a, exponent):
    return a ** exponent


def _pow_out(out, a, exponent):
    np.power(a, exponent, out=out)


def _pow_vjp(ctx, grad, needs):
    (a,) = ctx.inputs
    exponent = ctx.kwargs["exponent"]
    return (grad * exponent * a ** (exponent - 1),)


register_op("pow", _pow_fw, _pow_vjp,
            sample=lambda rng: ([_sn(rng, 3, 4)], {"exponent": 3.0}),
            elementwise=True, forward_out=_pow_out)


def _matmul_fw(ctx, a, b):
    return a @ b


def _matmul_vjp(ctx, grad, needs):
    a, b = ctx.inputs
    grad_a = grad_b = None
    if needs[0]:
        if a.ndim == 1 and b.ndim == 1:
            grad_a = grad * b
        elif b.ndim == 1:
            grad_a = grad[..., None] * b
        elif a.ndim == 1:
            grad_a = np.einsum("...ij,...j->i", b, grad)
        else:
            grad_a = unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
    if needs[1]:
        if a.ndim == 1 and b.ndim == 1:
            grad_b = grad * a
        elif a.ndim == 1:
            grad_b = a[:, None] * grad[..., None, :]
        elif b.ndim == 1:
            grad_b = np.einsum("...ij,...i->j", a, grad)
        else:
            grad_b = unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
    return grad_a, grad_b


register_op("matmul", _matmul_fw, _matmul_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3, 4), _sn(rng, 4, 5)], {}))


def _maximum_fw(ctx, a, b):
    if ctx.requires_grad:
        ctx.saved = a >= b
    return np.maximum(a, b)


def _maximum_out(out, a, b):
    np.maximum(a, b, out=out)


def _maximum_vjp(ctx, grad, needs):
    a, b = ctx.inputs
    a_wins = ctx.saved
    return (unbroadcast(grad * a_wins, a.shape) if needs[0] else None,
            unbroadcast(grad * (~a_wins), b.shape) if needs[1] else None)


def _maximum_sample(rng):
    a = _sn(rng, 4, 4)
    return [a, a + _away_from_zero(rng, 4, 4)], {}


register_op("maximum", _maximum_fw, _maximum_vjp, sample=_maximum_sample,
            elementwise=True, forward_out=_maximum_out)


# ---------------------------------------------------------------------------
# Elementwise functions
# ---------------------------------------------------------------------------

def _exp_fw(ctx, a):
    value = np.exp(a)
    if ctx.requires_grad:
        ctx.saved = value
    return value


def _exp_out(out, a):
    np.exp(a, out=out)


def _exp_vjp(ctx, grad, needs):
    return (grad * ctx.saved,)


register_op("exp", _exp_fw, _exp_vjp, sample=lambda rng: ([_sn(rng, 3, 4)], {}),
            elementwise=True, forward_out=_exp_out)


def _log_fw(ctx, a):
    return np.log(a)


def _log_out(out, a):
    np.log(a, out=out)


def _log_vjp(ctx, grad, needs):
    return (grad / ctx.inputs[0],)


register_op("log", _log_fw, _log_vjp, sample=lambda rng: ([_positive(rng, 3, 4)], {}),
            elementwise=True, forward_out=_log_out)


def _sqrt_fw(ctx, a):
    value = np.sqrt(a)
    if ctx.requires_grad:
        ctx.saved = value
    return value


def _sqrt_out(out, a):
    np.sqrt(a, out=out)


def _sqrt_vjp(ctx, grad, needs):
    return (grad * 0.5 / ctx.saved,)


register_op("sqrt", _sqrt_fw, _sqrt_vjp, sample=lambda rng: ([_positive(rng, 3, 4)], {}),
            elementwise=True, forward_out=_sqrt_out)


def _abs_fw(ctx, a):
    return np.abs(a)


def _abs_out(out, a):
    np.absolute(a, out=out)


def _abs_vjp(ctx, grad, needs):
    return (grad * np.sign(ctx.inputs[0]),)


register_op("abs", _abs_fw, _abs_vjp, sample=lambda rng: ([_away_from_zero(rng, 3, 4)], {}),
            elementwise=True, forward_out=_abs_out)


def _tanh_fw(ctx, a):
    value = np.tanh(a)
    if ctx.requires_grad:
        ctx.saved = value
    return value


def _tanh_out(out, a):
    np.tanh(a, out=out)


def _tanh_vjp(ctx, grad, needs):
    return (grad * (1.0 - ctx.saved ** 2),)


register_op("tanh", _tanh_fw, _tanh_vjp, sample=lambda rng: ([_sn(rng, 3, 4)], {}),
            elementwise=True, forward_out=_tanh_out)


def _sigmoid_fw(ctx, a):
    value = 1.0 / (1.0 + np.exp(-a))
    if ctx.requires_grad:
        ctx.saved = value
    return value


def _sigmoid_out(out, a):
    # Mirrors ``1.0 / (1.0 + np.exp(-a))`` ufunc-by-ufunc so the result is
    # bit-identical to ``_sigmoid_fw`` while using ``out`` as scratch (``out``
    # may alias ``a``; each ufunc reads its input before the aliased store).
    np.negative(a, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)


def _sigmoid_vjp(ctx, grad, needs):
    value = ctx.saved
    return (grad * value * (1.0 - value),)


register_op("sigmoid", _sigmoid_fw, _sigmoid_vjp, sample=lambda rng: ([_sn(rng, 3, 4)], {}),
            elementwise=True, forward_out=_sigmoid_out)


def _relu_fw(ctx, a):
    mask = a > 0
    if ctx.requires_grad:
        ctx.saved = mask
    return a * mask


def _relu_out(out, a):
    # ``a * (a > 0)``, not ``np.maximum(a, 0)``: the mask form propagates the
    # sign of -0.0 exactly like ``_relu_fw`` does.
    np.multiply(a, a > 0, out=out)


def _relu_vjp(ctx, grad, needs):
    return (grad * ctx.saved,)


register_op("relu", _relu_fw, _relu_vjp,
            sample=lambda rng: ([_away_from_zero(rng, 3, 4)], {}),
            elementwise=True, forward_out=_relu_out)


def _gelu_fw(ctx, a):
    cdf = 0.5 * (1.0 + special.erf(a / np.sqrt(2.0)))
    if ctx.requires_grad:
        pdf = np.exp(-0.5 * a ** 2) / np.sqrt(2.0 * np.pi)
        ctx.saved = cdf + a * pdf
    return a * cdf


def _gelu_out(out, a):
    cdf = 0.5 * (1.0 + special.erf(a / np.sqrt(2.0)))
    np.multiply(a, cdf, out=out)


def _gelu_vjp(ctx, grad, needs):
    return (grad * ctx.saved,)


register_op("gelu", _gelu_fw, _gelu_vjp, sample=lambda rng: ([_sn(rng, 3, 5)], {}),
            elementwise=True, forward_out=_gelu_out)


def _clip_fw(ctx, a, min_value=None, max_value=None):
    if ctx.requires_grad:
        inside = np.ones_like(a, dtype=bool)
        if min_value is not None:
            inside &= a >= min_value
        if max_value is not None:
            inside &= a <= max_value
        ctx.saved = inside
    return np.clip(a, min_value, max_value)


def _clip_vjp(ctx, grad, needs):
    return (grad * ctx.saved,)


def _clip_sample(rng):
    # Keep every value at least 0.08 away from the clip boundaries so the
    # central differences never straddle a kink.
    shape = (3, 4)
    signs = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    magnitude = np.where(rng.random(shape) < 0.5,
                         rng.uniform(0.05, 0.42, shape),
                         rng.uniform(0.58, 1.5, shape))
    return [signs * magnitude], {"min_value": -0.5, "max_value": 0.5}


def _clip_out(out, a, min_value=None, max_value=None):
    np.clip(a, min_value, max_value, out=out)


register_op("clip", _clip_fw, _clip_vjp, sample=_clip_sample,
            elementwise=True, forward_out=_clip_out)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def _sum_fw(ctx, a, axis=None, keepdims=False):
    return a.sum(axis=axis, keepdims=keepdims)


def _sum_vjp(ctx, grad, needs):
    (a,) = ctx.inputs
    axis = ctx.kwargs.get("axis")
    keepdims = ctx.kwargs.get("keepdims", False)
    if axis is None:
        return (np.broadcast_to(grad, a.shape),)
    grad_local = grad
    if not keepdims:
        grad_local = np.expand_dims(grad_local, axis=axis)
    return (np.broadcast_to(grad_local, a.shape),)


register_op("sum", _sum_fw, _sum_vjp,
            sample=lambda rng: ([_sn(rng, 3, 4, 2)], {"axis": (0, 2)}))


def _max_fw(ctx, a, axis=None, keepdims=False):
    return a.max(axis=axis, keepdims=keepdims)


def _max_vjp(ctx, grad, needs):
    (a,) = ctx.inputs
    axis = ctx.kwargs.get("axis")
    keepdims = ctx.kwargs.get("keepdims", False)
    if axis is None:
        mask = (a == a.max()).astype(a.dtype)
        mask /= mask.sum()
        return (mask * grad,)
    max_keep = a.max(axis=axis, keepdims=True)
    mask = (a == max_keep).astype(a.dtype)
    mask /= mask.sum(axis=axis, keepdims=True)
    grad_local = grad
    if not keepdims:
        grad_local = np.expand_dims(grad_local, axis=axis)
    return (mask * grad_local,)


register_op("max", _max_fw, _max_vjp,
            sample=lambda rng: ([_distinct(rng, 3, 4, 5)], {"axis": 1}))


# ---------------------------------------------------------------------------
# Softmax family (fused, numerically stable)
# ---------------------------------------------------------------------------

def _softmax_fw(ctx, a, axis=-1):
    exps = np.exp(a - a.max(axis=axis, keepdims=True))
    value = exps / exps.sum(axis=axis, keepdims=True)
    if ctx.requires_grad:
        ctx.saved = value
    return value


def _softmax_vjp(ctx, grad, needs):
    axis = ctx.kwargs.get("axis", -1)
    value = ctx.saved
    inner = (grad * value).sum(axis=axis, keepdims=True)
    return ((grad - inner) * value,)


register_op("softmax", _softmax_fw, _softmax_vjp,
            sample=lambda rng: ([_sn(rng, 4, 6)], {"axis": -1}))


def _attention_softmax_fw(ctx, a, axis=-1):
    """Softmax whose denominator is accumulated strictly left-to-right.

    ``np.sum``'s pairwise reduction regroups as the reduced length changes,
    so a softmax over masked padding columns (additive ``-1e9`` → exp of
    exactly 0.0) is not bitwise equal to the softmax over just the real
    columns.  Attention needs it to be: KV-cached incremental decoding
    attends over a fixed-capacity window whose tail is masked padding, and
    its output must match the full-prefix recompute byte for byte.  A
    cumulative (sequential) sum makes trailing exact-zero terms
    byte-transparent and each row's denominator independent of every other
    row, which is what the cache path relies on.
    """
    exps = np.exp(a - a.max(axis=axis, keepdims=True))
    tail = [slice(None)] * exps.ndim
    tail[axis] = slice(-1, None)
    value = exps / np.cumsum(exps, axis=axis)[tuple(tail)]
    if ctx.requires_grad:
        ctx.saved = value
    return value


register_op("attention_softmax", _attention_softmax_fw, _softmax_vjp,
            sample=lambda rng: ([_sn(rng, 4, 6)], {"axis": -1}))


def _log_softmax_fw(ctx, a, axis=-1):
    shifted = a - a.max(axis=axis, keepdims=True)
    value = shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    if ctx.requires_grad:
        ctx.saved = value
    return value


def _log_softmax_vjp(ctx, grad, needs):
    axis = ctx.kwargs.get("axis", -1)
    probs = np.exp(ctx.saved)
    return (grad - probs * grad.sum(axis=axis, keepdims=True),)


register_op("log_softmax", _log_softmax_fw, _log_softmax_vjp,
            sample=lambda rng: ([_sn(rng, 4, 6)], {"axis": -1}))


def _logsumexp_fw(ctx, a, axis=-1):
    """Always keeps the reduced dimension; the Tensor wrapper squeezes it."""
    shift = a.max(axis=axis, keepdims=True)
    value = np.log(np.exp(a - shift).sum(axis=axis, keepdims=True)) + shift
    if ctx.requires_grad:
        ctx.saved = np.exp(a - value)
    return value


def _logsumexp_vjp(ctx, grad, needs):
    return (grad * ctx.saved,)


register_op("logsumexp", _logsumexp_fw, _logsumexp_vjp,
            sample=lambda rng: ([_sn(rng, 4, 6)], {"axis": -1}))


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------

def _reshape_fw(ctx, a, shape):
    return a.reshape(shape)


def _reshape_vjp(ctx, grad, needs):
    return (grad.reshape(ctx.inputs[0].shape),)


register_op("reshape", _reshape_fw, _reshape_vjp,
            sample=lambda rng: ([_sn(rng, 3, 4)], {"shape": (2, 6)}))


def _transpose_fw(ctx, a, axes):
    return a.transpose(axes)


def _transpose_vjp(ctx, grad, needs):
    inverse = np.argsort(ctx.kwargs["axes"])
    return (grad.transpose(inverse),)


register_op("transpose", _transpose_fw, _transpose_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3, 4)], {"axes": (2, 0, 1)}))


def _expand_dims_fw(ctx, a, axis):
    return np.expand_dims(a, axis)


def _expand_dims_vjp(ctx, grad, needs):
    return (np.squeeze(grad, axis=ctx.kwargs["axis"]),)


register_op("expand_dims", _expand_dims_fw, _expand_dims_vjp,
            sample=lambda rng: ([_sn(rng, 3, 4)], {"axis": 1}))


def _squeeze_fw(ctx, a, axis):
    return np.squeeze(a, axis=axis)


def _squeeze_vjp(ctx, grad, needs):
    return (np.expand_dims(grad, axis=ctx.kwargs["axis"]),)


register_op("squeeze", _squeeze_fw, _squeeze_vjp,
            sample=lambda rng: ([_sn(rng, 3, 1, 4)], {"axis": 1}))


def _getitem_fw(ctx, a, index):
    return a[index]


def _getitem_vjp(ctx, grad, needs):
    (a,) = ctx.inputs
    full = np.zeros_like(a)
    np.add.at(full, ctx.kwargs["index"], grad)
    return (full,)


register_op("getitem", _getitem_fw, _getitem_vjp,
            sample=lambda rng: ([_sn(rng, 4, 5)], {"index": np.array([0, 2, 2])}))


def _pad_fw(ctx, a, pad_width, constant_value=0.0):
    return np.pad(a, pad_width, mode="constant", constant_values=constant_value)


def _pad_vjp(ctx, grad, needs):
    (a,) = ctx.inputs
    slices = tuple(slice(before, before + size)
                   for (before, _after), size in zip(ctx.kwargs["pad_width"], a.shape))
    return (grad[slices],)


register_op("pad", _pad_fw, _pad_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3)],
                                {"pad_width": ((1, 0), (0, 2)), "constant_value": 1.0}))


def _cat_fw(ctx, *arrays, axis=0):
    return np.concatenate(arrays, axis=axis)


def _cat_vjp(ctx, grad, needs):
    axis = ctx.kwargs.get("axis", 0)
    sizes = [a.shape[axis] for a in ctx.inputs]
    offsets = np.cumsum([0] + sizes)
    grads = []
    for array, start, end in zip(ctx.inputs, offsets[:-1], offsets[1:]):
        slicer = [slice(None)] * grad.ndim
        slicer[axis] = slice(int(start), int(end))
        grads.append(grad[tuple(slicer)])
    return tuple(grads)


register_op("cat", _cat_fw, _cat_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3), _sn(rng, 2, 2)], {"axis": 1}))


# ---------------------------------------------------------------------------
# Convolution kernels: im2col / col2im and the ops built on them
# ---------------------------------------------------------------------------

def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def _pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")


def im2col(x: np.ndarray, kernel_size: int, stride: int, padding: int,
           out: np.ndarray | None = None) -> np.ndarray:
    """Extract sliding patches from ``x`` of shape ``(N, C, H, W)``.

    Returns an array of shape ``(N, out_h, out_w, C * kernel_size**2)`` where
    each row is a flattened receptive field.  When ``out`` is given (the
    fused-conv column cache) the patches are copied into it instead of a
    freshly allocated buffer.
    """
    padded = _pad_input(x, padding)
    windows = sliding_window_view(padded, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # (N, C, out_h, out_w, KH, KW) -> (N, out_h, out_w, C, KH, KW)
    windows = windows.transpose(0, 2, 3, 1, 4, 5)
    n, out_h, out_w = windows.shape[:3]
    flat_shape = (n, out_h, out_w, windows.shape[3] * kernel_size * kernel_size)
    if out is not None and out.shape == flat_shape and out.dtype == windows.dtype:
        np.copyto(out.reshape(windows.shape), windows)
        return out
    return np.ascontiguousarray(windows.reshape(flat_shape))


def col2im(cols: np.ndarray, input_shape: tuple, kernel_size: int, stride: int,
           padding: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch values back to image layout."""
    n, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)
    cols = cols.reshape(n, out_h, out_w, channels, kernel_size, kernel_size)
    padded = np.zeros((n, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype)
    for i in range(kernel_size):
        row_end = i + stride * out_h
        for j in range(kernel_size):
            col_end = j + stride * out_w
            padded[:, :, i:row_end:stride, j:col_end:stride] += \
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    if padding == 0:
        return padded
    return padded[:, :, padding:padding + height, padding:padding + width]


class ColumnBufferCache:
    """Reusable im2col output buffers, keyed by ``(shape, dtype)``.

    im2col materializes ``C·K²`` copies of every pixel, so for inference-heavy
    workloads the allocation itself is measurable.  The cache hands the same
    buffer back for repeated same-geometry convolutions.  It is only consulted
    for graphs that do NOT require gradients: a training-mode forward must own
    its columns because the backward pass reads them after an arbitrary number
    of other convolutions have run.

    Retention is bounded two ways — at most ``max_entries`` buffers and at
    most ``max_bytes`` in total, with least-recently-used eviction — so stale
    geometries from an early evaluation cannot pin large buffers for the rest
    of the process.  A single buffer larger than ``max_bytes`` is handed out
    but never retained.  ``clear()`` releases everything immediately.
    """

    def __init__(self, max_entries: int = 8, max_bytes: int = 256 * 1024 * 1024):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._buffers: "dict[tuple, np.ndarray]" = {}
        self.hits = 0
        self.misses = 0

    def get(self, shape: tuple, dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype).str)
        buffer = self._buffers.pop(key, None)
        if buffer is None:
            self.misses += 1
            buffer = np.empty(shape, dtype=dtype)
        else:
            self.hits += 1
        self._buffers[key] = buffer          # most-recently-used at the end
        self._evict()
        return buffer

    def _evict(self) -> None:
        while self._buffers and (len(self._buffers) > self.max_entries
                                 or self.total_bytes > self.max_bytes):
            self._buffers.pop(next(iter(self._buffers)))

    @property
    def total_bytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


column_cache = ColumnBufferCache()


def _conv_columns(ctx, x: np.ndarray, kernel_size: int, stride: int, padding: int) -> np.ndarray:
    """im2col through the shared column cache when no gradient is needed."""
    if ctx.requires_grad:
        return im2col(x, kernel_size, stride, padding)
    n, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)
    buffer = column_cache.get((n, out_h, out_w, channels * kernel_size * kernel_size), x.dtype)
    return im2col(x, kernel_size, stride, padding, out=buffer)


def _unfold_fw(ctx, x, kernel_size, stride=1, padding=0):
    return im2col(x, kernel_size, stride, padding)


def _unfold_vjp(ctx, grad, needs):
    (x,) = ctx.inputs
    kwargs = ctx.kwargs
    return (col2im(grad, x.shape, kwargs["kernel_size"], kwargs.get("stride", 1),
                   kwargs.get("padding", 0)),)


register_op("unfold", _unfold_fw, _unfold_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3, 5, 5)],
                                {"kernel_size": 3, "stride": 2, "padding": 1}))


def _conv2d_fw(ctx, x, weight, bias=None, stride=1, padding=0):
    n, c_in, height, width = x.shape
    c_out, c_in_w, k_h, k_w = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}")
    if k_h != k_w:
        raise ValueError("conv2d only supports square kernels")
    cols = _conv_columns(ctx, x, k_h, stride, padding)       # (N, OH, OW, C*K*K)
    flat_weight = weight.reshape(c_out, -1)                  # (C_out, C*K*K)
    out = cols @ flat_weight.T                               # (N, OH, OW, C_out)
    if bias is not None:
        out = out + bias
    if ctx.requires_grad:
        ctx.saved = (cols, flat_weight)
    return np.ascontiguousarray(out.transpose(0, 3, 1, 2))


def _conv2d_vjp(ctx, grad, needs):
    x, weight = ctx.inputs[0], ctx.inputs[1]
    has_bias = len(ctx.inputs) == 3
    stride = ctx.kwargs.get("stride", 1)
    padding = ctx.kwargs.get("padding", 0)
    kernel_size = weight.shape[-1]
    cols, flat_weight = ctx.saved
    grad_view = grad.transpose(0, 2, 3, 1)                   # (N, OH, OW, C_out)
    grad_x = grad_w = grad_b = None
    if needs[0]:
        grad_cols = grad_view @ flat_weight                  # (N, OH, OW, C*K*K)
        grad_x = col2im(grad_cols, x.shape, kernel_size, stride, padding)
    if needs[1]:
        grad_w = np.einsum("nhwo,nhwi->oi", grad_view, cols).reshape(weight.shape)
    if has_bias and needs[2]:
        grad_b = grad_view.sum(axis=(0, 1, 2))
    return (grad_x, grad_w, grad_b) if has_bias else (grad_x, grad_w)


register_op("conv2d", _conv2d_fw, _conv2d_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3, 5, 5), _sn(rng, 4, 3, 3, 3), _sn(rng, 4)],
                                {"stride": 2, "padding": 1}))


def _max_pool2d_fw(ctx, x, kernel_size, stride=None):
    stride = stride or kernel_size
    n, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel_size, stride, 0)
    out_w = conv_output_size(width, kernel_size, stride, 0)
    windows = sliding_window_view(x, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    flat = windows.reshape(n, channels, out_h, out_w, -1)
    argmax = flat.argmax(axis=-1)
    if ctx.requires_grad:
        ctx.saved = (argmax, stride, out_h, out_w)
    return np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]


def _max_pool2d_vjp(ctx, grad, needs):
    (x,) = ctx.inputs
    kernel_size = ctx.kwargs["kernel_size"]
    argmax, stride, out_h, out_w = ctx.saved
    n, channels = x.shape[:2]
    grad_input = np.zeros_like(x)
    offsets_i, offsets_j = np.unravel_index(argmax, (kernel_size, kernel_size))
    base_i = (np.arange(out_h) * stride)[None, None, :, None]
    base_j = (np.arange(out_w) * stride)[None, None, None, :]
    rows = base_i + offsets_i
    cols_idx = base_j + offsets_j
    n_idx = np.arange(n)[:, None, None, None]
    c_idx = np.arange(channels)[None, :, None, None]
    np.add.at(grad_input, (n_idx, c_idx, rows, cols_idx), grad)
    return (grad_input,)


register_op("max_pool2d", _max_pool2d_fw, _max_pool2d_vjp,
            sample=lambda rng: ([_distinct(rng, 2, 2, 6, 6)],
                                {"kernel_size": 2, "stride": 2}))


def _avg_pool2d_fw(ctx, x, kernel_size, stride=None):
    stride = stride or kernel_size
    windows = sliding_window_view(x, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    return windows.mean(axis=(-2, -1))


def _avg_pool2d_vjp(ctx, grad, needs):
    (x,) = ctx.inputs
    kernel_size = ctx.kwargs["kernel_size"]
    stride = ctx.kwargs.get("stride") or kernel_size
    out_h, out_w = grad.shape[2], grad.shape[3]
    scale = 1.0 / (kernel_size * kernel_size)
    grad_input = np.zeros_like(x)
    scaled = grad * scale
    for i in range(kernel_size):
        for j in range(kernel_size):
            grad_input[:, :, i:i + stride * out_h:stride,
                       j:j + stride * out_w:stride] += scaled
    return (grad_input,)


register_op("avg_pool2d", _avg_pool2d_fw, _avg_pool2d_vjp,
            sample=lambda rng: ([_sn(rng, 2, 2, 6, 6)], {"kernel_size": 2, "stride": 2}))


# ---------------------------------------------------------------------------
# Fused dense kernels
# ---------------------------------------------------------------------------

def _linear_fw(ctx, x, weight, bias=None):
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def _linear_vjp(ctx, grad, needs):
    x, weight = ctx.inputs[0], ctx.inputs[1]
    has_bias = len(ctx.inputs) == 3
    grad_x = grad_w = grad_b = None
    grad2, x2 = _flatten_leading(grad, x)
    if needs[0]:
        grad_x = grad @ weight
    if needs[1]:
        grad_w = grad2.T @ x2
    if has_bias and needs[2]:
        grad_b = grad2.sum(axis=0)
    return (grad_x, grad_w, grad_b) if has_bias else (grad_x, grad_w)


register_op("linear", _linear_fw, _linear_vjp,
            sample=lambda rng: ([_sn(rng, 2, 3, 4), _sn(rng, 5, 4), _sn(rng, 5)], {}))


def _quadratic_form_fw(ctx, x, matrices):
    """Batched general quadratic form: ``y_o = xᵀ M_o x`` for stacked ``M``.

    ``x`` has shape ``(..., n)`` and ``matrices`` ``(m, n, n)``; the output
    has shape ``(..., m)``.  This replaces the per-output Python loop of the
    general quadratic baseline with two batched contractions.
    """
    lead = x.shape[:-1]
    n = x.shape[-1]
    x2 = x.reshape(-1, n)
    # proj[b, o, j] = sum_i x2[b, i] * M[o, i, j]
    proj = np.tensordot(x2, matrices, axes=([1], [1]))
    value = (proj * x2[:, None, :]).sum(axis=-1)
    if ctx.requires_grad:
        ctx.saved = proj
    return value.reshape(lead + (matrices.shape[0],))


def _quadratic_form_vjp(ctx, grad, needs):
    x, matrices = ctx.inputs
    n = x.shape[-1]
    x2 = x.reshape(-1, n)
    grad2 = grad.reshape(-1, matrices.shape[0])
    grad_x = grad_m = None
    if needs[0]:
        proj = ctx.saved                                       # sum_i x_i M_oij
        proj_t = np.tensordot(x2, matrices, axes=([1], [2]))   # sum_j M_oij x_j
        grad_x = np.einsum("bo,boj->bj", grad2, proj + proj_t).reshape(x.shape)
    if needs[1]:
        grad_m = np.einsum("bo,bi,bj->oij", grad2, x2, x2)
    return (grad_x, grad_m)


register_op("quadratic_form", _quadratic_form_fw, _quadratic_form_vjp,
            sample=lambda rng: ([_sn(rng, 2, 4), _sn(rng, 3, 4, 4, scale=0.3)], {}))


def _quadratic_response_fw(ctx, x, weight, q_weight, lambdas, bias=None, *,
                           rank, vectorized=True):
    """Fused proposed-neuron response ``{y, fᵏ}`` (Sec. III of the paper).

    ``x``: (..., n); ``weight``: (m, n); ``q_weight``: (n, m·k);
    ``lambdas``: (m, k); optional ``bias``: (m,).  Output is
    ``concat([y, f], -1)`` of width ``m·(k+1)`` when ``vectorized`` else just
    ``y`` of width ``m`` — exactly the unfused composition
    ``EfficientQuadraticLinear`` used to build node by node.
    """
    m = weight.shape[0]
    f = x @ q_weight                                     # (..., m*k)
    g = f.reshape(x.shape[:-1] + (m, rank))
    quad = (g * g * lambdas).sum(axis=-1)                # (..., m)
    lin = x @ weight.T
    if bias is not None:
        lin = lin + bias
    y = lin + quad
    if ctx.requires_grad:
        ctx.saved = g
    if not vectorized:
        return y
    return np.concatenate([y, f], axis=-1)


def _quadratic_response_vjp(ctx, grad, needs):
    x, weight, q_weight, lambdas = ctx.inputs[:4]
    has_bias = len(ctx.inputs) == 5
    rank = ctx.kwargs["rank"]
    vectorized = ctx.kwargs.get("vectorized", True)
    g = ctx.saved
    m = weight.shape[0]

    grad_y = grad[..., :m]
    # Gradient flowing into the projections f: the quadratic term contributes
    # 2 Λ f · dy, and in vectorized mode f is also a direct output.
    grad_f = (2.0 * (g * lambdas) * grad_y[..., None]).reshape(x.shape[:-1] + (m * rank,))
    if vectorized:
        grad_f = grad_f + grad[..., m:]

    grad_x = grad_w = grad_q = grad_l = grad_b = None
    if needs[0]:
        grad_x = grad_y @ weight + grad_f @ q_weight.T
    x2, grad_y2, grad_f2 = _flatten_leading(x, grad_y, grad_f)
    if needs[1]:
        grad_w = grad_y2.T @ x2
    if needs[2]:
        grad_q = x2.T @ grad_f2
    if needs[3]:
        grad_l = (g * g * grad_y[..., None]).reshape(-1, m, rank).sum(axis=0)
    if has_bias and needs[4]:
        grad_b = grad_y2.sum(axis=0)
    result = (grad_x, grad_w, grad_q, grad_l)
    return result + (grad_b,) if has_bias else result


def _quadratic_response_sample(rng):
    n, m, k = 5, 3, 2
    return ([_sn(rng, 2, n), _sn(rng, m, n), _sn(rng, n, m * k),
             _sn(rng, m, k, scale=0.5), _sn(rng, m)],
            {"rank": k, "vectorized": True})


register_op("quadratic_response", _quadratic_response_fw, _quadratic_response_vjp,
            sample=_quadratic_response_sample)


# ---------------------------------------------------------------------------
# Fused convolutional quadratic kernel
# ---------------------------------------------------------------------------

def _quadratic_conv2d_fw(ctx, x, weight, q_weight, lambdas, bias=None, *,
                         stride=1, padding=0, rank, vectorized=True):
    """Fused quadratic convolution (Fig. 3 of the paper).

    One im2col extraction and ONE matmul against the stacked filter bank
    ``[w; Qᵏ]`` produce both the linear responses and the projections fᵏ —
    the unfused path runs two full convolutions over the same input (two
    im2col in the forward, two col2im in the backward).

    ``x``: (N, C, H, W); ``weight``: (m, C, K, K); ``q_weight``:
    (m·k, C, K, K); ``lambdas``: (m, k); optional ``bias``: (m,).
    Output: (N, m·(k+1), H', W') channel-first when ``vectorized``
    (responses first, projections after), else (N, m, H', W').
    """
    m = weight.shape[0]
    kernel_size = weight.shape[-1]
    cols = _conv_columns(ctx, x, kernel_size, stride, padding)   # (N, OH, OW, C*K*K)
    flat_w = weight.reshape(m, -1)
    flat_q = q_weight.reshape(m * rank, -1)
    stacked = np.concatenate([flat_w, flat_q], axis=0)           # (m + m*k, n)
    response = cols @ stacked.T                                  # (N, OH, OW, m + m*k)
    lin = response[..., :m]
    f = response[..., m:]
    if bias is not None:
        lin = lin + bias
    g = np.ascontiguousarray(f).reshape(f.shape[:3] + (m, rank))
    quad = (g * g * lambdas).sum(axis=-1)
    y = lin + quad
    if ctx.requires_grad:
        ctx.saved = (cols, g, stacked)
    if vectorized:
        out = np.concatenate([y, f], axis=-1)
    else:
        out = y
    return np.ascontiguousarray(out.transpose(0, 3, 1, 2))


def _quadratic_conv2d_vjp(ctx, grad, needs):
    x, weight, q_weight, lambdas = ctx.inputs[:4]
    has_bias = len(ctx.inputs) == 5
    stride = ctx.kwargs.get("stride", 1)
    padding = ctx.kwargs.get("padding", 0)
    rank = ctx.kwargs["rank"]
    vectorized = ctx.kwargs.get("vectorized", True)
    cols, g, stacked = ctx.saved
    m = weight.shape[0]
    kernel_size = weight.shape[-1]

    grad_y = grad[:, :m].transpose(0, 2, 3, 1)                   # (N, OH, OW, m)
    grad_f = (2.0 * (g * lambdas) * grad_y[..., None]).reshape(g.shape[:3] + (m * rank,))
    if vectorized:
        grad_f = grad_f + grad[:, m:].transpose(0, 2, 3, 1)

    grad_x = grad_w = grad_q = grad_l = grad_b = None
    grad_stacked = np.concatenate([grad_y, grad_f], axis=-1)     # (N, OH, OW, m + m*k)
    if needs[0]:
        grad_cols = grad_stacked @ stacked                       # (N, OH, OW, C*K*K)
        grad_x = col2im(grad_cols, x.shape, kernel_size, stride, padding)
    if needs[1] or needs[2]:
        grad_bank = np.einsum("nhwo,nhwi->oi", grad_stacked, cols)
        if needs[1]:
            grad_w = grad_bank[:m].reshape(weight.shape)
        if needs[2]:
            grad_q = grad_bank[m:].reshape(q_weight.shape)
    if needs[3]:
        grad_l = (g * g * grad_y[..., None]).reshape(-1, m, rank).sum(axis=0)
    if has_bias and needs[4]:
        grad_b = grad_y.sum(axis=(0, 1, 2))
    result = (grad_x, grad_w, grad_q, grad_l)
    return result + (grad_b,) if has_bias else result


def _quadratic_conv2d_sample(rng):
    m, k = 2, 2
    return ([_sn(rng, 2, 2, 4, 4), _sn(rng, m, 2, 3, 3), _sn(rng, m * k, 2, 3, 3),
             _sn(rng, m, k, scale=0.5), _sn(rng, m)],
            {"stride": 1, "padding": 1, "rank": k, "vectorized": True})


register_op("quadratic_conv2d", _quadratic_conv2d_fw, _quadratic_conv2d_vjp,
            sample=_quadratic_conv2d_sample)
