"""Differentiable functions composed from :class:`~repro.tensor.Tensor` primitives.

These helpers cover numerically-stable softmax family operations, activations
that are not simple methods of :class:`Tensor`, dropout, and utility encodings
used by the loss functions and models.

The softmax family and ``gelu`` dispatch to fused registry ops with
hand-derived VJPs (one graph node each); the remaining helpers are genuine
compositions of primitives.
"""

from __future__ import annotations

import numpy as np

from .engine import apply_op
from .tensor import Tensor

__all__ = [
    "softmax",
    "attention_softmax",
    "log_softmax",
    "logsumexp",
    "gelu",
    "silu",
    "leaky_relu",
    "dropout",
    "one_hot",
    "cross_entropy_with_logits",
    "mse_loss",
]


def logsumexp(logits: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    stable = apply_op("logsumexp", logits, axis=axis)
    if keepdims:
        return stable
    return stable.squeeze(axis if axis >= 0 else logits.ndim + axis)


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with max-subtraction for numerical stability."""
    return apply_op("softmax", logits, axis=axis)


def attention_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Softmax with a strictly left-to-right (sequential) denominator sum.

    Bitwise invariant under appended fully-masked columns and independent
    across rows, unlike :func:`softmax` whose pairwise-sum denominator
    regroups as the reduced length changes.  Attention weights must have
    both properties for KV-cached incremental decoding to reproduce the
    full-prefix recompute byte for byte.
    """
    return apply_op("attention_softmax", logits, axis=axis)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    return apply_op("log_softmax", logits, axis=axis)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit using the exact erf formulation.

    The forward pass is ``x * Phi(x)`` where ``Phi`` is the standard normal
    CDF; the registered VJP applies the exact derivative
    ``Phi(x) + x * phi(x)``.
    """
    return apply_op("gelu", x)


def silu(x: Tensor) -> Tensor:
    """Sigmoid linear unit (swish)."""
    return x * x.sigmoid()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit."""
    positive = x.relu()
    negative = (-((-x).relu())) * negative_slope
    return positive + negative


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: at train time zero each element with probability ``p``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask)


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    """Return a one-hot encoding of an integer label array."""
    labels = np.asarray(labels, dtype=np.int64)
    encoded = np.zeros(labels.shape + (num_classes,), dtype=dtype)
    np.put_along_axis(encoded, labels[..., None], 1.0, axis=-1)
    return encoded


def cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                              label_smoothing: float = 0.0,
                              ignore_index: int | None = None,
                              reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` and integer ``targets``.

    ``logits`` has shape ``(..., num_classes)`` and ``targets`` the matching
    leading shape.  ``label_smoothing`` follows the standard formulation used
    for Transformer training.  Positions equal to ``ignore_index`` contribute
    nothing to the loss (used to mask padding in sequence models).

    ``reduction="mean"`` (the default) divides the summed loss by the number
    of unmasked positions; ``"sum"`` returns the raw sum, which is what
    data-parallel gradient workers need — per-shard loss *sums* add exactly,
    so the parent can apply the mean's normalization once over the global
    batch instead of once per shard.
    """
    if reduction not in ("mean", "sum"):
        raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
    num_classes = logits.shape[-1]
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)

    target_dist = one_hot(targets, num_classes, dtype=logits.dtype)
    if label_smoothing > 0.0:
        target_dist = target_dist * (1.0 - label_smoothing) + label_smoothing / num_classes

    mask = np.ones(targets.shape, dtype=logits.dtype)
    if ignore_index is not None:
        mask = (targets != ignore_index).astype(logits.dtype)
        target_dist = target_dist * mask[..., None]

    per_position = -(log_probs * Tensor(target_dist)).sum(axis=-1)
    total = per_position.sum()
    if reduction == "sum":
        return total
    denominator = float(mask.sum()) if mask.sum() > 0 else 1.0
    return total * (1.0 / denominator)


def cross_entropy_weight(targets: np.ndarray, ignore_index: int | None = None) -> float:
    """The normalization a mean cross-entropy would divide by: unmasked positions."""
    targets = np.asarray(targets)
    if ignore_index is None:
        return float(targets.size)
    return float((targets != ignore_index).sum())


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray,
             reduction: str = "mean") -> Tensor:
    """Mean (or summed, with ``reduction="sum"``) squared error."""
    if reduction not in ("mean", "sum"):
        raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    squared = diff * diff
    return squared.sum() if reduction == "sum" else squared.mean()
