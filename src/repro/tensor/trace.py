"""Record a no-grad forward pass as a flat sequence of op-graph steps.

This is the *front half* of the trace-and-replay inference compiler (the
back half — fusion, arena allocation, replay — lives in
:mod:`repro.tensor.plan`).  The design follows the staging approach of Myia
and drjit's ``JitFlag.LoopRecord``: because every primitive in this codebase
is a declarative :class:`~repro.tensor.ops.OpDef` dispatched through one
funnel (:func:`repro.tensor.engine.apply_op`), a tracer installed on that
funnel sees a *closed* op set and the recorded program is complete by
construction — there is no other way for array math to happen.

Tracing model
-------------
:func:`record_trace` wraps each example input array in a fresh
:class:`~repro.tensor.Tensor`, installs an :class:`OpTracer` on the current
thread's engine state, and runs the callable once under ``no_grad``.  Every
``apply_op`` dispatch appends one :class:`TraceStep`:

* **slots** — each input and each op output gets an integer slot; step
  operands that refer to previously-seen tensors are recorded as slot
  references (``ref >= 0``).
* **constants** — operands *not* produced by a traced op (parameters,
  buffers, Python scalars wrapped on the fly) are captured **by reference**
  to their backing array (``ref < 0`` indexes the constant table).  No
  constant folding happens, so in-place parameter updates between replays
  stay visible.
* **kwargs** — non-array configuration is shallow-copied into the step.

What a trace cannot see — Python control flow, NumPy math done outside
``apply_op``, array-valued kwargs derived from the inputs (e.g. embedding
lookups that route token ids through a ``getitem`` index) — is *baked in* at
trace time.  The compiler guards against all of these with a validation
replay on fresh inputs (see :func:`repro.tensor.plan.compile_forward`);
models that fail validation simply keep using normal dispatch.

Tensor identity is tracked via ``id()``; the tracer keeps every tensor it has
seen alive in a keepalive list so CPython cannot recycle an id mid-trace.
"""

from __future__ import annotations

import numpy as np

from . import engine
from .engine import no_grad
from .ops import get_op

__all__ = ["TraceError", "TraceStep", "Trace", "OpTracer", "record_trace"]


class TraceError(RuntimeError):
    """The forward pass could not be captured as a replayable trace."""


class TraceStep:
    """One recorded ``apply_op`` dispatch.

    ``refs`` holds one reference per op input: ``ref >= 0`` names a value
    slot (a trace input or an earlier step's output), ``ref < 0`` names entry
    ``-ref - 1`` of the trace's constant table.
    """

    __slots__ = ("name", "refs", "kwargs", "out_slot", "out_shape", "out_dtype")

    def __init__(self, name: str, refs: tuple, kwargs: dict, out_slot: int,
                 out_shape: tuple, out_dtype):
        self.name = name
        self.refs = refs
        self.kwargs = kwargs
        self.out_slot = out_slot
        self.out_shape = out_shape
        self.out_dtype = out_dtype

    def __repr__(self) -> str:
        return (f"TraceStep({self.name!r}, refs={self.refs}, "
                f"out_slot={self.out_slot}, shape={self.out_shape})")


class Trace:
    """A completed recording: steps, constant table, and the output slot."""

    __slots__ = ("n_inputs", "input_shapes", "input_dtypes", "steps",
                 "constants", "output_slot", "example_output")

    def __init__(self, n_inputs: int, input_shapes: tuple, input_dtypes: tuple,
                 steps: list, constants: list, output_slot: int,
                 example_output: np.ndarray | None = None):
        self.n_inputs = n_inputs
        self.input_shapes = input_shapes
        self.input_dtypes = input_dtypes
        self.steps = steps
        self.constants = constants
        self.output_slot = output_slot
        # Forward result for the example inputs the trace was recorded on —
        # lets a caller serving a live request reuse the trace run's answer.
        self.example_output = example_output

    @property
    def n_slots(self) -> int:
        return self.n_inputs + len(self.steps)

    def __repr__(self) -> str:
        return (f"Trace(inputs={self.n_inputs}, steps={len(self.steps)}, "
                f"constants={len(self.constants)})")


class OpTracer:
    """Observes ``apply_op`` dispatches and accumulates :class:`TraceStep`\\ s.

    Installed on ``engine._state.tracer`` (thread-local) by
    :func:`record_trace`; :func:`~repro.tensor.engine.apply_op` calls
    :meth:`record` after each forward.
    """

    def __init__(self):
        self.steps: list[TraceStep] = []
        self.constants: list[np.ndarray] = []
        self.n_inputs = 0
        self._slot_of: dict[int, int] = {}    # id(tensor) -> slot
        self._const_of: dict[int, int] = {}   # id(array)  -> constant index
        self._keepalive: list = []            # pins ids for the trace lifetime

    def add_input(self, array: np.ndarray):
        """Register a plan input; returns the Tensor to feed the forward."""
        tensor_cls = engine._TENSOR_CLS
        tensor = tensor_cls(array)
        if tensor.data is not array:
            raise TraceError(
                f"trace inputs must be float ndarrays used as-is; got dtype "
                f"{array.dtype} which Tensor() would copy/cast")
        slot = self.n_inputs
        self.n_inputs += 1
        self._slot_of[id(tensor)] = slot
        self._keepalive.append(tensor)
        return tensor

    def _ref(self, tensor) -> int:
        slot = self._slot_of.get(id(tensor))
        if slot is not None:
            return slot
        # Not produced under the trace: a constant (parameter, buffer, or an
        # on-the-fly wrapped scalar).  Captured by array reference.
        array = tensor.data
        index = self._const_of.get(id(array))
        if index is None:
            index = len(self.constants)
            self.constants.append(array)
            self._const_of[id(array)] = index
        self._keepalive.append(tensor)
        return -index - 1

    def record(self, name: str, tensors: tuple, kwargs: dict, out) -> None:
        """Called by ``apply_op`` for every dispatch while tracing."""
        refs = tuple(self._ref(t) for t in tensors)
        slot = self.n_inputs + len(self.steps)
        self._slot_of[id(out)] = slot
        self._keepalive.append(out)
        self.steps.append(TraceStep(name, refs, dict(kwargs), slot,
                                    out.data.shape, out.data.dtype))

    def finish(self, output) -> Trace:
        """Seal the recording; ``output`` is the Tensor the forward returned."""
        tensor_cls = engine._TENSOR_CLS
        if not isinstance(output, tensor_cls):
            raise TraceError(
                f"traced callable must return a Tensor, got {type(output).__name__}")
        output_slot = self._slot_of.get(id(output))
        if output_slot is None:
            raise TraceError(
                "traced callable returned a tensor that no recorded op produced "
                "(the output was computed outside apply_op)")
        shapes = tuple(t.data.shape for t in self._keepalive[:self.n_inputs])
        dtypes = tuple(t.data.dtype for t in self._keepalive[:self.n_inputs])
        for step in self.steps:
            get_op(step.name)  # every recorded op must still be registered
        return Trace(self.n_inputs, shapes, dtypes, self.steps,
                     self.constants, output_slot, output.data)


def record_trace(function, *arrays) -> Trace:
    """Run ``function(*tensors)`` once under ``no_grad`` and record it.

    ``arrays`` are the example inputs (NumPy arrays); the callable receives
    one constant Tensor per array and must return a single Tensor.  Raises
    :class:`TraceError` when the forward cannot be captured (non-Tensor
    output, output not produced by a registered op, or a nested trace).
    """
    state = engine._state
    if state.tracer is not None:
        raise TraceError("a trace is already being recorded on this thread")
    tracer = OpTracer()
    inputs = [tracer.add_input(np.asarray(a)) for a in arrays]
    state.tracer = tracer
    try:
        with no_grad():
            output = function(*inputs)
    finally:
        state.tracer = None
    return tracer.finish(output)
