"""Compile a recorded trace into a flat, replayable execution plan.

The compiler turns a :class:`~repro.tensor.trace.Trace` into an
:class:`ExecutionPlan`: a list of step objects that call the registered ops'
raw ``forward`` callables over plain NumPy arrays.  Replay allocates **zero
Tensors, zero OpContexts, and zero autograd graph nodes** — the per-op Python
dispatch cost that dominates small-batch inference is paid once, at trace
time.

Two optimizations are applied while lowering:

**Elementwise fusion.**  Chains of registry-declared elementwise ops
(``OpDef.elementwise`` with a ``forward_out`` executor) are collapsed into a
single :class:`_ComposedStep` when every intermediate is consumed exactly
once, by the next link of the chain.  Non-chain steps sitting between two
links (e.g. a parameter ``reshape`` between BatchNorm's ``mul`` and ``add``)
are hoisted ahead of the chain — safe because, by the single-consumer rule,
nothing between two links can read a chain intermediate.  The whole chain
writes through one arena buffer; intermediates never materialize.

**Arena allocation.**  Every elementwise step's output buffer is preallocated
once per plan (``np.empty`` with the traced shape/dtype) and reused across
replays, so steady-state replay does not allocate for those steps at all.

Arena ownership rules
---------------------
* Arena buffers are owned by the plan and **overwritten on every replay**.
* The step producing the plan *output* never writes into the arena, and if
  the output would be a *view* of an arena buffer (a ``reshape`` of a fused
  result, say) the plan copies it on the way out — callers always receive an
  array that later replays cannot clobber.
* Constants are referenced, not copied: updating a parameter in place is
  visible to subsequent replays (there is no constant folding).

Because a trace bakes in everything ``apply_op`` did not see (Python control
flow, array-valued kwargs, NumPy math done outside the registry),
:func:`compile_forward` *validates* each candidate plan: it replays on fresh
random inputs and requires byte-identical agreement with a normally
dispatched forward.  Models that fail — e.g. the transformer, whose token ids
travel through a ``getitem`` index kwarg and hand-built mask constants —
return ``None`` and keep using dispatch.  Validation is the safety net that
makes the tracer's "record everything, fold nothing" simplicity sound.
"""

from __future__ import annotations

import numpy as np

from . import engine
from .engine import no_grad
from .ops import OPS, OpContext
from .trace import Trace, TraceError, record_trace

__all__ = [
    "ExecutionPlan",
    "PlanCache",
    "compile_plan",
    "compile_forward",
    "plan_key",
]

# Ops whose outputs may share memory with their first input.  Needed to spot
# plan outputs that would alias an arena buffer (and must be copied out).
_VIEW_OPS = frozenset({"reshape", "transpose", "expand_dims", "squeeze", "getitem"})

# One immutable inference context serves every replayed forward: registered
# forwards only consult ``ctx.requires_grad`` (False here) and write
# ``ctx.saved`` only when it is set, so sharing is safe — and it keeps
# OpContext construction off the replay path entirely.
_INFERENCE_CTX = OpContext((), {}, False)

#: Marker for "the previous link's result" inside a fused chain.
_PREV = object()


class _OpStep:
    """A non-fused step: calls the op's ``forward`` (fresh output array)."""

    __slots__ = ("name", "forward", "refs", "kwargs", "out_slot")

    def __init__(self, name, forward, refs, kwargs, out_slot):
        self.name = name
        self.forward = forward
        self.refs = refs
        self.kwargs = kwargs
        self.out_slot = out_slot

    def run(self, values, constants):
        args = [values[r] if r >= 0 else constants[-r - 1] for r in self.refs]
        if self.kwargs:
            values[self.out_slot] = self.forward(_INFERENCE_CTX, *args, **self.kwargs)
        else:
            values[self.out_slot] = self.forward(_INFERENCE_CTX, *args)


class _BufferedStep:
    """An elementwise step writing into its preallocated arena buffer."""

    __slots__ = ("name", "forward_out", "refs", "kwargs", "out_slot", "buffer")

    def __init__(self, name, forward_out, refs, kwargs, out_slot, buffer):
        self.name = name
        self.forward_out = forward_out
        self.refs = refs
        self.kwargs = kwargs
        self.out_slot = out_slot
        self.buffer = buffer

    def run(self, values, constants):
        args = [values[r] if r >= 0 else constants[-r - 1] for r in self.refs]
        if self.kwargs:
            self.forward_out(self.buffer, *args, **self.kwargs)
        else:
            self.forward_out(self.buffer, *args)
        values[self.out_slot] = self.buffer


class _ComposedStep:
    """A fused chain of elementwise ops sharing one arena buffer.

    ``parts`` is a list of ``(forward_out, refs, kwargs)``; refs may contain
    :data:`_PREV`, meaning "the chain buffer as written by the previous
    part".  Intermediates never land in the value table — only the final
    result is published, under ``out_slot``.
    """

    __slots__ = ("names", "parts", "out_slot", "buffer")

    def __init__(self, names, parts, out_slot, buffer):
        self.names = names
        self.parts = parts
        self.out_slot = out_slot
        self.buffer = buffer

    @property
    def name(self) -> str:
        return "fused(" + "+".join(self.names) + ")"

    def run(self, values, constants):
        buffer = self.buffer
        for forward_out, refs, kwargs in self.parts:
            args = [buffer if r is _PREV
                    else (values[r] if r >= 0 else constants[-r - 1])
                    for r in refs]
            if kwargs:
                forward_out(buffer, *args, **kwargs)
            else:
                forward_out(buffer, *args)
        values[self.out_slot] = buffer


class ExecutionPlan:
    """A compiled trace: flat steps, constant table, arena buffers."""

    __slots__ = ("n_inputs", "n_slots", "steps", "constants", "output_slot",
                 "copy_output", "input_shapes", "input_dtypes", "traced_ops",
                 "fused_chains", "fused_ops", "arena_buffers", "arena_bytes",
                 "replays")

    def __init__(self, n_inputs, n_slots, steps, constants, output_slot,
                 copy_output, input_shapes, input_dtypes, traced_ops,
                 fused_chains, fused_ops, arena_buffers, arena_bytes):
        self.n_inputs = n_inputs
        self.n_slots = n_slots
        self.steps = steps
        self.constants = constants
        self.output_slot = output_slot
        self.copy_output = copy_output
        self.input_shapes = input_shapes
        self.input_dtypes = input_dtypes
        self.traced_ops = traced_ops
        self.fused_chains = fused_chains
        self.fused_ops = fused_ops
        self.arena_buffers = arena_buffers
        self.arena_bytes = arena_bytes
        self.replays = 0

    def replay(self, *inputs: np.ndarray) -> np.ndarray:
        """Execute the plan on ``inputs`` (raw arrays in, raw array out)."""
        values = [None] * self.n_slots
        values[:self.n_inputs] = inputs
        constants = self.constants
        for step in self.steps:
            step.run(values, constants)
        output = values[self.output_slot]
        if self.copy_output:
            output = np.array(output)
        self.replays += 1
        return output

    __call__ = replay

    def describe(self) -> dict:
        """Summary stats (shown through ``session.describe()``/``/v1/stats``)."""
        return {
            "traced_ops": self.traced_ops,
            "steps": len(self.steps),
            "fused_chains": self.fused_chains,
            "fused_ops": self.fused_ops,
            "arena_buffers": self.arena_buffers,
            "arena_bytes": self.arena_bytes,
            "replays": self.replays,
        }

    def __repr__(self) -> str:
        return (f"ExecutionPlan(steps={len(self.steps)}, "
                f"fused_chains={self.fused_chains}, arena_bytes={self.arena_bytes})")


def compile_plan(trace: Trace) -> ExecutionPlan:
    """Lower a :class:`Trace` into an :class:`ExecutionPlan`.

    Applies elementwise-chain fusion and assigns arena buffers; see the
    module docstring for the exact rules.
    """
    steps = trace.steps
    output_slot = trace.output_slot

    consumers: dict[int, list[int]] = {}
    for index, step in enumerate(steps):
        for ref in step.refs:
            if ref >= 0:
                consumers.setdefault(ref, []).append(index)

    def fusible(step) -> bool:
        opdef = OPS[step.name]
        return (opdef.elementwise and opdef.forward_out is not None
                and step.out_slot != output_slot)

    plan_steps: list = []
    emitted = [False] * len(steps)
    aliases_arena = [False] * trace.n_slots
    fused_chains = 0
    fused_ops = 0
    arena_buffers = 0
    arena_bytes = 0

    def emit_single(index: int) -> None:
        nonlocal arena_buffers, arena_bytes
        step = steps[index]
        opdef = OPS[step.name]
        if fusible(step):
            buffer = np.empty(step.out_shape, step.out_dtype)
            arena_buffers += 1
            arena_bytes += buffer.nbytes
            aliases_arena[step.out_slot] = True
            plan_steps.append(_BufferedStep(step.name, opdef.forward_out,
                                            step.refs, step.kwargs,
                                            step.out_slot, buffer))
        else:
            if step.name in _VIEW_OPS:
                source = step.refs[0]
                aliases_arena[step.out_slot] = source >= 0 and aliases_arena[source]
            plan_steps.append(_OpStep(step.name, opdef.forward, step.refs,
                                      step.kwargs, step.out_slot))
        emitted[index] = True

    for start in range(len(steps)):
        if emitted[start]:
            continue
        if not fusible(steps[start]):
            emit_single(start)
            continue
        # Grow a chain: tail's output must have exactly one consumer, which
        # must itself be fusible with the same shape/dtype.  Steps recorded
        # between two links never read a chain intermediate (the intermediate's
        # only consumer is the next link), so they can be hoisted ahead.
        shape, dtype = steps[start].out_shape, steps[start].out_dtype
        chain = [start]
        hoisted: list[int] = []
        tail = start
        while True:
            tail_consumers = consumers.get(steps[tail].out_slot, [])
            if len(tail_consumers) != 1:
                break
            nxt = tail_consumers[0]
            candidate = steps[nxt]
            if not fusible(candidate):
                break
            if candidate.out_shape != shape or candidate.out_dtype != dtype:
                break
            hoisted.extend(k for k in range(tail + 1, nxt) if not emitted[k])
            chain.append(nxt)
            tail = nxt
        for index in hoisted:
            emit_single(index)
        if len(chain) == 1:
            emit_single(start)
            continue
        buffer = np.empty(shape, dtype)
        arena_buffers += 1
        arena_bytes += buffer.nbytes
        parts = []
        names = []
        previous_slot = None
        for index in chain:
            step = steps[index]
            refs = tuple(_PREV if (ref >= 0 and ref == previous_slot) else ref
                         for ref in step.refs)
            parts.append((OPS[step.name].forward_out, refs, step.kwargs))
            names.append(step.name)
            previous_slot = step.out_slot
            emitted[index] = True
        aliases_arena[steps[tail].out_slot] = True
        plan_steps.append(_ComposedStep(tuple(names), parts,
                                        steps[tail].out_slot, buffer))
        fused_chains += 1
        fused_ops += len(chain)

    copy_output = aliases_arena[output_slot]
    return ExecutionPlan(
        n_inputs=trace.n_inputs,
        n_slots=trace.n_slots,
        steps=plan_steps,
        constants=list(trace.constants),
        output_slot=output_slot,
        copy_output=copy_output,
        input_shapes=trace.input_shapes,
        input_dtypes=trace.input_dtypes,
        traced_ops=len(steps),
        fused_chains=fused_chains,
        fused_ops=fused_ops,
        arena_buffers=arena_buffers,
        arena_bytes=arena_bytes,
    )


def _validation_inputs(arrays, seed: int = 0x5EED) -> list[np.ndarray]:
    """Fresh random inputs with the traced shapes/dtypes.

    Values are drawn independently of the trace inputs so anything the trace
    baked in (token ids in kwargs, masks computed outside the registry)
    produces a detectable mismatch.
    """
    rng = np.random.default_rng(seed)
    fresh = []
    for array in arrays:
        if np.issubdtype(array.dtype, np.floating):
            fresh.append(rng.standard_normal(array.shape).astype(array.dtype))
        elif np.issubdtype(array.dtype, np.integer):
            high = max(int(array.max()) + 1, 2) if array.size else 2
            fresh.append(rng.integers(0, high, size=array.shape, dtype=array.dtype))
        else:
            fresh.append(np.array(array))
    return fresh


def _identical(a: np.ndarray, b: np.ndarray) -> bool:
    return (a.shape == b.shape and a.dtype == b.dtype
            and np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes())


def compile_forward(function, *arrays, validate: bool = True):
    """Trace, compile, and validate ``function`` on example ``arrays``.

    Returns ``(plan, output)`` where ``output`` is the (dispatched) forward
    result for ``arrays`` — callers serving a request while compiling can
    hand it straight back.  ``plan`` is ``None`` when the forward cannot be
    traced or the compiled plan fails the byte-identity validation replay;
    the caller should then keep dispatching normally.
    """
    try:
        trace = record_trace(function, *arrays)
    except TraceError:
        return None, None
    output = trace.example_output
    plan = compile_plan(trace)
    if validate:
        # Anything going wrong from here on — including environmental
        # failures like allocation errors — means the plan is unproven:
        # fall back to dispatch rather than fail a request the normal
        # path could serve.  (Model errors in the *trace* forward above
        # propagate: dispatch would have raised them too.)
        try:
            fresh = _validation_inputs(arrays)
            with no_grad():
                expected = function(*[engine._TENSOR_CLS(a) for a in fresh])
            if not isinstance(expected, engine._TENSOR_CLS):
                return None, output
            got = plan.replay(*fresh)
            if not _identical(expected.data, got):
                return None, output
        except Exception:
            return None, output
        plan.replays = 0
    return plan, output


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

#: Cache sentinel: this key was tried and cannot be served from a plan.
FALLBACK = object()


def plan_key(shapes, dtypes) -> tuple:
    """Cache key for a set of input shapes/dtypes."""
    return (tuple(tuple(s) for s in shapes), tuple(str(d) for d in dtypes))


class PlanCache:
    """Per-session plan store keyed by ``(input shapes, dtypes)``.

    Entries are either an :class:`ExecutionPlan` or :data:`FALLBACK` (the key
    was traced but failed compilation/validation; keep dispatching).  Callers
    are expected to serialize access — :class:`repro.serve.InferenceSession`
    holds its lock across lookup and insert.
    """

    def __init__(self):
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0

    def lookup(self, key):
        """Return the cached plan, :data:`FALLBACK`, or ``None`` (miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        elif entry is FALLBACK:
            self.fallbacks += 1
        else:
            self.hits += 1
        return entry

    def store(self, key, plan) -> None:
        """Insert a compiled plan, or :data:`FALLBACK` when ``plan`` is None."""
        self._entries[key] = FALLBACK if plan is None else plan

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        plans = [p for p in self._entries.values() if p is not FALLBACK]
        return {
            "plans": len(plans),
            "fallback_keys": len(self._entries) - len(plans),
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "replays": sum(p.replays for p in plans),
            "fused_chains": sum(p.fused_chains for p in plans),
            "fused_ops": sum(p.fused_ops for p in plans),
            "arena_bytes": sum(p.arena_bytes for p in plans),
        }
