"""Autograd tensor engine: the NumPy-based substrate for all models.

The stack has three layers (see ARCHITECTURE.md at the repo root):

* :mod:`repro.tensor.ops` — declarative op registry; every primitive is a
  ``(name, forward, vjp, sample)`` record declared exactly once.
* :mod:`repro.tensor.engine` — graph executor: dispatch, topological sort,
  in-place gradient accumulation, per-op timing hooks.
* :class:`Tensor` — thin user-facing wrapper dispatching through the engine.

Public surface:

* :class:`Tensor` — reverse-mode autodiff array.
* :mod:`repro.tensor.functional` — softmax family, activations, losses.
* :mod:`repro.tensor.conv_utils` — conv2d / unfold / pooling primitives.
* :mod:`repro.tensor.fused` — fused composite kernels for the paper's
  quadratic-neuron hot paths.
* :mod:`repro.tensor.trace` / :mod:`repro.tensor.plan` — trace-and-replay
  inference compiler: record the op graph once, replay a fused,
  arena-allocated :class:`~repro.tensor.plan.ExecutionPlan` with zero
  Tensor/graph allocation.
* :mod:`repro.tensor.grad_check` — finite-difference gradient verification,
  including a registry-driven sweep over every registered op.
"""

from . import engine, ops
from .engine import (
    add_op_timing_hook,
    apply_op,
    graph_nodes_created,
    remove_op_timing_hook,
)
from .ops import register_op, op_names, column_cache
from .tensor import Tensor, no_grad, is_grad_enabled, unbroadcast, DEFAULT_DTYPE
from . import trace, plan
from .trace import record_trace, TraceError
from .plan import ExecutionPlan, PlanCache, compile_forward, compile_plan
from . import functional
from . import fused
from .fused import linear, quadratic_conv2d, quadratic_form, quadratic_response
from .conv_utils import (
    conv2d,
    unfold,
    max_pool2d,
    avg_pool2d,
    global_avg_pool2d,
    im2col,
    col2im,
    conv_output_size,
)
from .grad_check import (
    check_gradients,
    check_registered_ops,
    numerical_gradient,
    max_relative_error,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "graph_nodes_created",
    "unbroadcast",
    "DEFAULT_DTYPE",
    "engine",
    "ops",
    "apply_op",
    "register_op",
    "op_names",
    "add_op_timing_hook",
    "remove_op_timing_hook",
    "column_cache",
    "trace",
    "plan",
    "record_trace",
    "TraceError",
    "ExecutionPlan",
    "PlanCache",
    "compile_forward",
    "compile_plan",
    "functional",
    "fused",
    "linear",
    "quadratic_form",
    "quadratic_response",
    "quadratic_conv2d",
    "conv2d",
    "unfold",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "col2im",
    "conv_output_size",
    "check_gradients",
    "check_registered_ops",
    "numerical_gradient",
    "max_relative_error",
]
