"""Autograd tensor engine: the NumPy-based substrate for all models.

Public surface:

* :class:`Tensor` — reverse-mode autodiff array.
* :mod:`repro.tensor.functional` — softmax family, activations, losses.
* :mod:`repro.tensor.conv_utils` — conv2d / unfold / pooling primitives.
* :mod:`repro.tensor.grad_check` — finite-difference gradient verification.
"""

from .tensor import Tensor, no_grad, is_grad_enabled, unbroadcast, DEFAULT_DTYPE
from . import functional
from .conv_utils import (
    conv2d,
    unfold,
    max_pool2d,
    avg_pool2d,
    global_avg_pool2d,
    im2col,
    col2im,
    conv_output_size,
)
from .grad_check import check_gradients, numerical_gradient, max_relative_error

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "DEFAULT_DTYPE",
    "functional",
    "conv2d",
    "unfold",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "col2im",
    "conv_output_size",
    "check_gradients",
    "numerical_gradient",
    "max_relative_error",
]
