"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the user-facing layer of the autograd stack.  The heavy
lifting lives one level down:

* :mod:`repro.tensor.ops` — the declarative op registry; every primitive
  (forward + VJP + gradcheck sample) is declared exactly once.
* :mod:`repro.tensor.engine` — the graph executor; owns dispatch
  (:func:`~repro.tensor.engine.apply_op`), topological sorting, in-place
  gradient accumulation, interior-gradient freeing, and per-op timing hooks.

:class:`Tensor` itself is deliberately thin: each operator method forwards to
``engine.apply_op("<op>", ...)`` and :meth:`Tensor.backward` delegates to
``engine.backward``.  The engine supports full NumPy broadcasting; gradients
of broadcast operands are reduced back to the operand's shape with
:func:`repro.tensor.ops.unbroadcast`.
"""

from __future__ import annotations

import numpy as np

from . import engine
from .engine import apply_op, is_grad_enabled, no_grad
from .ops import unbroadcast

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast", "DEFAULT_DTYPE"]

DEFAULT_DTYPE = np.float32


def _as_array(value, dtype=None) -> np.ndarray:
    array = np.asarray(value)
    if dtype is not None:
        return array.astype(dtype, copy=False)
    if not np.issubdtype(array.dtype, np.floating):
        return array.astype(DEFAULT_DTYPE)
    return array


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op",
                 "_ctx", "_grad_owned")

    def __init__(self, data, requires_grad: bool = False, _parents: tuple = (), _op: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents = _parents
        self._op = _op
        self._ctx = None
        self._grad_owned = False

    # -- constructors -------------------------------------------------------

    @staticmethod
    def zeros(*shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype or DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype or DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, requires_grad: bool = False, rng: np.random.Generator | None = None,
              scale: float = 1.0, dtype=None) -> "Tensor":
        rng = rng or np.random.default_rng()
        data = rng.standard_normal(shape).astype(dtype or DEFAULT_DTYPE) * scale
        return Tensor(data, requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad)

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() on tensor of size {self.data.size}; only size-1 tensors "
                f"can be converted to a Python scalar (shape {self.shape})")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None
        self._grad_owned = False

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- graph bookkeeping --------------------------------------------------

    def _make_child(self, data: np.ndarray, parents: tuple, op: str) -> "Tensor":
        """Create an output tensor, wiring requires_grad from the parents.

        Retained for closure-style graph construction (set ``_backward`` on
        the returned tensor by hand); everything in-tree dispatches through
        :func:`repro.tensor.engine.apply_op` instead.
        """
        requires_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires_grad,
                      _parents=parents if requires_grad else (), _op=op)

    def _accumulate(self, grad: np.ndarray, fan_in: int = 1) -> None:
        """Add ``grad`` into ``self.grad``.

        The first contribution is stored by reference; when ``fan_in`` says
        more are coming it is promoted to a privately-owned buffer so later
        contributions are in-place ``+=`` instead of reallocating.
        """
        dtype = self.data.dtype
        grad = np.asarray(grad)
        owned = False
        if grad.dtype != dtype:
            grad = grad.astype(dtype)
            owned = True
        if self.grad is None:
            if fan_in > 1 and not owned:
                grad = grad.copy()
                owned = True
            self.grad = grad
            self._grad_owned = owned
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor to every reachable leaf.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.  May
            be omitted only for scalar tensors, in which case it defaults to 1.
        """
        engine.backward(self, grad)

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        return apply_op("add", self, other)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return apply_op("neg", self)

    def __sub__(self, other) -> "Tensor":
        return apply_op("sub", self, other)

    def __rsub__(self, other) -> "Tensor":
        return apply_op("sub", other, self)

    def __mul__(self, other) -> "Tensor":
        return apply_op("mul", self, other)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return apply_op("div", self, other)

    def __rtruediv__(self, other) -> "Tensor":
        return apply_op("div", other, self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        return apply_op("pow", self, exponent=exponent)

    def __matmul__(self, other) -> "Tensor":
        return apply_op("matmul", self, other)

    # -- elementwise functions ----------------------------------------------

    def exp(self) -> "Tensor":
        return apply_op("exp", self)

    def log(self) -> "Tensor":
        return apply_op("log", self)

    def sqrt(self) -> "Tensor":
        return apply_op("sqrt", self)

    def abs(self) -> "Tensor":
        return apply_op("abs", self)

    def tanh(self) -> "Tensor":
        return apply_op("tanh", self)

    def sigmoid(self) -> "Tensor":
        return apply_op("sigmoid", self)

    def relu(self) -> "Tensor":
        return apply_op("relu", self)

    def clip(self, min_value: float | None = None, max_value: float | None = None) -> "Tensor":
        return apply_op("clip", self, min_value=min_value, max_value=max_value)

    def maximum(self, other) -> "Tensor":
        return apply_op("maximum", self, other)

    # -- reductions ----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op("sum", self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op("max", self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # -- shape manipulation ---------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply_op("reshape", self, shape=shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return apply_op("transpose", self, axes=axes)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def expand_dims(self, axis: int) -> "Tensor":
        return apply_op("expand_dims", self, axis=axis)

    def squeeze(self, axis: int) -> "Tensor":
        return apply_op("squeeze", self, axis=axis)

    def __getitem__(self, index) -> "Tensor":
        index = index.data.astype(np.int64) if isinstance(index, Tensor) else index
        return apply_op("getitem", self, index=index)

    def pad(self, pad_width, constant_value: float = 0.0) -> "Tensor":
        return apply_op("pad", self, pad_width=pad_width, constant_value=constant_value)

    # -- composition helpers --------------------------------------------------

    @staticmethod
    def cat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` (differentiable)."""
        return apply_op("cat", *tensors, axis=axis)

    @staticmethod
    def stack(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        expanded = [t.expand_dims(axis) for t in tensors]
        return Tensor.cat(expanded, axis=axis)


# Hand the executor its output class (resolves the engine <-> tensor cycle).
engine._TENSOR_CLS = Tensor
