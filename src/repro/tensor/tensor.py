"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the computational substrate of the reproduction.  The paper's
experiments were run on PyTorch; since no deep-learning framework is available
in this environment, we implement a small but complete autograd engine with the
same programming model: a :class:`Tensor` wraps a NumPy array, records the
operations applied to it, and :meth:`Tensor.backward` propagates gradients to
every tensor created with ``requires_grad=True``.

Every differentiable operation returns a new :class:`Tensor` whose
``_backward`` closure knows how to push the output gradient to its parents.
Gradients accumulate (sum) into ``Tensor.grad`` exactly like PyTorch's leaves.

The engine supports full NumPy broadcasting; gradients of broadcast operands
are reduced back to the operand's shape with :func:`unbroadcast`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast", "DEFAULT_DTYPE"]

DEFAULT_DTYPE = np.float32

# ---------------------------------------------------------------------------
# Global gradient-mode switch (mirrors torch.no_grad()).
# ---------------------------------------------------------------------------

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block, operations on tensors do not record
    backward closures, which makes inference cheaper and prevents accidental
    gradient accumulation during evaluation.
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record the autograd graph."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operand was broadcast during the forward pass, its gradient must be
    summed over the broadcast dimensions.  ``shape`` is the original operand
    shape; ``grad`` has the (possibly larger) output shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    array = np.asarray(value)
    if dtype is not None:
        return array.astype(dtype, copy=False)
    if not np.issubdtype(array.dtype, np.floating):
        return array.astype(DEFAULT_DTYPE)
    return array


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, requires_grad: bool = False, _parents: tuple = (), _op: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents = _parents
        self._op = _op

    # -- constructors -------------------------------------------------------

    @staticmethod
    def zeros(*shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype or DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype or DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, requires_grad: bool = False, rng: np.random.Generator | None = None,
              scale: float = 1.0, dtype=None) -> "Tensor":
        rng = rng or np.random.default_rng()
        data = rng.standard_normal(shape).astype(dtype or DEFAULT_DTYPE) * scale
        return Tensor(data, requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad)

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- graph bookkeeping --------------------------------------------------

    def _make_child(self, data: np.ndarray, parents: tuple, op: str) -> "Tensor":
        """Create an output tensor, wiring requires_grad from the parents."""
        requires_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        child = Tensor(data, requires_grad=requires_grad,
                       _parents=parents if requires_grad else (), _op=op)
        return child

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad.flags.writeable is False else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor to every reachable leaf.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.  May
            be omitted only for scalar tensors, in which case it defaults to 1.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Interior nodes do not need to keep their gradient once it has
                # been propagated; leaves (no parents) keep it for optimizers.
                if node._parents and node is not self:
                    node.grad = None

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data + other.data, (self, other), "add")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(unbroadcast(grad, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(grad, other.shape))
            out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,), "neg")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(-grad)
            out._backward = _backward
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return (-self) + other

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data * other.data, (self, other), "mul")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(unbroadcast(grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(grad * self.data, other.shape))
            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data / other.data, (self, other), "div")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(unbroadcast(grad / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(
                        unbroadcast(-grad * self.data / (other.data ** 2), other.shape))
            out._backward = _backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return other / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out = self._make_child(self.data ** exponent, (self,), "pow")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad * exponent * self.data ** (exponent - 1))
            out._backward = _backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data @ other.data, (self, other), "matmul")
        if out.requires_grad:
            def _backward(grad):
                a, b = self.data, other.data
                if self.requires_grad:
                    if a.ndim == 1 and b.ndim == 1:
                        grad_a = grad * b
                    elif b.ndim == 1:
                        grad_a = grad[..., None] * b
                    elif a.ndim == 1:
                        grad_a = np.einsum("...ij,...j->i", b, grad)
                    else:
                        grad_a = grad @ np.swapaxes(b, -1, -2)
                    self._accumulate(unbroadcast(grad_a, a.shape))
                if other.requires_grad:
                    if a.ndim == 1 and b.ndim == 1:
                        grad_b = grad * a
                    elif a.ndim == 1:
                        grad_b = a[:, None] * grad[..., None, :]
                    elif b.ndim == 1:
                        grad_b = np.einsum("...ij,...i->j", a, grad)
                    else:
                        grad_b = np.swapaxes(a, -1, -2) @ grad
                    other._accumulate(unbroadcast(grad_b, b.shape))
            out._backward = _backward
        return out

    # -- elementwise functions ----------------------------------------------

    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = self._make_child(value, (self,), "exp")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad * value)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,), "log")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad / self.data)
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)
        out = self._make_child(value, (self,), "sqrt")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad * 0.5 / value)
            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = self._make_child(np.abs(self.data), (self,), "abs")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad * np.sign(self.data))
            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = self._make_child(value, (self,), "tanh")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad * (1.0 - value ** 2))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(value, (self,), "sigmoid")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad * value * (1.0 - value))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make_child(self.data * mask, (self,), "relu")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad * mask)
            out._backward = _backward
        return out

    def clip(self, min_value: float | None = None, max_value: float | None = None) -> "Tensor":
        value = np.clip(self.data, min_value, max_value)
        out = self._make_child(value, (self,), "clip")
        if out.requires_grad:
            inside = np.ones_like(self.data, dtype=bool)
            if min_value is not None:
                inside &= self.data >= min_value
            if max_value is not None:
                inside &= self.data <= max_value

            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad * inside)
            out._backward = _backward
        return out

    def maximum(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        value = np.maximum(self.data, other.data)
        out = self._make_child(value, (self, other), "maximum")
        if out.requires_grad:
            self_wins = self.data >= other.data

            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(unbroadcast(grad * self_wins, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(grad * (~self_wins), other.shape))
            out._backward = _backward
        return out

    # -- reductions ----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)
        out = self._make_child(value, (self,), "sum")
        if out.requires_grad:
            def _backward(grad):
                if not self.requires_grad:
                    return
                if axis is None:
                    expanded = np.broadcast_to(grad, self.shape)
                else:
                    grad_local = grad
                    if not keepdims:
                        grad_local = np.expand_dims(grad_local, axis=axis)
                    expanded = np.broadcast_to(grad_local, self.shape)
                self._accumulate(expanded)
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(value, (self,), "max")
        if out.requires_grad:
            def _backward(grad):
                if not self.requires_grad:
                    return
                if axis is None:
                    mask = (self.data == self.data.max()).astype(self.data.dtype)
                    mask /= mask.sum()
                    self._accumulate(mask * grad)
                else:
                    max_keep = self.data.max(axis=axis, keepdims=True)
                    mask = (self.data == max_keep).astype(self.data.dtype)
                    mask /= mask.sum(axis=axis, keepdims=True)
                    grad_local = grad
                    if not keepdims:
                        grad_local = np.expand_dims(grad_local, axis=axis)
                    self._accumulate(mask * grad_local)
            out._backward = _backward
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # -- shape manipulation ---------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad.reshape(self.shape))
            out._backward = _backward
        return out

    def flatten(self, start_dim: int = 0) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out = self._make_child(self.data.transpose(axes), (self,), "transpose")
        if out.requires_grad:
            inverse = np.argsort(axes)

            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad.transpose(inverse))
            out._backward = _backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def expand_dims(self, axis: int) -> "Tensor":
        out = self._make_child(np.expand_dims(self.data, axis), (self,), "expand_dims")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(np.squeeze(grad, axis=axis))
            out._backward = _backward
        return out

    def squeeze(self, axis: int) -> "Tensor":
        out = self._make_child(np.squeeze(self.data, axis=axis), (self,), "squeeze")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(np.expand_dims(grad, axis=axis))
            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        index = index.data.astype(np.int64) if isinstance(index, Tensor) else index
        out = self._make_child(self.data[index], (self,), "getitem")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    full = np.zeros_like(self.data)
                    np.add.at(full, index, grad)
                    self._accumulate(full)
            out._backward = _backward
        return out

    def pad(self, pad_width, constant_value: float = 0.0) -> "Tensor":
        out = self._make_child(
            np.pad(self.data, pad_width, mode="constant", constant_values=constant_value),
            (self,), "pad")
        if out.requires_grad:
            slices = tuple(slice(before, before + size)
                           for (before, _after), size in zip(pad_width, self.shape))

            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(grad[slices])
            out._backward = _backward
        return out

    # -- composition helpers --------------------------------------------------

    @staticmethod
    def cat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` (differentiable)."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        requires_grad = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires_grad,
                     _parents=tuple(tensors) if requires_grad else (), _op="cat")
        if requires_grad:
            sizes = [t.shape[axis] for t in tensors]
            offsets = np.cumsum([0] + sizes)

            def _backward(grad):
                for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                    if tensor.requires_grad:
                        slicer = [slice(None)] * grad.ndim
                        slicer[axis] = slice(int(start), int(end))
                        tensor._accumulate(grad[tuple(slicer)])
            out._backward = _backward
        return out

    @staticmethod
    def stack(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        expanded = [t.expand_dims(axis) for t in tensors]
        return Tensor.cat(expanded, axis=axis)
