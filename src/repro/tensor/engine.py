"""Graph executor for the declarative op registry.

This module owns everything that happens *between* op definitions
(:mod:`repro.tensor.ops`) and the user-facing :class:`~repro.tensor.Tensor`:

* :func:`apply_op` — run a registered op's forward pass and wire the output
  into the autograd graph (parents, op name, saved context).
* :func:`backward` — topologically sort the graph below a root, drive each
  node's VJP in reverse order, accumulate gradients **in place** into
  preallocated buffers, and free interior gradients as soon as they have been
  consumed.
* The global gradient-mode switch (:class:`no_grad` / :func:`is_grad_enabled`)
  that decides whether ``apply_op`` records graph structure at all.
* Per-op timing hooks: :func:`add_op_timing_hook` registers a callable
  ``hook(op_name, seconds)`` invoked for every forward (``"matmul"``) and
  backward (``"matmul:backward"``) execution.  The aggregation side lives in
  :mod:`repro.metrics.profiler`.

Gradient accumulation strategy
------------------------------
Each tensor carries a ``_grad_owned`` flag.  The first gradient that reaches a
node is stored by reference (no copy); when a node is known to have fan-in
greater than one, the executor immediately promotes that first gradient to a
privately-owned buffer so that every subsequent contribution is an in-place
``+=`` rather than the ``grad = grad + g`` reallocation the engine used
historically.  Ownership is dropped for gradients that outlive the backward
pass (leaves and the root) so a later ``backward()`` never mutates arrays the
caller may still hold.
"""

from __future__ import annotations

import functools
import threading
from time import perf_counter

import numpy as np

from .ops import OPS, OpContext, get_op

__all__ = [
    "apply_op",
    "backward",
    "no_grad",
    "is_grad_enabled",
    "graph_nodes_created",
    "add_op_timing_hook",
    "remove_op_timing_hook",
]

# Set by repro.tensor.tensor at import time; breaks the circular dependency
# between the executor (which constructs Tensors) and the Tensor class (whose
# methods dispatch through the executor).
_TENSOR_CLS = None

class _ThreadState(threading.local):
    """Per-thread autograd mode and graph-node counter.

    Both are thread-local on purpose: serving engines run no-grad forwards
    on scheduler/handler threads *concurrently* with other threads, and a
    process-global switch would let one thread's ``no_grad.__exit__``
    re-enable gradients in the middle of another thread's forward (a real
    race: it intermittently tripped the serving layer's strict zero-graph
    assert under concurrent multi-engine load).  Every thread starts with
    gradients enabled.
    """

    def __init__(self):
        self.grad_enabled = True
        self.graph_nodes_created = 0
        # Active OpTracer (repro.tensor.trace) or None.  Thread-local so a
        # session tracing on a scheduler thread never records ops from a
        # concurrent training thread into its plan.
        self.tracer = None


_state = _ThreadState()

# Registered timing hooks, kept as an immutable tuple that is *replaced* (not
# mutated) on add/remove.  ``_emit_timing`` iterates whatever snapshot it
# reads; a concurrent add/remove builds a new tuple and can never invalidate
# an iteration already in flight (the old list-based storage raced here).
_TIMING_HOOKS: tuple = ()
_TIMING_HOOKS_LOCK = threading.Lock()

# Shared context kwargs for the (common) no-kwargs dispatch; OpContext holders
# must treat ``ctx.kwargs`` as read-only, so one empty dict can serve them all.
_NO_KWARGS: dict = {}


# ---------------------------------------------------------------------------
# Gradient-mode switch (mirrors torch.no_grad()).
# ---------------------------------------------------------------------------

class no_grad:
    """Context manager *and* decorator that disables graph construction.

    Inside a ``with no_grad():`` block, operations on tensors do not record
    backward state, which makes inference cheaper and prevents accidental
    gradient accumulation during evaluation.  Nesting is supported; each
    block restores the mode that was active when it was entered.  The switch
    is **per thread**, so a serving thread in inference mode never disables
    (or re-enables) gradients under a concurrently training thread.

    Applied as a decorator (``@no_grad()``), the wrapped function runs
    entirely in inference mode — the serving layer uses this on its hot
    prediction paths::

        @no_grad()
        def predict(model, batch):
            return model(batch)

    Each *call* of the wrapped function enters a fresh block, so decorated
    functions are reentrant and safe to nest with explicit ``with`` blocks.
    """

    def __enter__(self):
        self._previous = _state.grad_enabled
        _state.grad_enabled = False
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        _state.grad_enabled = self._previous
        return False

    def __call__(self, function):
        @functools.wraps(function)
        def wrapped(*args, **kwargs):
            with no_grad():
                return function(*args, **kwargs)
        return wrapped


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record the autograd graph (per thread)."""
    return _state.grad_enabled


def graph_nodes_created() -> int:
    """Total autograd graph nodes constructed so far *on this thread*.

    Only nodes that actually record backward state count — operations run
    under :class:`no_grad` (or on tensors that do not require grad) leave the
    counter untouched, which is exactly what makes the counter useful: take
    the difference across a code region to assert it built *zero* graph.
    Thread-locality keeps the assert honest — a training loop on another
    thread cannot inflate a serving forward's delta (see
    :class:`repro.serve.InferenceSession`).
    """
    return _state.graph_nodes_created


# ---------------------------------------------------------------------------
# Timing hooks
# ---------------------------------------------------------------------------

def add_op_timing_hook(hook) -> None:
    """Register ``hook(op_name, seconds)`` to observe every op execution.

    Forward passes report under the op name, backward passes under
    ``"<name>:backward"``.  Timing is only measured while at least one hook is
    installed, so the zero-hook fast path stays free.  Registration swaps in a
    fresh tuple snapshot, so hooks may be added or removed from any thread
    while other threads are mid-dispatch.
    """
    global _TIMING_HOOKS
    with _TIMING_HOOKS_LOCK:
        _TIMING_HOOKS = _TIMING_HOOKS + (hook,)


def remove_op_timing_hook(hook) -> None:
    """Unregister a hook added with :func:`add_op_timing_hook`."""
    global _TIMING_HOOKS
    with _TIMING_HOOKS_LOCK:
        hooks = list(_TIMING_HOOKS)
        hooks.remove(hook)
        _TIMING_HOOKS = tuple(hooks)


def _emit_timing(name: str, seconds: float) -> None:
    for hook in _TIMING_HOOKS:
        hook(name, seconds)


# ---------------------------------------------------------------------------
# Forward dispatch
# ---------------------------------------------------------------------------

def apply_op(name: str, *inputs, **kwargs):
    """Execute registered op ``name`` on ``inputs`` and return a new Tensor.

    Non-Tensor inputs (scalars, NumPy arrays) are wrapped as constant
    tensors.  Non-array configuration (axes, strides, …) travels through
    ``kwargs`` and is available to the VJP via the node's context.
    """
    opdef = get_op(name)
    tensor_cls = _TENSOR_CLS
    # Fast path: most dispatches (everything issued by Tensor methods and
    # Module forwards) pass Tensors only — skip the per-element conditional
    # rebuild and reuse the argument tuple as-is.
    for value in inputs:
        if not isinstance(value, tensor_cls):
            tensors = tuple(v if isinstance(v, tensor_cls) else tensor_cls(v)
                            for v in inputs)
            break
    else:
        tensors = inputs
    requires_grad = _state.grad_enabled and any(t.requires_grad for t in tensors)
    ctx = OpContext(tuple(t.data for t in tensors), kwargs or _NO_KWARGS, requires_grad)
    if _TIMING_HOOKS:
        start = perf_counter()
        if kwargs:
            data = opdef.forward(ctx, *ctx.inputs, **kwargs)
        else:
            data = opdef.forward(ctx, *ctx.inputs)
        _emit_timing(name, perf_counter() - start)
    elif kwargs:
        data = opdef.forward(ctx, *ctx.inputs, **kwargs)
    else:
        data = opdef.forward(ctx, *ctx.inputs)
    out = tensor_cls(data, requires_grad=requires_grad,
                     _parents=tensors if requires_grad else (), _op=name)
    if requires_grad:
        _state.graph_nodes_created += 1
        out._ctx = ctx
    tracer = _state.tracer
    if tracer is not None:
        tracer.record(name, tensors, kwargs, out)
    return out


# ---------------------------------------------------------------------------
# Backward execution
# ---------------------------------------------------------------------------

def _topological_order(root) -> list:
    """Iterative post-order DFS over the graph reachable from ``root``."""
    topo: list = []
    visited: set[int] = set()
    stack: list[tuple] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return topo


def backward(root, grad: np.ndarray | None = None) -> None:
    """Backpropagate from ``root`` to every reachable tensor requiring grad.

    Parameters
    ----------
    root:
        The tensor to differentiate.  Must have ``requires_grad=True``.
    grad:
        Gradient of the final objective with respect to ``root``.  May be
        omitted only for scalar tensors, in which case it defaults to 1.
    """
    if not root.requires_grad:
        raise RuntimeError("backward() called on a tensor that does not require grad")
    if grad is None:
        if root.data.size != 1:
            raise RuntimeError("grad must be provided for non-scalar outputs")
        grad = np.ones_like(root.data)
    grad = np.asarray(grad, dtype=root.data.dtype)

    topo = _topological_order(root)

    # Fan-in census: how many gradient contributions each node will receive.
    # Nodes with fan-in > 1 get a preallocated accumulation buffer on their
    # first contribution so every later one is an in-place ``+=``.
    fan_in: dict[int, int] = {}
    for node in topo:
        if node._ctx is not None or node._backward is not None:
            for parent in node._parents:
                fan_in[id(parent)] = fan_in.get(id(parent), 0) + 1

    root._accumulate(grad, fan_in.get(id(root), 0) + 1)

    # Arrays known to be referenced outside a single node's grad slot: the
    # caller-supplied seed, and any gradient a VJP passed through by
    # reference (same-shape ``add`` hands the output grad to both parents).
    # Retained grads backed by one of these must be materialized below.
    shared_ids: set[int] = {id(grad)}

    timing = bool(_TIMING_HOOKS)
    for node in reversed(topo):
        node_grad = node.grad
        if node_grad is None:
            continue
        if node._ctx is not None:
            opdef = OPS[node._op]
            needs = tuple(parent.requires_grad for parent in node._parents)
            if timing:
                start = perf_counter()
                grads = opdef.vjp(node._ctx, node_grad, needs)
                _emit_timing(node._op + ":backward", perf_counter() - start)
            else:
                grads = opdef.vjp(node._ctx, node_grad, needs)
            for parent, parent_grad in zip(node._parents, grads):
                if parent_grad is not None and parent.requires_grad:
                    if parent_grad is node_grad:
                        shared_ids.add(id(parent_grad))
                    parent._accumulate(parent_grad, fan_in.get(id(parent), 1))
        elif node._backward is not None:
            # Legacy closure-style node (still supported for external code
            # that wires graphs through Tensor._make_child by hand).
            node._backward(node_grad)
        # Interior nodes do not need to keep their gradient once it has been
        # propagated; leaves (no parents) keep it for optimizers.
        if node._parents and node is not root:
            node.grad = None
            node._grad_owned = False

    # Gradients that survive the pass (root and leaves) are handed to user
    # code, which may write them or hold them across steps — so they must be
    # private, writable buffers.  VJPs are allowed to emit read-only
    # broadcast views (``sum``) or pass the incoming gradient through by
    # reference, which is fine for interior grads (freed above) but not for
    # retained ones: materialize those.  Ownership is also dropped so a
    # later backward() never mutates arrays the caller may still hold.
    for node in topo:
        retained = node.grad
        if retained is not None:
            if (retained.base is not None or not retained.flags.writeable
                    or id(retained) in shared_ids):
                node.grad = np.array(retained)
            node._grad_owned = False
