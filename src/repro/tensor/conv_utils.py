"""Differentiable convolution, unfold (im2col) and pooling primitives.

All spatial operators work on tensors with layout ``(N, C, H, W)`` — batch,
channels, height, width — matching the convention used throughout the paper's
CNN experiments.  The array-level kernels (``im2col`` / ``col2im`` /
``conv_output_size``) live in :mod:`repro.tensor.ops` next to the registered
ops that use them and are re-exported here; the functions below are thin
Tensor-level wrappers that dispatch through the graph executor.

The ``conv2d`` op fuses im2col with the filter matmul and, in inference mode
(``no_grad``), draws its column buffer from a shared cache
(:data:`repro.tensor.ops.column_cache`) so repeated same-geometry
convolutions do not reallocate the patch matrix.
"""

from __future__ import annotations

from .engine import apply_op
from .ops import col2im, column_cache, conv_output_size, im2col  # noqa: F401  (re-exported)
from .tensor import Tensor

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "column_cache",
    "unfold",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]


def unfold(x: Tensor, kernel_size: int, stride: int = 1, padding: int = 0) -> Tensor:
    """Differentiable im2col.

    Returns a tensor of shape ``(N, out_h, out_w, C * k * k)``; gradients are
    scattered back with :func:`col2im`.  This is the building block for neuron
    types that need explicit access to the receptive-field vector (for example
    the general quadratic neuron ``xᵀMx``).
    """
    return apply_op("unfold", x, kernel_size=kernel_size, stride=stride, padding=padding)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1,
           padding: int = 0) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, K, K)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    """
    if bias is None:
        return apply_op("conv2d", x, weight, stride=stride, padding=padding)
    return apply_op("conv2d", x, weight, bias, stride=stride, padding=padding)


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling with square windows (no padding)."""
    return apply_op("max_pool2d", x, kernel_size=kernel_size, stride=stride)


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling with square windows (no padding)."""
    return apply_op("avg_pool2d", x, kernel_size=kernel_size, stride=stride)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))
