"""Differentiable convolution, unfold (im2col) and pooling primitives.

All spatial operators work on tensors with layout ``(N, C, H, W)`` — batch,
channels, height, width — matching the convention used throughout the paper's
CNN experiments.  Forward passes are vectorized with
``numpy.lib.stride_tricks.sliding_window_view``; backward passes scatter-add
through an explicit ``col2im``.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "unfold",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def _pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")


def im2col(x: np.ndarray, kernel_size: int, stride: int, padding: int) -> np.ndarray:
    """Extract sliding patches from ``x``.

    Parameters
    ----------
    x:
        Array of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N, out_h, out_w, C * kernel_size * kernel_size)`` where
    each row is a flattened receptive field.
    """
    padded = _pad_input(x, padding)
    windows = sliding_window_view(padded, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # (N, C, out_h, out_w, KH, KW) -> (N, out_h, out_w, C, KH, KW)
    windows = windows.transpose(0, 2, 3, 1, 4, 5)
    n, out_h, out_w = windows.shape[:3]
    return np.ascontiguousarray(windows.reshape(n, out_h, out_w, -1))


def col2im(cols: np.ndarray, input_shape: tuple, kernel_size: int, stride: int,
           padding: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch values back to image layout.

    ``cols`` has shape ``(N, out_h, out_w, C * kernel_size * kernel_size)`` and
    the result has shape ``input_shape`` = ``(N, C, H, W)``.
    """
    n, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)
    cols = cols.reshape(n, out_h, out_w, channels, kernel_size, kernel_size)
    padded = np.zeros((n, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype)
    for i in range(kernel_size):
        row_end = i + stride * out_h
        for j in range(kernel_size):
            col_end = j + stride * out_w
            padded[:, :, i:row_end:stride, j:col_end:stride] += cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    if padding == 0:
        return padded
    return padded[:, :, padding:padding + height, padding:padding + width]


def unfold(x: Tensor, kernel_size: int, stride: int = 1, padding: int = 0) -> Tensor:
    """Differentiable im2col.

    Returns a tensor of shape ``(N, out_h, out_w, C * k * k)``; gradients are
    scattered back with :func:`col2im`.  This is the building block for neuron
    types that need explicit access to the receptive-field vector (for example
    the general quadratic neuron ``xᵀMx``).
    """
    cols = im2col(x.data, kernel_size, stride, padding)
    out = x._make_child(cols, (x,), "unfold")
    if out.requires_grad:
        input_shape = x.shape

        def _backward(grad):
            if x.requires_grad:
                x._accumulate(col2im(grad, input_shape, kernel_size, stride, padding))
        out._backward = _backward
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1,
           padding: int = 0) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, K, K)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    """
    n, c_in, height, width = x.shape
    c_out, c_in_w, k_h, k_w = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}")
    if k_h != k_w:
        raise ValueError("conv2d only supports square kernels")
    kernel_size = k_h
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)

    cols = im2col(x.data, kernel_size, stride, padding)          # (N, OH, OW, C*K*K)
    flat_weight = weight.data.reshape(c_out, -1)                 # (C_out, C*K*K)
    out_data = cols @ flat_weight.T                              # (N, OH, OW, C_out)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = np.ascontiguousarray(out_data.transpose(0, 3, 1, 2))

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = x._make_child(out_data, parents, "conv2d")
    if out.requires_grad:
        input_shape = x.shape

        def _backward(grad):
            # grad: (N, C_out, OH, OW) -> (N, OH, OW, C_out)
            grad_cols_view = grad.transpose(0, 2, 3, 1)
            if weight.requires_grad:
                grad_weight = np.einsum("nhwo,nhwi->oi", grad_cols_view, cols)
                weight._accumulate(grad_weight.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad_cols_view.sum(axis=(0, 1, 2)))
            if x.requires_grad:
                grad_cols = grad_cols_view @ flat_weight          # (N, OH, OW, C*K*K)
                x._accumulate(col2im(grad_cols, input_shape, kernel_size, stride, padding))
        out._backward = _backward
    return out


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling with square windows (no padding)."""
    stride = stride or kernel_size
    n, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel_size, stride, 0)
    out_w = conv_output_size(width, kernel_size, stride, 0)

    windows = sliding_window_view(x.data, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    flat = windows.reshape(n, channels, out_h, out_w, -1)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    out = x._make_child(out_data, (x,), "max_pool2d")
    if out.requires_grad:
        def _backward(grad):
            if not x.requires_grad:
                return
            grad_input = np.zeros_like(x.data)
            offsets_i, offsets_j = np.unravel_index(argmax, (kernel_size, kernel_size))
            base_i = (np.arange(out_h) * stride)[None, None, :, None]
            base_j = (np.arange(out_w) * stride)[None, None, None, :]
            rows = base_i + offsets_i
            cols_idx = base_j + offsets_j
            n_idx = np.arange(n)[:, None, None, None]
            c_idx = np.arange(channels)[None, :, None, None]
            np.add.at(grad_input, (n_idx, c_idx, rows, cols_idx), grad)
            x._accumulate(grad_input)
        out._backward = _backward
    return out


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling with square windows (no padding)."""
    stride = stride or kernel_size
    n, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel_size, stride, 0)
    out_w = conv_output_size(width, kernel_size, stride, 0)

    windows = sliding_window_view(x.data, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    out_data = windows.mean(axis=(-2, -1))

    out = x._make_child(out_data, (x,), "avg_pool2d")
    if out.requires_grad:
        scale = 1.0 / (kernel_size * kernel_size)

        def _backward(grad):
            if not x.requires_grad:
                return
            grad_input = np.zeros_like(x.data)
            for i in range(kernel_size):
                for j in range(kernel_size):
                    grad_input[:, :, i:i + stride * out_h:stride,
                               j:j + stride * out_w:stride] += grad * scale
            x._accumulate(grad_input)
        out._backward = _backward
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))
