"""Tensor-level wrappers for the fused composite ops.

These functions dispatch the hand-derived fused kernels registered in
:mod:`repro.tensor.ops` — the hot paths of the paper's proposed quadratic
neuron plus two generally useful dense kernels.  Each call builds a single
graph node where the equivalent composition of primitives would build many
(the unfused ``EfficientQuadraticConv2d`` forward is a ~8-node subgraph with
two separate convolutions over the same input).
"""

from __future__ import annotations

from .engine import apply_op
from .tensor import Tensor

__all__ = ["linear", "quadratic_form", "quadratic_response", "quadratic_conv2d"]


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Dense affine map ``y = x Wᵀ + b`` as a single graph node."""
    if bias is None:
        return apply_op("linear", x, weight)
    return apply_op("linear", x, weight, bias)


def quadratic_form(x: Tensor, matrices: Tensor) -> Tensor:
    """Batched general quadratic form ``y_o = xᵀ M_o x``.

    ``x`` has shape ``(..., n)`` and ``matrices`` ``(m, n, n)``; the result
    has shape ``(..., m)``.  Used by the general/pure quadratic baseline
    neurons, replacing a per-output-channel Python loop.
    """
    return apply_op("quadratic_form", x, matrices)


def quadratic_response(x: Tensor, weight: Tensor, q_weight: Tensor, lambdas: Tensor,
                       bias: Tensor | None = None, *, rank: int,
                       vectorized: bool = True) -> Tensor:
    """Fused proposed-neuron layer response ``{wᵀx + b + (fᵏ)ᵀΛᵏfᵏ, fᵏ}``.

    Produces exactly the same values (bit-for-bit) as the unfused
    composition in :class:`repro.quadratic.EfficientQuadraticLinear`, with
    one forward kernel and one hand-derived VJP.
    """
    if bias is None:
        return apply_op("quadratic_response", x, weight, q_weight, lambdas,
                        rank=rank, vectorized=vectorized)
    return apply_op("quadratic_response", x, weight, q_weight, lambdas, bias,
                    rank=rank, vectorized=vectorized)


def quadratic_conv2d(x: Tensor, weight: Tensor, q_weight: Tensor, lambdas: Tensor,
                     bias: Tensor | None = None, *, stride: int = 1, padding: int = 0,
                     rank: int, vectorized: bool = True) -> Tensor:
    """Fused quadratic convolution: one im2col + one stacked-filter matmul.

    The unfused path runs two full convolutions over the same input (linear
    filters and Qᵏ projections); this kernel shares the column extraction
    and the backward scatter between them.
    """
    if bias is None:
        return apply_op("quadratic_conv2d", x, weight, q_weight, lambdas,
                        stride=stride, padding=padding, rank=rank, vectorized=vectorized)
    return apply_op("quadratic_conv2d", x, weight, q_weight, lambdas, bias,
                    stride=stride, padding=padding, rank=rank, vectorized=vectorized)
