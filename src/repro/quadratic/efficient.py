"""The paper's efficient quadratic neuron (Sec. III) as dense and convolutional layers.

A single proposed neuron with fan-in ``n`` and decomposition rank ``k`` computes

.. math::

    fᵏ = (Qᵏ)ᵀ x,\qquad
    y = wᵀx + b + (fᵏ)ᵀ Λᵏ fᵏ,\qquad
    \text{output} = \{\, y,\; fᵏ \,\}

so it produces ``k + 1`` output values from ``(k+1)n + k`` parameters
(Eq. (9)) using ``(k+1)n + 2k`` MACs (Eq. (10)).  The intermediate projections
``fᵏ`` — which a plain rank-``k`` quadratic neuron would discard after the
summation — are concatenated to the scalar response ``y`` ("vectorized
output", Sec. III-B), which is what lets a layer reach a target width with
roughly ``1/(k+1)`` as many neurons.

Two layer flavours are provided:

* :class:`EfficientQuadraticLinear` — a dense layer of proposed neurons, used
  in MLPs and as the projection layers of the quadratic Transformer.
* :class:`EfficientQuadraticConv2d` — a convolutional layer whose filters are
  proposed neurons applied to each receptive field; the extra outputs ``fᵏ``
  are emitted as additional channels (Fig. 3, right).
"""

from __future__ import annotations

import math

import numpy as np

from ..nn import init
from ..nn.module import Module, Parameter
from ..tensor import Tensor, conv2d
from ..tensor.fused import quadratic_conv2d, quadratic_response
from .complexity import proposed_mac_count, proposed_parameter_count

__all__ = ["EfficientQuadraticLinear", "EfficientQuadraticConv2d", "neurons_for_width"]


def neurons_for_width(target_width: int, rank: int) -> int:
    """Number of proposed neurons needed to produce ``target_width`` outputs.

    Each neuron emits ``rank + 1`` values, so ``ceil(target_width / (rank+1))``
    neurons cover the requested width; the layer trims any surplus channels.
    """
    if target_width <= 0:
        raise ValueError(f"target width must be positive, got {target_width}")
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    return math.ceil(target_width / (rank + 1))


class EfficientQuadraticLinear(Module):
    """Dense layer of the proposed quadratic neurons.

    Parameters
    ----------
    in_features:
        Fan-in ``n`` of every neuron.
    num_neurons:
        Number of quadratic neurons in the layer.
    rank:
        Decomposition rank ``k`` (the paper uses ``k = 9`` for CNNs).
    vectorized_output:
        When ``True`` (paper default) the layer outputs ``num_neurons*(k+1)``
        features ``{y, fᵏ}`` per example; when ``False`` only the scalar
        responses ``y`` are emitted (ablation of Sec. III-B).
    out_features:
        Optional hard cap on the output width; surplus features produced by the
        last neuron are trimmed so the layer can drop into an architecture that
        expects an exact width.
    lambda_init:
        Standard deviation of the (small) random initialization of Λᵏ.  The
        eigenvalues start near zero so the network begins close to its linear
        counterpart and the quadratic response grows during training.

    The forward pass dispatches the fused ``quadratic_response`` op (one
    graph node, hand-derived VJP); set ``use_fused = False`` to fall back to
    the node-by-node composition of primitives, which produces bit-identical
    outputs and gradients.
    """

    use_fused = True

    def __init__(self, in_features: int, num_neurons: int, rank: int = 9,
                 vectorized_output: bool = True, bias: bool = True,
                 out_features: int | None = None, lambda_init: float = 0.01,
                 q_init_gain: float = 1.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        self.in_features = in_features
        self.num_neurons = num_neurons
        self.rank = rank
        self.vectorized_output = vectorized_output
        self.q_init_gain = q_init_gain

        natural_width = num_neurons * (rank + 1) if vectorized_output else num_neurons
        self.out_features = natural_width if out_features is None else out_features
        if self.out_features > natural_width:
            raise ValueError(
                f"{num_neurons} neurons with rank {rank} produce at most {natural_width} "
                f"outputs, cannot provide {self.out_features}")

        # Linear part wᵀx + b: one weight row per neuron.
        self.weight = Parameter(init.kaiming_uniform((num_neurons, in_features), rng, gain=1.0))
        self.bias = Parameter(init.zeros((num_neurons,))) if bias else None
        # Quadratic part: Qᵏ per neuron, stored as a single (n, num_neurons*k)
        # projection so fᵏ for every neuron is one matrix multiplication.
        q_init = np.concatenate(
            [init.orthogonal((in_features, rank), rng, gain=q_init_gain)
             for _ in range(num_neurons)], axis=1)
        self.q_weight = Parameter(q_init)
        # Retained eigenvalues Λᵏ (diagonal), trained with their own learning rate.
        self.lambdas = Parameter(init.normal((num_neurons, rank), rng, std=lambda_init),
                                 tag="quadratic")

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got {x.shape[-1]}")
        if self.use_fused:
            output = quadratic_response(
                x, self.weight, self.q_weight, self.lambdas, self.bias,
                rank=self.rank, vectorized=self.vectorized_output)
        else:
            output = self._forward_unfused(x)
        if output.shape[-1] != self.out_features:
            output = output[..., :self.out_features]
        return output

    def _forward_unfused(self, x: Tensor) -> Tensor:
        """Reference composition of primitives (used by tests and benchmarks)."""
        batch_shape = x.shape[:-1]
        # fᵏ for every neuron: (..., num_neurons * rank)
        projections = x @ self.q_weight
        grouped = projections.reshape(*batch_shape, self.num_neurons, self.rank)
        # y₂ᵏ = (fᵏ)ᵀ Λᵏ fᵏ per neuron.
        quadratic = (grouped * grouped * self.lambdas).sum(axis=-1)
        linear_response = x @ self.weight.T
        if self.bias is not None:
            linear_response = linear_response + self.bias
        response = linear_response + quadratic
        if not self.vectorized_output:
            return response
        return Tensor.cat([response, projections], axis=-1)

    # -- introspection --------------------------------------------------------

    def parameter_count(self, include_bias: bool = False) -> int:
        """Analytic parameter count; matches Eq. (9) summed over neurons."""
        count = self.num_neurons * proposed_parameter_count(self.in_features, self.rank)
        if include_bias and self.bias is not None:
            count += self.num_neurons
        return count

    def mac_count(self) -> int:
        """Analytic MAC count per example; matches Eq. (10) summed over neurons."""
        return self.num_neurons * proposed_mac_count(self.in_features, self.rank)

    def __repr__(self) -> str:
        return (f"EfficientQuadraticLinear(in={self.in_features}, neurons={self.num_neurons}, "
                f"rank={self.rank}, out={self.out_features}, "
                f"vectorized={self.vectorized_output})")

    @classmethod
    def for_output_features(cls, in_features: int, out_features: int, rank: int = 9,
                            **kwargs) -> "EfficientQuadraticLinear":
        """Build a layer that emits exactly ``out_features`` values.

        This is the drop-in replacement constructor used when swapping a
        :class:`repro.nn.Linear` of shape ``(in, out)`` for proposed neurons:
        ``ceil(out / (k+1))`` neurons are instantiated and the output trimmed.
        With ``vectorized_output=False`` one neuron per output is used instead.
        """
        if kwargs.get("vectorized_output", True):
            num_neurons = neurons_for_width(out_features, rank)
        else:
            num_neurons = out_features
        return cls(in_features, num_neurons, rank=rank, out_features=out_features, **kwargs)


class EfficientQuadraticConv2d(Module):
    """Convolutional layer whose filters are the proposed quadratic neurons.

    Every filter sees a receptive field of ``n = in_channels * k_h * k_w``
    inputs and emits ``rank + 1`` channels: the quadratic response
    ``y = wᵀx + b + (fᵏ)ᵀΛᵏfᵏ`` plus the ``rank`` intermediate projections
    ``fᵏ`` (Fig. 3).  ``out_channels`` may be used to trim the natural width
    ``num_filters * (rank + 1)`` down to an exact target so the layer is a
    drop-in replacement for a standard convolution.

    The forward pass dispatches the fused ``quadratic_conv2d`` op: a single
    im2col extraction and one matmul against the stacked filter bank
    ``[w; Qᵏ]`` replace the two full convolutions (and two backward col2im
    scatters) of the unfused composition, with bit-identical results.  Set
    ``use_fused = False`` to fall back to the composition.
    """

    use_fused = True

    def __init__(self, in_channels: int, num_filters: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, rank: int = 9,
                 vectorized_output: bool = True, bias: bool = True,
                 out_channels: int | None = None, lambda_init: float = 0.01,
                 q_init_gain: float = np.sqrt(2.0), rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        self.in_channels = in_channels
        self.num_filters = num_filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.rank = rank
        self.vectorized_output = vectorized_output
        self.q_init_gain = q_init_gain

        natural_channels = num_filters * (rank + 1) if vectorized_output else num_filters
        self.out_channels = natural_channels if out_channels is None else out_channels
        if self.out_channels > natural_channels:
            raise ValueError(
                f"{num_filters} filters with rank {rank} produce at most {natural_channels} "
                f"channels, cannot provide {self.out_channels}")

        fan_in = in_channels * kernel_size * kernel_size
        self.fan_in = fan_in
        # Linear part: one standard filter per neuron.
        self.weight = Parameter(
            init.kaiming_normal((num_filters, in_channels, kernel_size, kernel_size), rng))
        self.bias = Parameter(init.zeros((num_filters,))) if bias else None
        # Quadratic part: Qᵏ realised as `num_filters * rank` convolution filters;
        # each group of `rank` filters holds the orthonormal columns of one neuron's Qᵏ.
        # The orthonormal columns are scaled by a ReLU-friendly gain (√2 by
        # default) so that the projection channels fᵏ start with the same
        # activation variance as a Kaiming-initialized convolution; without the
        # gain the effective signal through deep stacks of quadratic layers is
        # attenuated and training slows down noticeably.
        q_columns = np.stack(
            [init.orthogonal((fan_in, rank), rng, gain=q_init_gain).T.reshape(
                rank, in_channels, kernel_size, kernel_size)
             for _ in range(num_filters)], axis=0)
        self.q_weight = Parameter(q_columns.reshape(num_filters * rank, in_channels,
                                                    kernel_size, kernel_size))
        self.lambdas = Parameter(init.normal((num_filters, rank), rng, std=lambda_init),
                                 tag="quadratic")

    def forward(self, x: Tensor) -> Tensor:
        if self.use_fused:
            output = quadratic_conv2d(
                x, self.weight, self.q_weight, self.lambdas, self.bias,
                stride=self.stride, padding=self.padding,
                rank=self.rank, vectorized=self.vectorized_output)
        else:
            output = self._forward_unfused(x)
        if output.shape[1] != self.out_channels:
            output = output[:, :self.out_channels]
        return output

    def _forward_unfused(self, x: Tensor) -> Tensor:
        """Reference composition of primitives (used by tests and benchmarks)."""
        batch = x.shape[0]
        # fᵏ maps: (N, num_filters * rank, H', W')
        projections = conv2d(x, self.q_weight, None, stride=self.stride, padding=self.padding)
        height, width = projections.shape[2], projections.shape[3]
        grouped = projections.reshape(batch, self.num_filters, self.rank, height, width)
        lambdas = self.lambdas.reshape(1, self.num_filters, self.rank, 1, 1)
        quadratic = (grouped * grouped * lambdas).sum(axis=2)
        linear_response = conv2d(x, self.weight, self.bias, stride=self.stride,
                                 padding=self.padding)
        response = linear_response + quadratic
        if not self.vectorized_output:
            return response
        return Tensor.cat([response, projections], axis=1)

    # -- introspection --------------------------------------------------------

    def parameter_count(self, include_bias: bool = False) -> int:
        """Analytic parameter count (Eq. (9) per filter)."""
        count = self.num_filters * proposed_parameter_count(self.fan_in, self.rank)
        if include_bias and self.bias is not None:
            count += self.num_filters
        return count

    def mac_count_per_position(self) -> int:
        """Analytic MACs per output spatial position (Eq. (10) per filter)."""
        return self.num_filters * proposed_mac_count(self.fan_in, self.rank)

    def __repr__(self) -> str:
        return (f"EfficientQuadraticConv2d(in={self.in_channels}, filters={self.num_filters}, "
                f"k={self.kernel_size}, rank={self.rank}, out_channels={self.out_channels}, "
                f"stride={self.stride}, padding={self.padding})")

    @classmethod
    def for_output_channels(cls, in_channels: int, out_channels: int, kernel_size: int,
                            rank: int = 9, **kwargs) -> "EfficientQuadraticConv2d":
        """Drop-in replacement for ``Conv2d(in_channels, out_channels, ...)``.

        Instantiates ``ceil(out_channels / (rank+1))`` quadratic filters and
        trims the concatenated output to exactly ``out_channels`` channels.
        With ``vectorized_output=False`` every output channel needs its own
        neuron, so ``out_channels`` filters are instantiated instead.
        """
        if kwargs.get("vectorized_output", True):
            num_filters = neurons_for_width(out_channels, rank)
        else:
            num_filters = out_channels
        return cls(in_channels, num_filters, kernel_size, rank=rank,
                   out_channels=out_channels, **kwargs)
