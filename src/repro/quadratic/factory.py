"""Neuron registry: build convolutional / dense layers of any neuron type by name.

The model zoo (:mod:`repro.models`) is written against this factory so that a
single ``neuron_type`` string switches an entire ResNet or Transformer between
linear neurons, the proposed quadratic neuron, and every prior-work baseline.
This mirrors how the paper swaps neuron structures while keeping the
architecture fixed.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from .baselines import (
    FactorizedQuadraticConv2d,
    FactorizedQuadraticLinear,
    GeneralQuadraticConv2d,
    GeneralQuadraticLinear,
    PureQuadraticConv2d,
    Quad1Conv2d,
    Quad1Linear,
    Quad2Conv2d,
    Quad2Linear,
    QuadraticResidualConv2d,
    QuadraticResidualLinear,
)
from .efficient import EfficientQuadraticConv2d, EfficientQuadraticLinear
from .kervolution import KervolutionConv2d, KervolutionLinear

__all__ = ["CONV_NEURON_TYPES", "DENSE_NEURON_TYPES", "make_conv", "make_dense",
           "neuron_conv2d", "neuron_linear"]


def make_conv(neuron_type: str, in_channels: int, out_channels: int, kernel_size: int,
              stride: int = 1, padding: int = 0, rank: int = 9, bias: bool = True,
              rng: np.random.Generator | None = None, **kwargs) -> Module:
    """Build a convolutional layer of ``neuron_type`` with the requested geometry.

    Regardless of the neuron type, the returned layer maps ``in_channels`` to
    exactly ``out_channels`` channels so it can be dropped into any CNN.  The
    ``rank`` argument is used by the proposed and factorized neurons and
    ignored by the rest.
    """
    if neuron_type not in CONV_NEURON_TYPES:
        raise KeyError(f"unknown conv neuron type '{neuron_type}'; "
                       f"known types: {sorted(CONV_NEURON_TYPES)}")
    return CONV_NEURON_TYPES[neuron_type](
        in_channels=in_channels, out_channels=out_channels, kernel_size=kernel_size,
        stride=stride, padding=padding, rank=rank, bias=bias, rng=rng, **kwargs)


def make_dense(neuron_type: str, in_features: int, out_features: int, rank: int = 9,
               bias: bool = True, rng: np.random.Generator | None = None, **kwargs) -> Module:
    """Build a dense layer of ``neuron_type`` mapping ``in_features`` to ``out_features``."""
    if neuron_type not in DENSE_NEURON_TYPES:
        raise KeyError(f"unknown dense neuron type '{neuron_type}'; "
                       f"known types: {sorted(DENSE_NEURON_TYPES)}")
    return DENSE_NEURON_TYPES[neuron_type](
        in_features=in_features, out_features=out_features, rank=rank, bias=bias, rng=rng,
        **kwargs)


# -- conv builders ------------------------------------------------------------

def _conv_linear(in_channels, out_channels, kernel_size, stride, padding, rank, bias, rng,
                 **kwargs):
    return Conv2d(in_channels, out_channels, kernel_size, stride=stride, padding=padding,
                  bias=bias, rng=rng)


def _conv_proposed(in_channels, out_channels, kernel_size, stride, padding, rank, bias, rng,
                   **kwargs):
    return EfficientQuadraticConv2d.for_output_channels(
        in_channels, out_channels, kernel_size, rank=rank, stride=stride, padding=padding,
        bias=bias, rng=rng, **kwargs)


def _conv_scalar_output(layer_cls):
    def build(in_channels, out_channels, kernel_size, stride, padding, rank, bias, rng,
              **kwargs):
        return layer_cls(in_channels, out_channels, kernel_size, stride=stride,
                         padding=padding, bias=bias, rng=rng, **kwargs)
    return build


def _conv_factorized(in_channels, out_channels, kernel_size, stride, padding, rank, bias, rng,
                     **kwargs):
    return FactorizedQuadraticConv2d(in_channels, out_channels, kernel_size, stride=stride,
                                     padding=padding, rank=rank, bias=bias, rng=rng, **kwargs)


def _conv_kervolution(in_channels, out_channels, kernel_size, stride, padding, rank, bias, rng,
                      **kwargs):
    return KervolutionConv2d(in_channels, out_channels, kernel_size, stride=stride,
                             padding=padding, bias=bias, rng=rng, **kwargs)


CONV_NEURON_TYPES = {
    "linear": _conv_linear,
    "proposed": _conv_proposed,
    "general": _conv_scalar_output(GeneralQuadraticConv2d),
    "pure": _conv_scalar_output(PureQuadraticConv2d),
    "quad1": _conv_scalar_output(Quad1Conv2d),
    "quad2": _conv_scalar_output(Quad2Conv2d),
    "quad_residual": _conv_scalar_output(QuadraticResidualConv2d),
    "factorized": _conv_factorized,
    "kervolution": _conv_kervolution,
}


# -- dense builders ------------------------------------------------------------

def _dense_linear(in_features, out_features, rank, bias, rng, **kwargs):
    return Linear(in_features, out_features, bias=bias, rng=rng)


def _dense_proposed(in_features, out_features, rank, bias, rng, **kwargs):
    return EfficientQuadraticLinear.for_output_features(
        in_features, out_features, rank=rank, bias=bias, rng=rng, **kwargs)


def _dense_simple(layer_cls):
    def build(in_features, out_features, rank, bias, rng, **kwargs):
        return layer_cls(in_features, out_features, bias=bias, rng=rng, **kwargs)
    return build


def _dense_factorized(in_features, out_features, rank, bias, rng, **kwargs):
    return FactorizedQuadraticLinear(in_features, out_features, rank=rank, bias=bias, rng=rng,
                                     **kwargs)


def _dense_kervolution(in_features, out_features, rank, bias, rng, **kwargs):
    return KervolutionLinear(in_features, out_features, bias=bias, rng=rng, **kwargs)


DENSE_NEURON_TYPES = {
    "linear": _dense_linear,
    "proposed": _dense_proposed,
    "general": _dense_simple(GeneralQuadraticLinear),
    "quad1": _dense_simple(Quad1Linear),
    "quad2": _dense_simple(Quad2Linear),
    "quad_residual": _dense_simple(QuadraticResidualLinear),
    "factorized": _dense_factorized,
    "kervolution": _dense_kervolution,
}


# -- servable single-layer builders -------------------------------------------
#
# Seed-parameterized wrappers around make_conv / make_dense registered in the
# model-spec registry, so a *single* neuron layer of any type can be saved as
# a self-describing bundle and reconstructed by name — useful for layer-level
# response analyses and micro-serving without wrapping the layer in a model.

# Imported below the neuron tables (not at module top) because the model zoo
# imports this factory: repro.models.registry itself has no dependency on the
# zoo, so this late import closes the cycle safely.
from ..models.registry import register_model  # noqa: E402


@register_model("neuron_conv2d")
def neuron_conv2d(neuron_type: str = "proposed", in_channels: int = 3,
                  out_channels: int = 8, kernel_size: int = 3, stride: int = 1,
                  padding: int = 0, rank: int = 9, bias: bool = True, seed: int = 0,
                  **kwargs) -> Module:
    """Servable convolutional layer of any registered neuron type."""
    return make_conv(neuron_type, in_channels, out_channels, kernel_size,
                     stride=stride, padding=padding, rank=rank, bias=bias,
                     rng=np.random.default_rng(seed), **kwargs)


@register_model("neuron_linear")
def neuron_linear(neuron_type: str = "proposed", in_features: int = 16,
                  out_features: int = 8, rank: int = 9, bias: bool = True,
                  seed: int = 0, **kwargs) -> Module:
    """Servable dense layer of any registered neuron type."""
    return make_dense(neuron_type, in_features, out_features, rank=rank, bias=bias,
                      rng=np.random.default_rng(seed), **kwargs)
