"""Quadratic-matrix decomposition utilities (Sec. III-A of the paper).

The paper's construction of the efficient quadratic neuron rests on three
linear-algebra facts, all implemented and tested here:

1. **Lemma 1 (symmetrization)** — for any real matrix ``M`` the quadratic form
   satisfies ``xᵀMx = xᵀM′x`` with ``M′ = (M + Mᵀ)/2`` symmetric, so the
   quadratic part of a neuron never needs an asymmetric matrix.
2. **Spectral decomposition** — a real symmetric matrix factors as
   ``M = QΛQᵀ`` with orthonormal ``Q`` and real diagonal ``Λ``.
3. **Eckart–Young–Mirsky** — keeping the ``k`` eigenpairs with the largest
   absolute eigenvalues gives the best rank-``k`` approximation of ``M`` in
   Frobenius norm, which is exactly the paper's top-``k`` selection (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "symmetrize",
    "is_symmetric",
    "eigendecompose",
    "top_k_truncation",
    "reconstruct",
    "frobenius_error",
    "best_rank_k_error",
    "QuadraticDecomposition",
]


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric matrix ``(M + Mᵀ)/2`` of Lemma 1."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    return 0.5 * (matrix + matrix.T)


def is_symmetric(matrix: np.ndarray, tolerance: float = 1e-10) -> bool:
    """Check symmetry up to ``tolerance``."""
    matrix = np.asarray(matrix)
    return bool(np.allclose(matrix, matrix.T, atol=tolerance))


def eigendecompose(matrix: np.ndarray, sort_by_magnitude: bool = True
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecompose a (possibly asymmetric) quadratic-form matrix.

    The matrix is first symmetrized (Lemma 1), then decomposed with
    ``numpy.linalg.eigh``.  Eigenpairs are returned sorted by decreasing
    ``|λ|`` (the ordering used by the paper's top-``k`` selection) unless
    ``sort_by_magnitude`` is ``False``, in which case the natural ascending
    order of ``eigh`` is kept.

    Returns
    -------
    (eigenvalues, eigenvectors):
        ``eigenvalues`` has shape ``(n,)``; ``eigenvectors`` has shape
        ``(n, n)`` with eigenvector ``i`` in column ``i``.
    """
    symmetric = symmetrize(matrix)
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    if sort_by_magnitude:
        order = np.argsort(-np.abs(eigenvalues), kind="stable")
        eigenvalues = eigenvalues[order]
        eigenvectors = eigenvectors[:, order]
    return eigenvalues, eigenvectors


def top_k_truncation(eigenvalues: np.ndarray, eigenvectors: np.ndarray, k: int
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Keep the ``k`` leading eigenpairs (Fig. 2 of the paper).

    Returns ``(Λᵏ, Qᵏ)`` where ``Λᵏ`` has shape ``(k,)`` and ``Qᵏ`` has shape
    ``(n, k)``.
    """
    n = eigenvalues.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"rank k must be in [1, {n}], got {k}")
    return eigenvalues[:k].copy(), eigenvectors[:, :k].copy()


def reconstruct(lambda_k: np.ndarray, q_k: np.ndarray) -> np.ndarray:
    """Rebuild ``Mᵏ = QᵏΛᵏ(Qᵏ)ᵀ`` from a truncated decomposition."""
    return (q_k * lambda_k) @ q_k.T


def frobenius_error(matrix: np.ndarray, approximation: np.ndarray) -> float:
    """Frobenius-norm approximation error ``‖M − M̂‖_F``."""
    return float(np.linalg.norm(np.asarray(matrix) - np.asarray(approximation), ord="fro"))


def best_rank_k_error(matrix: np.ndarray, k: int) -> float:
    """Eckart–Young lower bound: the smallest possible rank-``k`` Frobenius error.

    For a symmetric matrix this equals ``sqrt(Σ_{i>k} λ_i²)`` over the
    eigenvalues discarded by magnitude.
    """
    eigenvalues, _ = eigendecompose(matrix)
    discarded = eigenvalues[k:]
    return float(np.sqrt(np.sum(discarded ** 2)))


@dataclass
class QuadraticDecomposition:
    """A rank-``k`` decomposition ``M ≈ QᵏΛᵏ(Qᵏ)ᵀ`` of a quadratic-form matrix.

    Attributes
    ----------
    q_k:
        Orthonormal factor of shape ``(n, k)`` (columns are eigenvectors).
    lambda_k:
        Retained eigenvalues of shape ``(k,)``.
    residual_error:
        Frobenius error of the approximation against the symmetrized original.
    """

    q_k: np.ndarray
    lambda_k: np.ndarray
    residual_error: float

    @property
    def rank(self) -> int:
        return int(self.lambda_k.shape[0])

    @property
    def input_dim(self) -> int:
        return int(self.q_k.shape[0])

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, k: int) -> "QuadraticDecomposition":
        """Decompose ``matrix`` and keep the top-``k`` eigenpairs by magnitude."""
        symmetric = symmetrize(matrix)
        eigenvalues, eigenvectors = eigendecompose(symmetric)
        lambda_k, q_k = top_k_truncation(eigenvalues, eigenvectors, k)
        error = frobenius_error(symmetric, reconstruct(lambda_k, q_k))
        return cls(q_k=q_k, lambda_k=lambda_k, residual_error=error)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the approximated quadratic form ``xᵀQᵏΛᵏ(Qᵏ)ᵀx``.

        Accepts a single vector ``(n,)`` or a batch ``(batch, n)``; returns a
        scalar or a ``(batch,)`` vector of quadratic responses.
        """
        x = np.asarray(x, dtype=np.float64)
        projections = x @ self.q_k                       # (..., k)  == fᵏ
        return np.sum(self.lambda_k * projections ** 2, axis=-1)

    def intermediate_features(self, x: np.ndarray) -> np.ndarray:
        """The paper's ``fᵏ = (Qᵏ)ᵀx`` — reused as extra neuron outputs."""
        return np.asarray(x, dtype=np.float64) @ self.q_k
