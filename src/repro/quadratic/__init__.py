"""Quadratic neurons: the paper's efficient neuron, prior-work baselines and cost models."""

from .decomposition import (
    QuadraticDecomposition,
    symmetrize,
    is_symmetric,
    eigendecompose,
    top_k_truncation,
    reconstruct,
    frobenius_error,
    best_rank_k_error,
)
from .complexity import (
    NeuronComplexity,
    NEURON_FORMULAS,
    neuron_complexity,
    table_i_rows,
    proposed_parameter_count,
    proposed_mac_count,
)
from .efficient import EfficientQuadraticLinear, EfficientQuadraticConv2d, neurons_for_width
from .baselines import (
    GeneralQuadraticLinear,
    GeneralQuadraticConv2d,
    PureQuadraticConv2d,
    FactorizedQuadraticLinear,
    FactorizedQuadraticConv2d,
    Quad1Linear,
    Quad1Conv2d,
    Quad2Linear,
    Quad2Conv2d,
    QuadraticResidualLinear,
    QuadraticResidualConv2d,
)
from .kervolution import KervolutionConv2d, KervolutionLinear
from .factory import CONV_NEURON_TYPES, DENSE_NEURON_TYPES, make_conv, make_dense

__all__ = [
    "QuadraticDecomposition",
    "symmetrize",
    "is_symmetric",
    "eigendecompose",
    "top_k_truncation",
    "reconstruct",
    "frobenius_error",
    "best_rank_k_error",
    "NeuronComplexity",
    "NEURON_FORMULAS",
    "neuron_complexity",
    "table_i_rows",
    "proposed_parameter_count",
    "proposed_mac_count",
    "EfficientQuadraticLinear",
    "EfficientQuadraticConv2d",
    "neurons_for_width",
    "GeneralQuadraticLinear",
    "GeneralQuadraticConv2d",
    "PureQuadraticConv2d",
    "FactorizedQuadraticLinear",
    "FactorizedQuadraticConv2d",
    "Quad1Linear",
    "Quad1Conv2d",
    "Quad2Linear",
    "Quad2Conv2d",
    "QuadraticResidualLinear",
    "QuadraticResidualConv2d",
    "KervolutionConv2d",
    "KervolutionLinear",
    "CONV_NEURON_TYPES",
    "DENSE_NEURON_TYPES",
    "make_conv",
    "make_dense",
]
