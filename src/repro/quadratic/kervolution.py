"""Kervolutional neurons (KNN, Wang et al. [14]) used in the stability study (Fig. 6).

A polynomial kervolution replaces the inner product of a convolution with a
polynomial kernel evaluation,

.. math::

    \\kappa(x, w) = (xᵀw + c_p)^{d_p},

which injects non-linearity *without any additional parameters*.  The paper's
Fig. 6 shows that stacking these neurons in many layers destabilizes training
(activations and gradients blow up because the polynomial amplifies large
responses multiplicatively layer after layer), whereas the proposed quadratic
neuron trains stably in every layer.  This module reproduces the same
qualitative behaviour.
"""

from __future__ import annotations

import numpy as np

from ..nn import init
from ..nn.module import Module, Parameter
from ..tensor import Tensor, conv2d
from ..tensor.fused import linear as fused_linear

__all__ = ["KervolutionConv2d", "KervolutionLinear"]


class KervolutionConv2d(Module):
    """Polynomial kervolution layer: ``y = (conv(x, w) + c_p)^{d_p}``.

    Parameters
    ----------
    degree:
        Polynomial degree ``d_p``; the original work mostly uses 2 or 3.
    offset:
        Additive constant ``c_p`` of the polynomial kernel.
    learnable_offset:
        When ``True``, ``c_p`` is a trainable scalar (the "learnable kernel"
        variant of the original paper).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, degree: int = 2, offset: float = 0.5,
                 learnable_offset: bool = False, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if degree < 1:
            raise ValueError(f"polynomial degree must be >= 1, got {degree}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.degree = degree
        self.learnable_offset = learnable_offset
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        if learnable_offset:
            self.offset = Parameter(np.asarray([offset], dtype=np.float32))
        else:
            self._offset_value = float(offset)

    def forward(self, x: Tensor) -> Tensor:
        response = conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)
        if self.learnable_offset:
            shifted = response + self.offset
        else:
            shifted = response + self._offset_value
        return shifted ** self.degree

    def __repr__(self) -> str:
        return (f"KervolutionConv2d(in={self.in_channels}, out={self.out_channels}, "
                f"k={self.kernel_size}, degree={self.degree})")


class KervolutionLinear(Module):
    """Dense polynomial kervolution: ``y = (wᵀx + b + c_p)^{d_p}``."""

    def __init__(self, in_features: int, out_features: int, degree: int = 2,
                 offset: float = 0.5, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if degree < 1:
            raise ValueError(f"polynomial degree must be >= 1, got {degree}")
        self.in_features = in_features
        self.out_features = out_features
        self.degree = degree
        self.offset = float(offset)
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        response = fused_linear(x, self.weight, self.bias)
        return (response + self.offset) ** self.degree
