"""Analytical parameter / computation cost model (Table I, Eq. (9) and Eq. (10)).

For every neuron type compared in the paper this module returns the exact
number of trainable parameters and multiply-accumulate operations (MACs) as a
function of the neuron fan-in ``n`` and, where applicable, the decomposition
rank ``k``.  The counts deliberately ignore the bias term, matching the
convention stated in Sec. II-B and Sec. III-C of the paper.

The same counts are reused by :mod:`repro.metrics.profiler` to compute whole-
model storage and FLOP budgets for the Fig. 4 / Fig. 5 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "NeuronComplexity",
    "NEURON_FORMULAS",
    "neuron_complexity",
    "table_i_rows",
    "proposed_parameter_count",
    "proposed_mac_count",
]


@dataclass(frozen=True)
class NeuronComplexity:
    """Cost of a single neuron.

    Attributes
    ----------
    name:
        Registry key of the neuron type (e.g. ``"proposed"``, ``"quad1"``).
    formula:
        Human-readable formulation as printed in Table I.
    parameters:
        Number of trainable parameters (bias excluded).
    macs:
        Number of multiply-accumulate operations per forward evaluation.
    outputs_per_neuron:
        How many output values one neuron produces.  Every prior design emits
        a single scalar; the proposed neuron emits ``k + 1`` values because the
        intermediate features ``fᵏ`` are reused as outputs (Sec. III-B).
    """

    name: str
    formula: str
    parameters: int
    macs: int
    outputs_per_neuron: int = 1

    @property
    def parameters_per_output(self) -> float:
        """Storage cost averaged over the neuron's outputs (Sec. III-C)."""
        return self.parameters / self.outputs_per_neuron

    @property
    def macs_per_output(self) -> float:
        """Computation cost averaged over the neuron's outputs (Sec. III-C)."""
        return self.macs / self.outputs_per_neuron


def proposed_parameter_count(n: int, k: int) -> int:
    """Eq. (9): ``(k + 1) n + k`` parameters (``Qᵏ`` + ``w`` + diagonal ``Λᵏ``)."""
    return (k + 1) * n + k


def proposed_mac_count(n: int, k: int) -> int:
    """Eq. (10): ``(k + 1) n + 2k`` MACs (linear part + ``(Qᵏ)ᵀx`` + ``(fᵏ)ᵀΛᵏfᵏ``)."""
    return (k + 1) * n + 2 * k


def _linear(n: int, k: int) -> NeuronComplexity:
    return NeuronComplexity("linear", "wᵀx", parameters=n, macs=n)


def _general_quadratic(n: int, k: int) -> NeuronComplexity:
    # [17] Zoumpourlis et al.: full matrix plus linear term.
    return NeuronComplexity("general", "xᵀMx + wᵀx", parameters=n * n + n, macs=n * n + 2 * n)


def _pure_quadratic(n: int, k: int) -> NeuronComplexity:
    # [16] Mantini & Shah: full matrix, no linear term.
    return NeuronComplexity("pure", "xᵀMx", parameters=n * n, macs=n * n + n)


def _quadratic_residual(n: int, k: int) -> NeuronComplexity:
    # [23] Bu & Karpatne: two linear forms, one reused as the residual path.
    return NeuronComplexity("quad_residual", "(w₁ᵀx)(w₂ᵀx) + w₁ᵀx", parameters=2 * n, macs=2 * n)


def _factorized(n: int, k: int) -> NeuronComplexity:
    # [18] Jiang et al.: rank-k factorization with two independent factors.
    return NeuronComplexity("factorized", "xᵀQ₁ᵏ(Q₂ᵏ)ᵀx + wᵀx",
                            parameters=2 * k * n + n, macs=2 * k * n + k)


def _quad1(n: int, k: int) -> NeuronComplexity:
    # [19] Fan et al.: two linear forms multiplied plus a squared-input term.
    return NeuronComplexity("quad1", "(w₁ᵀx)(w₂ᵀx) + w₃ᵀ(x⊙²)", parameters=3 * n, macs=4 * n)


def _quad2(n: int, k: int) -> NeuronComplexity:
    # [21] Xu et al. (QuadraLib): two linear forms multiplied plus a linear term.
    return NeuronComplexity("quad2", "(w₁ᵀx)(w₂ᵀx) + w₃ᵀx", parameters=3 * n, macs=3 * n)


def _proposed(n: int, k: int) -> NeuronComplexity:
    return NeuronComplexity(
        "proposed", "{xᵀQᵏΛᵏ(Qᵏ)ᵀx + wᵀx, xᵀQᵏ}",
        parameters=proposed_parameter_count(n, k),
        macs=proposed_mac_count(n, k),
        outputs_per_neuron=k + 1)


NEURON_FORMULAS = {
    "linear": _linear,
    "general": _general_quadratic,
    "pure": _pure_quadratic,
    "quad_residual": _quadratic_residual,
    "factorized": _factorized,
    "quad1": _quad1,
    "quad2": _quad2,
    "proposed": _proposed,
}


def neuron_complexity(neuron_type: str, n: int, k: int = 1) -> NeuronComplexity:
    """Return the cost model of ``neuron_type`` for fan-in ``n`` and rank ``k``.

    ``k`` is ignored by neuron types without a rank hyper-parameter.
    """
    if neuron_type not in NEURON_FORMULAS:
        raise KeyError(f"unknown neuron type '{neuron_type}'; "
                       f"known types: {sorted(NEURON_FORMULAS)}")
    if n <= 0:
        raise ValueError(f"fan-in n must be positive, got {n}")
    if k <= 0:
        raise ValueError(f"rank k must be positive, got {k}")
    return NEURON_FORMULAS[neuron_type](n, k)


def table_i_rows(n: int, k: int) -> list[dict]:
    """Regenerate Table I for a concrete fan-in ``n`` and rank ``k``.

    Each row reports the absolute costs and the per-output averaged costs so
    the advantage of the vectorized output (Sec. III-C) is visible directly.
    """
    order = ["general", "pure", "quad_residual", "factorized", "quad1", "quad2",
             "proposed", "linear"]
    rows = []
    for name in order:
        cost = neuron_complexity(name, n, k)
        rows.append({
            "neuron": name,
            "formula": cost.formula,
            "parameters": cost.parameters,
            "macs": cost.macs,
            "outputs_per_neuron": cost.outputs_per_neuron,
            "parameters_per_output": cost.parameters_per_output,
            "macs_per_output": cost.macs_per_output,
        })
    return rows
