"""Prior-work quadratic neurons used as comparison baselines (Table I).

Each baseline is implemented from its published formulation, in both a dense
(`*Linear`) and a convolutional (`*Conv2d`) flavour, inside the same autograd
framework as the proposed neuron so that the Fig. 5 comparison is apples to
apples:

* ``GeneralQuadratic*``   — Zoumpourlis et al. [17]: ``xᵀMx + wᵀx + b``.
* ``PureQuadratic*``      — Mantini & Shah   [16]: ``xᵀMx``.
* ``FactorizedQuadratic*``— Jiang et al.     [18]: ``xᵀQ₁ᵏ(Q₂ᵏ)ᵀx + wᵀx``.
* ``Quad1*``              — Fan et al.       [19]: ``(w₁ᵀx)(w₂ᵀx) + w₃ᵀ(x⊙²)``.
* ``Quad2*``              — Xu et al. / QuadraLib [21]: ``(w₁ᵀx)(w₂ᵀx) + w₃ᵀx``.
* ``QuadraticResidual*``  — Bu & Karpatne    [23]: ``(w₁ᵀx)(w₂ᵀx) + w₁ᵀx``.

All of these emit a single value per neuron — unlike the proposed neuron they
do not reuse intermediate features as outputs.
"""

from __future__ import annotations

import numpy as np

from ..nn import init
from ..nn.module import Module, Parameter
from ..tensor import Tensor, conv2d, unfold
from ..tensor.fused import quadratic_form

__all__ = [
    "GeneralQuadraticLinear",
    "GeneralQuadraticConv2d",
    "PureQuadraticConv2d",
    "FactorizedQuadraticLinear",
    "FactorizedQuadraticConv2d",
    "Quad1Linear",
    "Quad1Conv2d",
    "Quad2Linear",
    "Quad2Conv2d",
    "QuadraticResidualLinear",
    "QuadraticResidualConv2d",
]


# ---------------------------------------------------------------------------
# Dense baselines
# ---------------------------------------------------------------------------

class GeneralQuadraticLinear(Module):
    """Dense layer of general quadratic neurons [17]: ``y = xᵀMx + wᵀx + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 quadratic_init: float = 0.01, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self.quadratic = Parameter(
            init.normal((out_features, in_features, in_features), rng, std=quadratic_init),
            tag="quadratic")

    def forward(self, x: Tensor) -> Tensor:
        linear = x @ self.weight.T
        if self.bias is not None:
            linear = linear + self.bias
        # One batched contraction over all output neurons instead of a
        # per-output Python loop through the graph.
        return linear + quadratic_form(x, self.quadratic)


class FactorizedQuadraticLinear(Module):
    """Dense rank-k factorized quadratic neurons [18]: ``xᵀQ₁(Q₂)ᵀx + wᵀx``."""

    def __init__(self, in_features: int, out_features: int, rank: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.rank = rank
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self.factor_a = Parameter(init.normal((in_features, out_features * rank), rng, std=scale))
        self.factor_b = Parameter(init.normal((in_features, out_features * rank), rng, std=scale))

    def forward(self, x: Tensor) -> Tensor:
        batch_shape = x.shape[:-1]
        left = (x @ self.factor_a).reshape(*batch_shape, self.out_features, self.rank)
        right = (x @ self.factor_b).reshape(*batch_shape, self.out_features, self.rank)
        quadratic = (left * right).sum(axis=-1)
        linear = x @ self.weight.T
        if self.bias is not None:
            linear = linear + self.bias
        return linear + quadratic


class Quad1Linear(Module):
    """Dense Quad-1 neurons [19]: ``(w₁ᵀx)(w₂ᵀx) + w₃ᵀ(x⊙²) + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight_a = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.weight_b = Parameter(init.normal((out_features, in_features), rng,
                                              std=1.0 / np.sqrt(in_features)))
        self.weight_square = Parameter(init.normal((out_features, in_features), rng,
                                                   std=1.0 / np.sqrt(in_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        product = (x @ self.weight_a.T) * (x @ self.weight_b.T)
        squared = (x * x) @ self.weight_square.T
        out = product + squared
        if self.bias is not None:
            out = out + self.bias
        return out


class Quad2Linear(Module):
    """Dense Quad-2 / QuadraLib neurons [21]: ``(w₁ᵀx)(w₂ᵀx) + w₃ᵀx + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight_a = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.weight_b = Parameter(init.normal((out_features, in_features), rng,
                                              std=1.0 / np.sqrt(in_features)))
        self.weight_linear = Parameter(init.kaiming_uniform((out_features, in_features), rng,
                                                            gain=1.0))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        product = (x @ self.weight_a.T) * (x @ self.weight_b.T)
        out = product + x @ self.weight_linear.T
        if self.bias is not None:
            out = out + self.bias
        return out


class QuadraticResidualLinear(Module):
    """Dense quadratic-residual neurons [23]: ``(w₁ᵀx)(w₂ᵀx) + w₁ᵀx + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight_a = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.weight_b = Parameter(init.normal((out_features, in_features), rng,
                                              std=1.0 / np.sqrt(in_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        first = x @ self.weight_a.T
        out = first * (x @ self.weight_b.T) + first
        if self.bias is not None:
            out = out + self.bias
        return out


# ---------------------------------------------------------------------------
# Convolutional baselines
# ---------------------------------------------------------------------------

class _TripleConvBase(Module):
    """Shared machinery for baselines built from two or three standard convolutions."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 num_banks: int = 3, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight_a = Parameter(init.kaiming_normal(shape, rng))
        self.weight_b = Parameter(init.normal(shape, rng, std=0.5 / np.sqrt(
            in_channels * kernel_size * kernel_size)))
        if num_banks >= 3:
            self.weight_c = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def _conv(self, x: Tensor, weight: Parameter, with_bias: bool = False) -> Tensor:
        bias = self.bias if (with_bias and self.bias is not None) else None
        return conv2d(x, weight, bias, stride=self.stride, padding=self.padding)


class Quad2Conv2d(_TripleConvBase):
    """Convolutional Quad-2 / QuadraLib filter [21]: ``conv_a(x)·conv_b(x) + conv_c(x)``."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, num_banks=3, **kwargs)

    def forward(self, x: Tensor) -> Tensor:
        return self._conv(x, self.weight_a) * self._conv(x, self.weight_b) + \
            self._conv(x, self.weight_c, with_bias=True)


class Quad1Conv2d(_TripleConvBase):
    """Convolutional Quad-1 filter [19]: ``conv_a(x)·conv_b(x) + conv_c(x⊙²)``."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, num_banks=3, **kwargs)

    def forward(self, x: Tensor) -> Tensor:
        return self._conv(x, self.weight_a) * self._conv(x, self.weight_b) + \
            self._conv(x * x, self.weight_c, with_bias=True)


class QuadraticResidualConv2d(_TripleConvBase):
    """Convolutional quadratic-residual filter [23]: ``conv_a(x)·conv_b(x) + conv_a(x)``."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, num_banks=2, **kwargs)

    def forward(self, x: Tensor) -> Tensor:
        first = self._conv(x, self.weight_a, with_bias=True)
        return first * self._conv(x, self.weight_b) + first


class FactorizedQuadraticConv2d(Module):
    """Convolutional rank-k factorized quadratic filter [18].

    ``y = Σ_r conv_{Q₁,r}(x) · conv_{Q₂,r}(x) + conv_w(x)`` — the two factor
    banks each hold ``out_channels * rank`` filters, so the cost grows linearly
    with the rank (this is the 2kn term of Table I the paper improves upon).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, rank: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.rank = rank
        fan_in = in_channels * kernel_size * kernel_size
        factor_shape = (out_channels * rank, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.factor_a = Parameter(init.normal(factor_shape, rng, std=1.0 / np.sqrt(fan_in)))
        self.factor_b = Parameter(init.normal(factor_shape, rng, std=1.0 / np.sqrt(fan_in)))

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        left = conv2d(x, self.factor_a, None, stride=self.stride, padding=self.padding)
        right = conv2d(x, self.factor_b, None, stride=self.stride, padding=self.padding)
        height, width = left.shape[2], left.shape[3]
        product = (left * right).reshape(batch, self.out_channels, self.rank, height, width)
        quadratic = product.sum(axis=2)
        linear = conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)
        return linear + quadratic


class GeneralQuadraticConv2d(Module):
    """Convolutional general quadratic filter [17]: full ``xᵀMx + wᵀx`` per patch.

    The receptive field of each output position is unfolded to a vector of
    ``n = C·K·K`` inputs and pushed through a dense ``n × n`` quadratic form per
    filter.  The quadratic parameter count is ``n²`` per filter, which is why
    the original work deploys these neurons only in the first layer.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 include_linear: bool = True, quadratic_init: float = 0.01,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.include_linear = include_linear
        fan_in = in_channels * kernel_size * kernel_size
        self.fan_in = fan_in
        if include_linear:
            self.weight = Parameter(
                init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng))
            self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        else:
            self.bias = None
        self.quadratic = Parameter(
            init.normal((out_channels, fan_in, fan_in), rng, std=quadratic_init),
            tag="quadratic")

    def forward(self, x: Tensor) -> Tensor:
        patches = unfold(x, self.kernel_size, self.stride, self.padding)  # (N, H', W', n)
        # (N, H', W', C_out) -> (N, C_out, H', W') in one batched contraction.
        quadratic = quadratic_form(patches, self.quadratic).transpose(0, 3, 1, 2)
        if not self.include_linear:
            return quadratic
        linear = conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)
        return linear + quadratic


class PureQuadraticConv2d(GeneralQuadraticConv2d):
    """Convolutional pure quadratic filter [16]: ``xᵀMx`` without a linear term."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, **kwargs):
        kwargs["include_linear"] = False
        super().__init__(in_channels, out_channels, kernel_size, **kwargs)
