"""Stdlib HTTP transport over a :class:`~repro.serve.router.ModelRouter`.

The transport is deliberately thin: handler threads parse JSON and pre/post-
process (pure functions, unlocked), then *submit* the forward to the target
model's serving engine and wait on a future.  All scheduling policy — direct
lock-and-forward vs cross-request dynamic batching — lives behind the
:class:`~repro.serve.engine.ServingEngine` boundary, so the same transport
serves either engine and any number of named models.

Versioned API
-------------
``GET /v1/models``
    Every mounted model (name, spec, parameter count, engine) and which one
    is the default.
``GET /v1/models/<name>``
    One model's description.
``POST /v1/models/<name>/predict``
    Body ``{"inputs": <nested array>, "top_k": <int, optional>,
    "normalize": <bool, optional>}``; response ``{"model": <name>,
    "predictions": [...], "count": N}`` with one top-k record per sample.
``GET /v1/stats``
    Per-model engine scheduling stats (requests, fused batches, queue depth).

Legacy shims (PR 4 surface, kept working unchanged)
---------------------------------------------------
``GET /healthz``
    Liveness + the *default* model's summary.
``POST /predict``
    Routes to the default model; same body and response shape as v1.

Status mapping: malformed payloads → 400, unknown paths/models → 404, full
request queue → 429 (backpressure), engine shut down → 503, request timeout
→ 504, anything unexpected → 500.  SIGINT/SIGTERM drain gracefully: the
server stops accepting, engines fail queued futures with a clear error, and
in-flight responses flush before the process exits.
"""

from __future__ import annotations

import json
import signal
import threading
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote

from .engine import EngineClosed, QueueFull
from .router import ModelRouter

__all__ = ["make_server", "serve", "PredictionHandler", "PredictionServer"]

#: Largest accepted request body (64 MiB) — a backstop against a single
#: request buffering unbounded memory, not a tuning knob.
MAX_REQUEST_BYTES = 64 * 1024 * 1024

_ENDPOINTS = ("GET /healthz, GET /v1/models, GET /v1/models/<name>, "
              "GET /v1/stats, POST /predict, POST /v1/models/<name>/predict")


class PredictionHandler(BaseHTTPRequestHandler):
    """Routes the v1 multi-model API (plus legacy shims) onto the router."""

    server_version = "repro-serve/2.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def _send_json(self, status: int, payload: dict,
                   headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)

    def _not_found(self, message: str | None = None) -> None:
        detail = message or f"unknown path {self.path!r}"
        self._send_json(404, {"error": f"{detail}; endpoints: {_ENDPOINTS}"})

    def _resolve_model(self, name: str | None):
        """Router lookup → (name, predictor), or None after replying 404."""
        try:
            predictor = self.server.router.get(name)
        except KeyError as error:
            self._not_found(str(error).strip('"'))
            return None
        return (name or self.server.router.default_name), predictor

    # -- endpoints -------------------------------------------------------------

    def do_GET(self):
        path = self.path.partition("?")[0].rstrip("/")
        if path in ("", "/healthz"):
            resolved = self._resolve_model(None)
            if resolved:
                self._send_json(200, {"status": "ok", "model_name": resolved[0],
                                      **resolved[1].describe()})
        elif path == "/v1/models":
            self._send_json(200, self.server.router.describe())
        elif path == "/v1/stats":
            self._send_json(200, {"models": self.server.router.stats()})
        elif path.startswith("/v1/models/"):
            resolved = self._resolve_model(unquote(path[len("/v1/models/"):]))
            if resolved:
                self._send_json(200, {"name": resolved[0], **resolved[1].describe()})
        else:
            self._not_found()

    def do_POST(self):
        # Read (and thereby drain) the declared body up front: replying while
        # unread body bytes sit on a keep-alive connection would make the
        # next request parse as garbage.  Oversized/undeclared bodies are the
        # one case we refuse to drain — close the connection instead.
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_REQUEST_BYTES:
            self.close_connection = True
            self._send_json(400, {"error": f"Content-Length {self.headers.get('Content-Length')!r} "
                                           f"is invalid or exceeds the "
                                           f"{MAX_REQUEST_BYTES}-byte limit"})
            return
        body = self.rfile.read(length) if length else b""

        path = self.path.partition("?")[0].rstrip("/")
        if path == "/predict":
            model_name = None  # legacy shim → default model
        elif path.startswith("/v1/models/") and path.endswith("/predict"):
            model_name = unquote(path[len("/v1/models/"):-len("/predict")])
        else:
            self._not_found()
            return
        resolved = self._resolve_model(model_name)
        if not resolved:
            return
        name, predictor = resolved

        try:
            if not body:
                raise ValueError("request body is empty")
            request = json.loads(body.decode("utf-8"))
            if not isinstance(request, dict) or "inputs" not in request:
                raise ValueError('request must be a JSON object with an "inputs" key')
            k = int(request.get("top_k", 1))
            normalize = bool(request.get("normalize", True))
        except (ValueError, json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_json(400, {"error": str(error)})
            return

        try:
            predictions = predictor.predict_topk(
                request["inputs"], k=k, normalize=normalize,
                timeout=self.server.request_timeout)
        except QueueFull as error:  # backpressure: tell the client to retry
            self._send_json(429, {"error": str(error)}, headers={"Retry-After": "1"})
            return
        except EngineClosed as error:  # draining for shutdown
            self._send_json(503, {"error": str(error)})
            return
        except (TimeoutError, FutureTimeout) as error:
            self._send_json(504, {"error": str(error)})
            return
        except ValueError as error:  # shape/validation problems are the client's
            self._send_json(400, {"error": str(error)})
            return
        except Exception as error:  # noqa: BLE001 — a serving loop must not die
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._send_json(200, {"model": name, "predictions": predictions,
                              "count": len(predictions)})


class PredictionServer(ThreadingHTTPServer):
    """Threading HTTP server owning one router and the request-timeout knob."""

    daemon_threads = True

    def __init__(self, address, router: ModelRouter, quiet: bool = False,
                 request_timeout: float | None = 30.0):
        super().__init__(address, PredictionHandler)
        self.router = router
        self.quiet = quiet
        self.request_timeout = request_timeout

    @property
    def predictor(self):
        """The default model's predictor (back-compat with the PR 4 server)."""
        return self.router.default


def make_server(models, host: str = "127.0.0.1", port: int = 8000,
                quiet: bool = False,
                request_timeout: float | None = 30.0) -> PredictionServer:
    """Build (but do not start) the HTTP server around one or many models.

    ``models`` is a :class:`ModelRouter`, a ``{name: Predictor}`` mapping, or
    — the PR 4 signature, still supported — a single ``Predictor`` (mounted
    as the default model).  ``port=0`` binds an ephemeral port (read it back
    from ``server.server_address``), which is what the tests use.
    """
    if isinstance(models, ModelRouter):
        router = models
    elif isinstance(models, dict):
        router = ModelRouter(models)
    else:  # a single predictor
        router = ModelRouter({"default": models})
    return PredictionServer((host, port), router, quiet=quiet,
                            request_timeout=request_timeout)


def _install_signal_handlers(server: PredictionServer):
    """SIGINT/SIGTERM → graceful ``server.shutdown()``; returns a restore fn.

    ``shutdown()`` must run off the serving thread, hence the helper thread.
    When not on the main thread (embedded/test use) signals cannot be
    installed; that's fine — the caller still drains via ``finally``.
    """
    def _handle(signum, frame):
        threading.Thread(target=server.shutdown, name="repro-serve-shutdown",
                         daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handle)
        except ValueError:  # not the main thread
            pass

    def restore():
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    return restore


def serve(bundle_path=None, host: str = "127.0.0.1", port: int = 8000,
          max_batch: int = 64, quiet: bool = False, models: dict | None = None,
          engine: str = "batched", max_wait_ms: float = 2.0,
          queue_size: int = 256, request_timeout: float | None = 30.0,
          default_model: str | None = None, ready=None,
          compile: bool = True, workers: int = 2) -> None:
    """Load bundles and serve them until interrupted (the CLI entry point).

    ``bundle_path`` (legacy single-model form) is mounted as ``default``;
    ``models`` maps additional names to bundle paths — or to dict specs
    (``{"path": ..., "engine": ..., "workers": ..., "max_batch": ...,
    "max_wait_ms": ..., "queue_size": ...}``) overriding the shared knobs
    per model, which is how one server mounts, say, a hot model on its own
    4-worker pool next to a long-tail model on a direct engine.  Each model
    gets its own session and serving engine (``engine="batched"`` by
    default; ``"direct"`` for inline lock-and-forward; ``"pool"`` for the
    multi-process pool with ``workers`` processes per model).
    ``compile=True`` (default) turns on trace-and-replay compilation per
    session; loading warms each model, which traces and compiles its
    steady-state plan before the first request.  SIGINT/SIGTERM shut down
    gracefully: the queue drains, queued futures fail with a clear error
    instead of hanging their clients, then the process exits.  ``ready``,
    if given, is called with the bound server before the serve loop starts
    (embedding/test hook).
    """
    from . import load

    specs: dict[str, object] = {}
    if bundle_path is not None:
        specs["default"] = bundle_path
    for name, spec in (models or {}).items():
        if name in specs:
            raise ValueError(
                f"model name {name!r} collides with the positional bundle "
                f"(mounted as 'default'); pick another --model name or drop "
                f"the positional argument")
        specs[name] = spec
    if not specs:
        raise ValueError("serve needs a bundle path or at least one "
                         "name=bundle model mapping")
    shared = {"max_batch": max_batch, "engine": engine, "workers": workers,
              "max_wait_ms": max_wait_ms, "queue_size": queue_size,
              "compile": compile}
    router = ModelRouter()
    engines = set()
    for name, spec in specs.items():
        options = dict(shared)
        if isinstance(spec, dict):
            path = spec.get("path")
            if path is None:
                raise ValueError(f"model spec for {name!r} needs a 'path' key")
            unknown = set(spec) - {"path", *shared}
            if unknown:
                raise ValueError(f"model spec for {name!r} has unknown "
                                 f"option(s) {sorted(unknown)}; valid: "
                                 f"{sorted(shared)}")
            options.update({key: value for key, value in spec.items()
                            if key != "path"})
        else:
            path = spec
        engines.add(options["engine"])
        router.add(name, load(path, **options))
    if default_model is not None:
        router.set_default(default_model)

    server = make_server(router, host=host, port=port, quiet=quiet,
                         request_timeout=request_timeout)
    restore_signals = _install_signal_handlers(server)
    bound_host, bound_port = server.server_address[:2]
    engine_label = "/".join(sorted(engines))
    print(f"serving {len(router)} model(s) [{', '.join(router.names())}; "
          f"default: {router.default_name}] with the {engine_label} engine on "
          f"http://{bound_host}:{bound_port}")
    if not quiet:
        print(f"endpoints: {_ENDPOINTS}")
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        restore_signals()
        print("draining: closing engines and failing queued requests...")
        router.close()
        server.server_close()
        print("serve shut down cleanly")
