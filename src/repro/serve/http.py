"""Minimal stdlib HTTP front end for a predictor.

``repro serve <bundle>`` builds a :class:`http.server.ThreadingHTTPServer`
around one shared :class:`~repro.serve.Predictor`.  Concurrency model: the
server spawns a thread per connection, JSON parsing and pre/post-processing
run unlocked (pure functions), and the single stateful stage — the model
forward — is serialized by the inference session's internal lock, so any
number of handler threads can safely share one warm session (and its buffer
caches).

Endpoints
---------
``GET /healthz``
    Liveness + model summary: spec name, parameter count, input shape,
    samples served.  Returns 200 as soon as the server can answer at all.
``POST /predict``
    Body ``{"inputs": <nested array>, "top_k": <int, optional>,
    "normalize": <bool, optional>}``.  ``inputs`` is one sample or a batch of
    raw (un-normalized) values; the response is ``{"predictions": [...],
    "count": N}`` with one top-k record per sample.  Malformed requests get a
    400 with an ``error`` message; unexpected failures a 500.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["make_server", "serve", "PredictionHandler"]

#: Largest accepted request body (64 MiB) — a backstop against a single
#: request buffering unbounded memory, not a tuning knob.
MAX_REQUEST_BYTES = 64 * 1024 * 1024


class PredictionHandler(BaseHTTPRequestHandler):
    """Routes ``/healthz`` and ``/predict`` onto the server's predictor."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)

    # -- endpoints -------------------------------------------------------------

    def do_GET(self):
        if self.path.rstrip("/") in ("", "/healthz"):
            self._send_json(200, {"status": "ok", **self.server.predictor.describe()})
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}; "
                                           f"endpoints: GET /healthz, POST /predict"})

    def do_POST(self):
        # Read (and thereby drain) the declared body up front: replying while
        # unread body bytes sit on a keep-alive connection would make the
        # next request parse as garbage.  Oversized/undeclared bodies are the
        # one case we refuse to drain — close the connection instead.
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_REQUEST_BYTES:
            self.close_connection = True
            self._send_json(400, {"error": f"Content-Length {self.headers.get('Content-Length')!r} "
                                           f"is invalid or exceeds the "
                                           f"{MAX_REQUEST_BYTES}-byte limit"})
            return
        body = self.rfile.read(length) if length else b""

        if self.path != "/predict":
            self._send_json(404, {"error": f"unknown path {self.path!r}; "
                                           f"endpoints: GET /healthz, POST /predict"})
            return
        try:
            if not body:
                raise ValueError("request body is empty")
            request = json.loads(body.decode("utf-8"))
            if not isinstance(request, dict) or "inputs" not in request:
                raise ValueError('request must be a JSON object with an "inputs" key')
            k = int(request.get("top_k", 1))
            normalize = bool(request.get("normalize", True))
        except (ValueError, json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_json(400, {"error": str(error)})
            return

        try:
            predictions = self.server.predictor.predict_topk(
                request["inputs"], k=k, normalize=normalize)
        except ValueError as error:  # shape/validation problems are the client's
            self._send_json(400, {"error": str(error)})
            return
        except Exception as error:  # noqa: BLE001 — a serving loop must not die
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._send_json(200, {"predictions": predictions, "count": len(predictions)})


def make_server(predictor, host: str = "127.0.0.1", port: int = 8000,
                quiet: bool = False) -> ThreadingHTTPServer:
    """Build (but do not start) a threading HTTP server around ``predictor``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``), which is what the tests use.
    """
    server = ThreadingHTTPServer((host, port), PredictionHandler)
    server.daemon_threads = True
    server.predictor = predictor
    server.quiet = quiet
    return server


def serve(bundle_path, host: str = "127.0.0.1", port: int = 8000,
          max_batch: int = 64, quiet: bool = False) -> None:
    """Load a bundle and serve it until interrupted (the CLI entry point)."""
    from . import load

    predictor = load(bundle_path, max_batch=max_batch)
    server = make_server(predictor, host=host, port=port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving {bundle_path} on http://{bound_host}:{bound_port} "
          f"(endpoints: GET /healthz, POST /predict; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
