"""Stdlib HTTP transport over a :class:`~repro.serve.router.ModelRouter`.

The transport is deliberately thin: handler threads parse JSON and pre/post-
process (pure functions, unlocked), then *submit* the forward to the target
model's serving engine and wait on a future.  All scheduling policy — direct
lock-and-forward vs cross-request dynamic batching — lives behind the
:class:`~repro.serve.engine.ServingEngine` boundary, so the same transport
serves either engine and any number of named models.

Versioned API
-------------
``GET /v1/models``
    Every mounted model (name, spec, parameter count, engine) and which one
    is the default.
``GET /v1/models/<name>``
    One model's description.
``POST /v1/models/<name>/predict``
    Body ``{"inputs": <nested array>, "top_k": <int, optional>,
    "normalize": <bool, optional>}``; response ``{"model": <name>,
    "predictions": [...], "count": N}`` with one top-k record per sample.
``POST /v1/models/<name>/generate``
    Generation bundles only.  Body ``{"inputs": <token-id sequences or
    text>, "max_new_tokens": <int>, "strategy": "greedy"|"sample",
    "temperature": <float>, "top_k": <int>, "seed": <int>}`` (all but
    ``inputs`` optional); response ``{"model": <name>, "outputs":
    [{"tokens": [...], "logprobs": [...], "finish_reason": ...,
    "steps": N, "text": ...}], "count": N}``.
``GET /v1/stats``
    Stats schema v2: ``{"schema_version": 2, "server": {uptime_seconds,
    version, pid}, "models": {<name>: <entry>}}`` where each model entry
    carries the structured ``scheduler``/``plan_cache``/``latency``/
    ``admission``/``bundle``/``canary`` sections (plus the engine's flat
    counters as deprecated aliases for one release).
``GET /v1/models/<name>/stats``
    One model's stats entry (same shape as its ``models.<name>`` section).

Admin API (the control plane; disable with ``serve(admin=False)``)
------------------------------------------------------------------
``POST /v1/admin/models/<name>/reload``
    Body ``{"bundle": <path, optional>, "options": <dict, optional>}`` —
    hot-swap the model's bundle with zero dropped requests (omit ``bundle``
    to re-load the currently mounted path).
``POST /v1/admin/models/<name>/canary``
    Body ``{"bundle": <path>, "percent": <float, default 10>,
    "shadow": <bool, default false>, "options": <dict, optional>}`` — stage
    a candidate: route ``percent``% of traffic to it, or mirror (shadow).
``POST /v1/admin/models/<name>/promote``
    Swap the staged canary in as the primary (drains the old primary).
``DELETE /v1/admin/models/<name>/canary``
    Retire the staged canary without touching the primary.

Legacy shims (PR 4 surface; deprecated — they answer with a ``Deprecation``
header naming the v1 successor route)
---------------------------------------------------------------------------
``GET /healthz``
    Liveness + the *default* model's summary (successor: ``GET /v1/models``).
``POST /predict``
    Routes to the default model (successor: ``POST /v1/models/<name>/predict``).

Status mapping: malformed payloads → 400, unknown paths/models → 404, admin
API disabled → 403, full request queue *or a model past its admission cap*
→ 429 (backpressure), engine shut down → 503, request timeout → 504,
anything unexpected → 500.  SIGINT/SIGTERM drain gracefully: the server
stops accepting, engines fail queued futures with a clear error, and
in-flight responses flush before the process exits.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote

from .engine import ENGINE_NAMES, EngineClosed, QueueFull, ServingEngine
from .router import ModelRouter

__all__ = ["make_server", "serve", "PredictionHandler", "PredictionServer"]

#: Largest accepted request body (64 MiB) — a backstop against a single
#: request buffering unbounded memory, not a tuning knob.
MAX_REQUEST_BYTES = 64 * 1024 * 1024

_ENDPOINTS = ("GET /healthz, GET /v1/models, GET /v1/models/<name>, "
              "GET /v1/models/<name>/stats, GET /v1/stats, POST /predict, "
              "POST /v1/models/<name>/predict, "
              "POST /v1/models/<name>/generate, "
              "POST /v1/admin/models/<name>/{reload,canary,promote}, "
              "DELETE /v1/admin/models/<name>/canary")

#: Value of the ``Deprecation`` header on legacy-shim responses (the header's
#: draft-RFC form is a boolean; the successor route goes in ``Link``).
_DEPRECATION = "true"


def _deprecation_headers(successor: str) -> dict:
    return {"Deprecation": _DEPRECATION,
            "Link": f"<{successor}>; rel=\"successor-version\""}


class PredictionHandler(BaseHTTPRequestHandler):
    """Routes the v1 multi-model API (plus legacy shims) onto the router."""

    server_version = "repro-serve/2.1"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def _send_json(self, status: int, payload: dict,
                   headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)

    def _not_found(self, message: str | None = None) -> None:
        detail = message or f"unknown path {self.path!r}"
        self._send_json(404, {"error": f"{detail}; endpoints: {_ENDPOINTS}"})

    def _resolve_model(self, name: str | None):
        """Router lookup → (name, model), or None after replying 404."""
        try:
            model = self.server.router.get(name)
        except KeyError as error:
            self._not_found(str(error).strip('"'))
            return None
        return (name or self.server.router.default_name), model

    def _read_body(self) -> bytes | None:
        """Read (and thereby drain) the declared body; None after replying.

        Replying while unread body bytes sit on a keep-alive connection would
        make the next request parse as garbage, so every body is drained up
        front.  Oversized/undeclared bodies are the one case we refuse to
        drain — close the connection instead.
        """
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_REQUEST_BYTES:
            self.close_connection = True
            self._send_json(400, {"error": f"Content-Length {self.headers.get('Content-Length')!r} "
                                           f"is invalid or exceeds the "
                                           f"{MAX_REQUEST_BYTES}-byte limit"})
            return None
        return self.rfile.read(length) if length else b""

    def _stats_payload(self) -> dict:
        """The v2 ``/v1/stats`` document: server identity + per-model entries."""
        from repro import __version__

        return {
            "schema_version": 2,
            "server": {
                "uptime_seconds": round(
                    time.monotonic() - self.server.start_monotonic, 3),
                "version": __version__,
                "pid": os.getpid(),
            },
            "models": self.server.router.stats(),
        }

    # -- endpoints -------------------------------------------------------------

    def do_GET(self):
        path = self.path.partition("?")[0].rstrip("/")
        if path in ("", "/healthz"):
            resolved = self._resolve_model(None)
            if resolved:
                self._send_json(200, {"status": "ok", "model_name": resolved[0],
                                      **resolved[1].describe()},
                                headers=_deprecation_headers("/v1/models"))
        elif path == "/v1/models":
            self._send_json(200, self.server.router.describe())
        elif path == "/v1/stats":
            self._send_json(200, self._stats_payload())
        elif path.startswith("/v1/models/") and path.endswith("/stats"):
            name = unquote(path[len("/v1/models/"):-len("/stats")])
            resolved = self._resolve_model(name)
            if resolved:
                self._send_json(200, {"name": resolved[0],
                                      **resolved[1].stats()})
        elif path.startswith("/v1/models/"):
            resolved = self._resolve_model(unquote(path[len("/v1/models/"):]))
            if resolved:
                self._send_json(200, {"name": resolved[0], **resolved[1].describe()})
        else:
            self._not_found()

    def do_POST(self):
        body = self._read_body()
        if body is None:
            return
        path = self.path.partition("?")[0].rstrip("/")
        if path.startswith("/v1/admin/"):
            self._handle_admin("POST", path, body)
            return
        if path == "/predict":
            model_name = None  # legacy shim → default model
            extra_headers = _deprecation_headers(
                f"/v1/models/{self.server.router.default_name}/predict")
        elif path.startswith("/v1/models/") and path.endswith("/generate"):
            self._handle_generate(
                unquote(path[len("/v1/models/"):-len("/generate")]), body)
            return
        elif path.startswith("/v1/models/") and path.endswith("/predict"):
            model_name = unquote(path[len("/v1/models/"):-len("/predict")])
            extra_headers = None
        else:
            self._not_found()
            return
        resolved = self._resolve_model(model_name)
        if not resolved:
            return
        name, model = resolved

        try:
            if not body:
                raise ValueError("request body is empty")
            request = json.loads(body.decode("utf-8"))
            if not isinstance(request, dict) or "inputs" not in request:
                raise ValueError('request must be a JSON object with an "inputs" key')
            k = int(request.get("top_k", 1))
            normalize = bool(request.get("normalize", True))
        except (ValueError, json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_json(400, {"error": str(error)}, headers=extra_headers)
            return

        try:
            predictions = model.predict_topk(
                request["inputs"], k=k, normalize=normalize,
                timeout=self.server.request_timeout)
        except QueueFull as error:  # backpressure (engine queue or admission cap)
            self._send_json(429, {"error": str(error)},
                            headers={"Retry-After": "1", **(extra_headers or {})})
            return
        except EngineClosed as error:  # draining for shutdown
            self._send_json(503, {"error": str(error)}, headers=extra_headers)
            return
        except (TimeoutError, FutureTimeout) as error:
            self._send_json(504, {"error": str(error)}, headers=extra_headers)
            return
        except ValueError as error:  # shape/validation problems are the client's
            self._send_json(400, {"error": str(error)}, headers=extra_headers)
            return
        except Exception as error:  # noqa: BLE001 — a serving loop must not die
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"},
                            headers=extra_headers)
            return
        self._send_json(200, {"model": name, "predictions": predictions,
                              "count": len(predictions)}, headers=extra_headers)

    def _handle_generate(self, model_name: str, body: bytes) -> None:
        """``POST /v1/models/<name>/generate`` — token ids in, tokens +
        per-step logprobs out, same status taxonomy as predict."""
        resolved = self._resolve_model(model_name)
        if not resolved:
            return
        name, model = resolved
        try:
            if not body:
                raise ValueError("request body is empty")
            request = json.loads(body.decode("utf-8"))
            if not isinstance(request, dict) or "inputs" not in request:
                raise ValueError('request must be a JSON object with an '
                                 '"inputs" key (token-id sequences or text)')
            options = {}
            for key, cast in (("max_new_tokens", int), ("strategy", str),
                              ("temperature", float), ("top_k", int),
                              ("seed", int)):
                if request.get(key) is not None:
                    options[key] = cast(request[key])
        except (ValueError, TypeError, json.JSONDecodeError,
                UnicodeDecodeError) as error:
            self._send_json(400, {"error": str(error)})
            return

        try:
            outputs = model.generate(request["inputs"],
                                     timeout=self.server.request_timeout,
                                     **options)
        except QueueFull as error:  # backpressure → 429
            self._send_json(429, {"error": str(error)},
                            headers={"Retry-After": "1"})
            return
        except EngineClosed as error:  # draining for shutdown
            self._send_json(503, {"error": str(error)})
            return
        except (TimeoutError, FutureTimeout) as error:
            self._send_json(504, {"error": str(error)})
            return
        except ValueError as error:  # bad tokens / not a generation model
            self._send_json(400, {"error": str(error)})
            return
        except Exception as error:  # noqa: BLE001 — a serving loop must not die
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._send_json(200, {"model": name, "outputs": outputs,
                              "count": len(outputs)})

    def do_DELETE(self):
        body = self._read_body()
        if body is None:
            return
        path = self.path.partition("?")[0].rstrip("/")
        if path.startswith("/v1/admin/"):
            self._handle_admin("DELETE", path, body)
        else:
            self._not_found()

    # -- the control plane over HTTP -------------------------------------------

    def _handle_admin(self, method: str, path: str, body: bytes) -> None:
        """Dispatch ``/v1/admin/models/<name>/{reload,canary,promote}``."""
        if not getattr(self.server, "admin_enabled", True):
            self._send_json(403, {"error": "the admin API is disabled on this "
                                           "server (started with admin=False / "
                                           "--no-admin)"})
            return
        prefix = "/v1/admin/models/"
        if not path.startswith(prefix):
            self._not_found()
            return
        name, _, verb = unquote(path[len(prefix):]).rpartition("/")
        verbs = {"POST": ("reload", "canary", "promote"), "DELETE": ("canary",)}
        if not name or verb not in verbs.get(method, ()):
            self._not_found(
                f"unknown admin operation {method} {path!r}; valid: "
                f"POST {prefix}<name>/{{reload,canary,promote}}, "
                f"DELETE {prefix}<name>/canary")
            return
        resolved = self._resolve_model(name)
        if not resolved:
            return
        name, model = resolved

        try:
            request = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(request, dict):
                raise ValueError("admin request body must be a JSON object")
        except (ValueError, json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_json(400, {"error": str(error)})
            return

        try:
            if method == "DELETE":
                result = model.clear_canary()
            elif verb == "reload":
                result = model.reload(bundle=request.get("bundle"),
                                      options=request.get("options"))
            elif verb == "canary":
                if "bundle" not in request:
                    raise ValueError('staging a canary requires a "bundle" '
                                     'key (the candidate bundle path)')
                result = model.set_canary(
                    request["bundle"],
                    percent=float(request.get("percent", 10.0)),
                    shadow=bool(request.get("shadow", False)),
                    options=request.get("options"))
            else:  # promote
                result = model.promote()
        except (ValueError, KeyError, FileNotFoundError, OSError) as error:
            self._send_json(400, {"error": str(error)})
            return
        except EngineClosed as error:
            self._send_json(503, {"error": str(error)})
            return
        except Exception as error:  # noqa: BLE001 — admin must not kill serving
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._send_json(200, {"model": name, **result})


class PredictionServer(ThreadingHTTPServer):
    """Threading HTTP server owning one router and the request-timeout knob."""

    daemon_threads = True

    def __init__(self, address, router: ModelRouter, quiet: bool = False,
                 request_timeout: float | None = 30.0, admin: bool = True):
        super().__init__(address, PredictionHandler)
        self.router = router
        self.quiet = quiet
        self.request_timeout = request_timeout
        self.admin_enabled = bool(admin)
        self.start_monotonic = time.monotonic()

    @property
    def predictor(self):
        """The default model's predictor (back-compat with the PR 4 server)."""
        return self.router.default


def make_server(models, host: str = "127.0.0.1", port: int = 8000,
                quiet: bool = False, request_timeout: float | None = 30.0,
                admin: bool = True) -> PredictionServer:
    """Build (but do not start) the HTTP server around one or many models.

    ``models`` is a :class:`ModelRouter`, a ``{name: Predictor}`` mapping, or
    — the PR 4 signature, still supported — a single ``Predictor`` (mounted
    as the default model).  ``port=0`` binds an ephemeral port (read it back
    from ``server.server_address``), which is what the tests use.
    ``admin=False`` turns the ``/v1/admin`` control-plane routes off (403).
    """
    if isinstance(models, ModelRouter):
        router = models
    elif isinstance(models, dict):
        router = ModelRouter(models)
    else:  # a single predictor
        router = ModelRouter({"default": models})
    return PredictionServer((host, port), router, quiet=quiet,
                            request_timeout=request_timeout, admin=admin)


def _install_signal_handlers(server: PredictionServer):
    """SIGINT/SIGTERM → graceful ``server.shutdown()``; returns a restore fn.

    ``shutdown()`` must run off the serving thread, hence the helper thread.
    When not on the main thread (embedded/test use) signals cannot be
    installed; that's fine — the caller still drains via ``finally``.
    """
    def _handle(signum, frame):
        threading.Thread(target=server.shutdown, name="repro-serve-shutdown",
                         daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handle)
        except ValueError:  # not the main thread
            pass

    def restore():
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    return restore


def _check_engine_name(value, context: str) -> None:
    """Fail fast on a typoed engine name, enumerating the valid choices."""
    if value is None or isinstance(value, ServingEngine) or value in ENGINE_NAMES:
        return
    valid = ", ".join(repr(name) for name in ENGINE_NAMES)
    raise ValueError(f"unknown serving engine {value!r} for {context}; "
                     f"valid engines: {valid}")


def serve(bundle_path=None, host: str = "127.0.0.1", port: int = 8000,
          max_batch: int = 64, quiet: bool = False, models: dict | None = None,
          engine: str = "batched", max_wait_ms: float = 2.0,
          queue_size: int = 256, request_timeout: float | None = 30.0,
          default_model: str | None = None, ready=None,
          compile: bool = True, workers: int = 2,
          max_inflight: int | None = None, admin: bool = True) -> None:
    """Load bundles and serve them until interrupted (the CLI entry point).

    ``bundle_path`` (legacy single-model form) is mounted as ``default``;
    ``models`` maps additional names to bundle paths — or to dict specs
    (``{"path": ..., "engine": ..., "workers": ..., "max_batch": ...,
    "max_wait_ms": ..., "queue_size": ..., "max_inflight": ...}``)
    overriding the shared knobs per model, which is how one server mounts,
    say, a hot model on its own 4-worker pool next to a long-tail model on a
    direct engine.  Each model gets its own session and serving engine
    (``engine="batched"`` by default; ``"direct"`` for inline
    lock-and-forward; ``"pool"`` for the multi-process pool with ``workers``
    processes per model).  ``compile=True`` (default) turns on
    trace-and-replay compilation per session; loading warms each model,
    which traces and compiles its steady-state plan before the first
    request.  ``max_inflight`` caps concurrent requests *per model*
    (admission control: a saturated model sheds with 429 while the others
    keep serving); ``admin=False`` disables the ``/v1/admin`` control-plane
    routes.  SIGINT/SIGTERM shut down gracefully: the queue drains, queued
    futures fail with a clear error instead of hanging their clients, then
    the process exits.  ``ready``, if given, is called with the bound server
    before the serve loop starts (embedding/test hook).
    """
    from . import load

    specs: dict[str, object] = {}
    if bundle_path is not None:
        specs["default"] = bundle_path
    for name, spec in (models or {}).items():
        if name in specs:
            raise ValueError(
                f"model name {name!r} collides with the positional bundle "
                f"(mounted as 'default'); pick another --model name or drop "
                f"the positional argument")
        specs[name] = spec
    if not specs:
        raise ValueError("serve needs a bundle path or at least one "
                         "name=bundle model mapping")
    _check_engine_name(engine, "--engine")
    shared = {"max_batch": max_batch, "engine": engine, "workers": workers,
              "max_wait_ms": max_wait_ms, "queue_size": queue_size,
              "compile": compile}
    router = ModelRouter()
    engines = set()
    for name, spec in specs.items():
        options = dict(shared)
        model_max_inflight = max_inflight
        if isinstance(spec, dict):
            path = spec.get("path")
            if path is None:
                raise ValueError(f"model spec for {name!r} needs a 'path' key")
            unknown = set(spec) - {"path", "max_inflight", *shared}
            if unknown:
                raise ValueError(f"model spec for {name!r} has unknown "
                                 f"option(s) {sorted(unknown)}; valid: "
                                 f"{sorted([*shared, 'max_inflight'])}")
            options.update({key: value for key, value in spec.items()
                            if key not in ("path", "max_inflight")})
            model_max_inflight = spec.get("max_inflight", max_inflight)
        else:
            path = spec
        _check_engine_name(options["engine"], f"model {name!r}")
        engines.add(options["engine"])
        router.add(name, load(path, **options), source=str(path),
                   load_options=options, max_inflight=model_max_inflight)
    if default_model is not None:
        router.set_default(default_model)

    server = make_server(router, host=host, port=port, quiet=quiet,
                         request_timeout=request_timeout, admin=admin)
    restore_signals = _install_signal_handlers(server)
    bound_host, bound_port = server.server_address[:2]
    engine_label = "/".join(sorted(str(e) for e in engines))
    print(f"serving {len(router)} model(s) [{', '.join(router.names())}; "
          f"default: {router.default_name}] with the {engine_label} engine on "
          f"http://{bound_host}:{bound_port}")
    if not quiet:
        print(f"endpoints: {_ENDPOINTS}")
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        restore_signals()
        print("draining: closing engines and failing queued requests...")
        router.close()
        server.server_close()
        print("serve shut down cleanly")
