"""Stable inference API: load a bundle, predict batches, serve over HTTP.

This package is the grad-free counterpart of :mod:`repro.training` — the
paper's efficiency story is ultimately an *inference* story, and this is the
entry point that measures and serves it:

* :class:`InferenceSession` — eval-mode, ``no_grad``, micro-batched forwards
  with warm buffer caches and a zero-graph-construction guarantee.
* :class:`Pipeline` — raw inputs in (normalization, single-sample promotion),
  softmax/top-k records out.
* :class:`Predictor` — the façade combining both; ``repro.load(path)``
  returns one.
* :mod:`repro.serve.http` — a stdlib ``ThreadingHTTPServer`` exposing
  ``GET /healthz`` and ``POST /predict`` over a shared session.

The one-liner::

    import repro
    predictor = repro.load("artifacts/bundles/fig4-smoke-....../cifar_resnet-....npz")
    classes = predictor.predict(batch)          # (N,) class indices
    records = predictor.predict_topk(batch, 3)  # labeled top-3 with probabilities
"""

from __future__ import annotations

import numpy as np

from .http import make_server, serve
from .pipeline import Pipeline, softmax, top_k
from .session import InferenceSession

__all__ = ["InferenceSession", "Pipeline", "Predictor", "load",
           "make_server", "serve", "softmax", "top_k"]


class Predictor:
    """High-level inference façade over one model: session + pipeline.

    Construct directly from an in-memory model, or — the common path — via
    :func:`load` / :meth:`from_bundle`, which pull normalization stats, class
    labels and the expected input shape from the bundle metadata.
    """

    def __init__(self, model, normalization: dict | None = None,
                 classes: list[str] | None = None, input_shape: tuple | None = None,
                 max_batch: int = 64, warm: bool = False):
        self.session = InferenceSession(model, max_batch=max_batch)
        self.pipeline = Pipeline(self.session, normalization=normalization,
                                 classes=classes, input_shape=input_shape)
        if warm:
            self.session.warm(self.pipeline.input_shape)

    @classmethod
    def from_bundle(cls, bundle_or_path, max_batch: int = 64,
                    warm: bool = False) -> "Predictor":
        """Build a predictor from a loaded bundle or a bundle path."""
        return cls(bundle_or_path, max_batch=max_batch, warm=warm)

    # -- convenience properties -------------------------------------------------

    @property
    def model(self):
        return self.session.model

    @property
    def classes(self) -> list[str] | None:
        return self.pipeline.classes

    @property
    def input_shape(self) -> tuple | None:
        return self.pipeline.input_shape

    # -- prediction -------------------------------------------------------------

    def predict(self, inputs, normalize: bool = True) -> np.ndarray:
        """Predicted class index per sample, shape ``(N,)``."""
        return self.predict_logits(inputs, normalize=normalize).argmax(axis=-1)

    def predict_logits(self, inputs, normalize: bool = True) -> np.ndarray:
        """Raw model outputs, shape ``(N, num_classes)``."""
        return self.session.predict(self.pipeline.preprocess(inputs, normalize=normalize))

    def predict_proba(self, inputs, normalize: bool = True) -> np.ndarray:
        """Softmax class probabilities, shape ``(N, num_classes)``."""
        return softmax(self.predict_logits(inputs, normalize=normalize))

    def predict_topk(self, inputs, k: int = 5, normalize: bool = True) -> list[dict]:
        """Labeled top-``k`` records per sample (the HTTP response payload)."""
        return self.pipeline.predict(inputs, k=k, normalize=normalize)

    def describe(self) -> dict:
        """Model + session summary (served verbatim on ``/healthz``)."""
        info = self.session.describe()
        if self.input_shape is not None:
            info["input_shape"] = list(self.input_shape)
        if self.classes is not None:
            info["num_classes"] = len(self.classes)
        return info


def load(path, max_batch: int = 64, warm: bool = True) -> Predictor:
    """Load a bundle from ``path`` into a ready-to-serve :class:`Predictor`.

    Re-exported as :func:`repro.load`; warming is on by default so the first
    request after process start doesn't pay the buffer-allocation cost.
    """
    return Predictor.from_bundle(path, max_batch=max_batch, warm=warm)
