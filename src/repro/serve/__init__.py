"""Stable inference API: load bundles, predict batches, serve over HTTP.

This package is the grad-free counterpart of :mod:`repro.training` — the
paper's efficiency story is ultimately an *inference* story, and this is the
entry point that measures and serves it.  Since PR 5 it is layered around a
pluggable engine boundary:

* :class:`InferenceSession` — eval-mode, ``no_grad``, micro-batched forwards
  with warm buffer caches and a zero-graph-construction guarantee.
* :class:`ServingEngine` — the scheduling protocol (``submit``/``stats``/
  ``close``): :class:`DirectEngine` runs forwards inline on the caller's
  thread; :class:`BatchedEngine` coalesces concurrent requests into fused
  forwards through a background scheduler (cross-request dynamic batching);
  :class:`ProcessPoolEngine` shards those fused batches across N warm
  worker processes to scale past the single-interpreter ceiling.
* :class:`Pipeline` — raw inputs in (normalization, single-sample promotion),
  softmax/top-k records out.
* :class:`Predictor` — the façade combining all three; ``repro.load(path)``
  returns one, and ``engine="batched"`` turns on cross-request batching.
* :class:`ModelRouter` + :mod:`repro.serve.http` — named multi-model routing
  behind a stdlib ``ThreadingHTTPServer``: ``GET /v1/models``,
  ``POST /v1/models/<name>/predict``, ``GET /v1/stats``, with the legacy
  ``GET /healthz`` / ``POST /predict`` shims routing to the default model.

The one-liner::

    import repro
    predictor = repro.load("artifacts/bundles/fig4-smoke-....../cifar_resnet-....npz")
    classes = predictor.predict(batch)          # (N,) class indices
    records = predictor.predict_topk(batch, 3)  # labeled top-3 with probabilities
"""

from __future__ import annotations

import numpy as np

from .batching import BatchedEngine, QueuedEngine
from .engine import DirectEngine, EngineClosed, EngineError, QueueFull, ServingEngine, make_engine
from .generate import DecodeState, GenerationEngine, GenerationPredictor
from .http import make_server, serve
from .metrics import LatencyHistogram
from .ops import ManagedModel, ModelOverloaded
from .pipeline import Pipeline, softmax, top_k
from .pool import ProcessPoolEngine
from .router import ModelRouter
from .session import InferenceSession

__all__ = ["InferenceSession", "Pipeline", "Predictor", "load",
           "ServingEngine", "DirectEngine", "BatchedEngine", "QueuedEngine",
           "ProcessPoolEngine", "make_engine",
           "DecodeState", "GenerationEngine", "GenerationPredictor",
           "EngineError", "EngineClosed", "QueueFull", "ModelRouter",
           "ManagedModel", "ModelOverloaded", "LatencyHistogram",
           "make_server", "serve", "softmax", "top_k"]


class Predictor:
    """High-level inference façade over one model: session + engine + pipeline.

    Construct directly from an in-memory model, or — the common path — via
    :func:`load` / :meth:`from_bundle`, which pull normalization stats, class
    labels and the expected input shape from the bundle metadata.

    ``engine`` selects the scheduling layer every forward goes through:
    ``"direct"`` (default — inline, lock-serialized, PR 4 behavior),
    ``"batched"`` (a background scheduler fuses concurrent requests into one
    forward; tune with ``max_wait_ms``/``queue_size``) or ``"pool"``
    (the batched scheduler sharding fused batches across ``workers`` warm
    worker processes — bundle-backed models only, since workers re-load the
    bundle by path).  A ready-made :class:`ServingEngine` instance is
    accepted too — that is the hook a multi-process or multi-backend engine
    plugs into; the predictor then adopts the engine's own session (so
    ``describe``/``warm`` target the session that actually serves) and
    ``max_batch`` is ignored.
    """

    def __init__(self, model, normalization: dict | None = None,
                 classes: list[str] | None = None, input_shape: tuple | None = None,
                 max_batch: int = 64, warm: bool = False, engine="direct",
                 max_wait_ms: float | None = None, queue_size: int | None = None,
                 compile: bool = True, workers: int | None = None):
        if isinstance(engine, ServingEngine) and \
                getattr(engine, "session", None) is not None:
            self.session = engine.session
            self.session.compile_enabled = bool(compile)
        else:
            self.session = InferenceSession(model, max_batch=max_batch,
                                            compile=compile)
        self.engine = make_engine(engine, self.session,
                                  max_wait_ms=max_wait_ms, queue_size=queue_size,
                                  workers=workers)
        self.pipeline = Pipeline(self.session, normalization=normalization,
                                 classes=classes, input_shape=input_shape,
                                 engine=self.engine)
        if warm:
            # Through the engine, not the session: the pool engine warms
            # every worker's plan cache, not the parent's idle session.
            self.engine.warm(self.pipeline.input_shape)

    @classmethod
    def from_bundle(cls, bundle_or_path, max_batch: int = 64, warm: bool = False,
                    engine="direct", max_wait_ms: float | None = None,
                    queue_size: int | None = None, compile: bool = True,
                    workers: int | None = None) -> "Predictor":
        """Build a predictor from a loaded bundle or a bundle path."""
        return cls(bundle_or_path, max_batch=max_batch, warm=warm, engine=engine,
                   max_wait_ms=max_wait_ms, queue_size=queue_size, compile=compile,
                   workers=workers)

    # -- convenience properties -------------------------------------------------

    @property
    def model(self):
        return self.session.model

    @property
    def classes(self) -> list[str] | None:
        return self.pipeline.classes

    @property
    def input_shape(self) -> tuple | None:
        return self.pipeline.input_shape

    # -- prediction -------------------------------------------------------------

    def predict(self, inputs, normalize: bool = True,
                timeout: float | None = None) -> np.ndarray:
        """Predicted class index per sample, shape ``(N,)``."""
        return self.predict_logits(inputs, normalize=normalize,
                                   timeout=timeout).argmax(axis=-1)

    def predict_logits(self, inputs, normalize: bool = True,
                       timeout: float | None = None) -> np.ndarray:
        """Raw model outputs, shape ``(N, num_classes)``, via the engine."""
        return self.pipeline.logits(inputs, normalize=normalize, timeout=timeout)

    def predict_proba(self, inputs, normalize: bool = True,
                      timeout: float | None = None) -> np.ndarray:
        """Softmax class probabilities, shape ``(N, num_classes)``."""
        return softmax(self.predict_logits(inputs, normalize=normalize,
                                           timeout=timeout))

    def predict_topk(self, inputs, k: int = 5, normalize: bool = True,
                     timeout: float | None = None) -> list[dict]:
        """Labeled top-``k`` records per sample (the HTTP response payload)."""
        return self.pipeline.predict(inputs, k=k, normalize=normalize,
                                     timeout=timeout)

    # -- introspection / lifecycle ----------------------------------------------

    def describe(self) -> dict:
        """Model + session summary (served on ``/healthz`` and ``/v1/models``)."""
        info = self.session.describe()
        info["engine"] = self.engine.name
        if self.input_shape is not None:
            info["input_shape"] = list(self.input_shape)
        if self.classes is not None:
            info["num_classes"] = len(self.classes)
        return info

    def stats(self) -> dict:
        """Engine scheduling stats + plan-cache stats (served on ``/v1/stats``).

        ``setdefault`` because multi-process engines already report an
        aggregated ``plan_cache`` across their workers — the parent
        session's (empty) cache must not mask it.
        """
        stats = self.engine.stats()
        stats.setdefault("plan_cache", self.session.plan_stats())
        return stats

    def close(self) -> None:
        """Close the engine: stop accepting work, fail queued futures loudly."""
        self.engine.close()

    def __enter__(self) -> "Predictor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load(path, max_batch: int = 64, warm: bool = True, engine="direct",
         max_wait_ms: float | None = None, queue_size: int | None = None,
         compile: bool = True, workers: int | None = None):
    """Load a bundle from ``path`` into a ready-to-serve predictor.

    Re-exported as :func:`repro.load`; warming is on by default so the first
    request after process start doesn't pay the buffer-allocation cost —
    and, with ``compile=True`` (default), warming also traces and compiles
    the execution plan for the steady-state batch shape, so real traffic
    replays from the first request.  ``engine="batched"`` opts the predictor
    into cross-request dynamic batching (what ``repro serve`` uses by
    default); ``engine="pool"`` shards fused batches across ``workers``
    warm worker processes; ``compile=False`` forces classic per-op dispatch.

    Bundles whose section carries ``generation`` metadata (sequence models
    exported with :func:`repro.serve.generate.generation_bundle_info`) come
    back as a :class:`~repro.serve.generate.GenerationPredictor` instead —
    same load options, but ``max_batch`` sizes the decode-slot pool and the
    prediction-only knobs (``engine``/``workers``/``compile``) are ignored.
    """
    from ..io.bundle import Bundle, load_bundle

    bundle = path if isinstance(path, Bundle) else load_bundle(path)
    if bundle.section.get("generation"):
        from .generate import GenerationPredictor

        return GenerationPredictor.from_bundle(
            bundle, max_batch=max_batch, warm=warm, engine=engine,
            max_wait_ms=max_wait_ms, queue_size=queue_size, compile=compile,
            workers=workers)
    return Predictor.from_bundle(bundle, max_batch=max_batch, warm=warm,
                                 engine=engine, max_wait_ms=max_wait_ms,
                                 queue_size=queue_size, compile=compile,
                                 workers=workers)
