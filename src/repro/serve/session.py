"""Grad-free, batched inference sessions.

An :class:`InferenceSession` owns one model held permanently in eval mode and
answers ``predict`` calls on the raw-logits level:

* **no graph, provably** — every forward runs under
  :class:`~repro.tensor.no_grad`, and the session asserts through the
  engine's graph-node counter that *zero* autograd nodes were constructed.
  A model whose forward sneaks graph state past inference mode fails loudly
  instead of silently serving at training-path cost.
* **micro-batching** — arbitrarily large requests are split into chunks of at
  most ``max_batch`` rows, bounding peak activation memory while keeping each
  chunk large enough for the engine's batched kernels to pay off.
* **warm buffer caches** — inference-mode convolutions route their im2col
  expansion through the engine's shared column cache
  (:data:`repro.tensor.column_cache`); :meth:`warm` runs a throwaway forward
  so the first real request doesn't pay the allocation cost.
* **thread safety** — a lock serializes forwards, making one session safely
  shareable across the threads of :mod:`repro.serve.http`.
* **trace-and-replay compilation** — with ``compile=True`` (the default) the
  first forward for each ``(chunk shape, dtype)`` records the model's op
  graph and compiles it into a :class:`~repro.tensor.plan.ExecutionPlan`;
  subsequent same-shape forwards replay the plan with zero Tensor/OpContext/
  graph-node allocation.  Plans are validated byte-identical against normal
  dispatch at compile time; models that cannot be traced (data-dependent
  control flow, array math outside the op registry) are cached as fallbacks
  and keep dispatching — compilation is always a transparent fast path,
  never a behavior change.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from ..nn.module import Module
from ..tensor import Tensor, no_grad
from ..tensor.engine import graph_nodes_created
from ..tensor.plan import FALLBACK, PlanCache, compile_forward, plan_key

__all__ = ["InferenceSession"]


class InferenceSession:
    """Batched, no-grad prediction over a model or a loaded bundle.

    Parameters
    ----------
    model:
        A :class:`~repro.nn.Module`, a loaded :class:`~repro.io.Bundle`, or a
        path to a bundle ``.npz`` on disk.
    max_batch:
        Micro-batch size; requests larger than this are chunked.
    strict_no_graph:
        Assert after every forward that no autograd graph was constructed
        (cheap: one integer comparison).  Disable only if a custom model
        legitimately builds graph state during inference.
    compile:
        Trace-and-replay compilation (default on).  Serving wants it;
        training paths never construct sessions, so they are unaffected.
        Disable to force every forward through normal dispatch.
    """

    def __init__(self, model, max_batch: int = 64, strict_no_graph: bool = True,
                 compile: bool = True):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.bundle = None
        if isinstance(model, (str, Path)):
            from ..io.bundle import load_bundle

            model = load_bundle(model)
        if not isinstance(model, Module):  # a Bundle (duck-typed: has .model)
            self.bundle = model
            model = model.model
        self.model = model.eval()
        self.max_batch = int(max_batch)
        self.strict_no_graph = strict_no_graph
        self.compile_enabled = bool(compile)
        self.plan_cache = PlanCache()
        self.batches_served = 0
        self.samples_served = 0
        self._lock = threading.Lock()
        self._warmed: set[tuple] = set()

    # -- core ----------------------------------------------------------------

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Model outputs (logits) for a batch of inputs, computed grad-free.

        ``inputs`` must already be batched (leading batch dimension) and
        preprocessed; :class:`repro.serve.Pipeline` handles normalization and
        single-sample promotion.  Thread-safe.
        """
        inputs = np.asarray(inputs)
        if inputs.ndim < 2:
            raise ValueError(
                f"predict expects a batched array (leading batch dimension), "
                f"got shape {tuple(inputs.shape)}")
        with self._lock:
            outputs = [self._forward(chunk)
                       for chunk in self._micro_batches(inputs)]
            self.batches_served += len(outputs)
            self.samples_served += len(inputs)
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)

    @no_grad()
    def _forward(self, chunk: np.ndarray) -> np.ndarray:
        if self.compile_enabled:
            key = plan_key((chunk.shape,), (chunk.dtype,))
            entry = self.plan_cache.lookup(key)
            if entry is not None and entry is not FALLBACK:
                before = graph_nodes_created()
                out = entry.replay(chunk)
                if self.strict_no_graph and graph_nodes_created() != before:
                    raise RuntimeError(
                        "plan replay constructed autograd graph nodes; the "
                        "compiled plan is not allocation-free")
                return out
            if entry is None:
                # First time this (shape, dtype) is seen: trace + compile, and
                # serve the trace run's own forward result.  A failed trace or
                # validation caches a fallback so the key dispatches forever.
                before = graph_nodes_created()
                plan, out = compile_forward(self.model, chunk)
                if self.strict_no_graph and graph_nodes_created() != before:
                    # The trace (or its validation forward) built graph nodes:
                    # the model is doing graph work outside the engine's
                    # gradient switch.  Don't cache a plan for it — replaying
                    # would silently mask the bug strict mode exists to catch.
                    raise RuntimeError(
                        "inference forward constructed autograd graph nodes "
                        "despite no_grad; the model is doing graph work "
                        "outside the engine's gradient switch")
                self.plan_cache.store(key, plan)
                if out is not None:
                    return out
        before = graph_nodes_created()
        out = self.model(Tensor(chunk)).data
        if self.strict_no_graph:
            created = graph_nodes_created() - before
            if created:
                raise RuntimeError(
                    f"inference forward constructed {created} autograd graph "
                    f"node(s) despite no_grad; the model is doing graph work "
                    f"outside the engine's gradient switch")
        return out

    def _micro_batches(self, inputs: np.ndarray):
        for start in range(0, len(inputs), self.max_batch):
            yield inputs[start:start + self.max_batch]

    # -- cache warming ---------------------------------------------------------

    def warm(self, input_shape: tuple | None = None,
             batch_sizes: tuple[int, ...] | None = None,
             force: bool = False) -> bool:
        """Run throwaway forwards to populate the engine's buffer caches.

        With compilation enabled this is also what triggers tracing: each
        warmed batch size records and compiles an execution plan, so the
        first real request replays instead of paying the trace cost.

        ``input_shape`` is the per-sample shape; when omitted it is taken from
        the session's bundle metadata.  ``batch_sizes`` defaults to
        ``(max_batch,)`` — the shape the steady-state traffic will hit.
        Returns ``False`` (no-op) when no input shape is known.

        Idempotent and thread-safe: a ``(input_shape, batch_sizes)``
        combination is warmed at most once per session — concurrent and
        repeated calls (e.g. several transports sharing one session) skip the
        redundant throwaway forwards instead of rebuilding the column caches.
        ``force=True`` re-warms, e.g. after ``column_cache.clear()``.
        """
        if input_shape is None and self.bundle is not None:
            input_shape = self.bundle.input_shape
        if input_shape is None:
            return False
        sizes = tuple(batch_sizes) if batch_sizes else (self.max_batch,)
        key = (tuple(input_shape), sizes)
        with self._lock:
            if key in self._warmed and not force:
                return True
            for batch in sizes:
                self._forward(np.zeros((batch, *input_shape), dtype=np.float32))
            self._warmed.add(key)
        return True

    # -- introspection ---------------------------------------------------------

    def plan_stats(self) -> dict:
        """Plan-cache counters plus whether compilation is enabled."""
        stats = self.plan_cache.stats()
        stats["compile"] = self.compile_enabled
        return stats

    def describe(self) -> dict:
        """Session + model summary (the backbone of ``/healthz``)."""
        spec = getattr(self.model, "model_spec", None)
        info = {
            "model": spec["name"] if spec else type(self.model).__name__,
            "parameters": self.model.num_parameters(),
            "max_batch": self.max_batch,
            "batches_served": self.batches_served,
            "samples_served": self.samples_served,
            "plan_cache": self.plan_stats(),
        }
        if self.bundle is not None:
            if self.bundle.input_shape is not None:
                info["input_shape"] = list(self.bundle.input_shape)
            if self.bundle.classes is not None:
                info["num_classes"] = len(self.bundle.classes)
        return info
