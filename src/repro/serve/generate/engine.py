"""Continuous-batching generation engine.

The prediction engines in :mod:`repro.serve.batching` coalesce *independent
one-shot requests* into fused forwards.  Generation is a different shape of
work — each request is a multi-step loop whose length is unknown up front —
so batching happens *across steps* instead of across arrivals:

* A fixed pool of decode **slots** (one :class:`~.state.DecodeState` row
  each) holds the in-flight sequences.
* Every scheduler iteration runs **one batched** ``decode_step`` across all
  active slots — a sequence on token 3 and a sequence on token 40 share the
  same forward — then applies each request's own strategy to its logits row.
* Finished sequences retire **immediately** (their futures resolve
  mid-storm, not at a batch boundary) and their slots are re-admitted from
  the queue between steps, so the batch stays full while work is waiting.
* Prefill (the encoder pass) runs **solo per request** at admission: the
  byte-identity contract of the incremental decoder is anchored to batch-1
  reference numerics, and a solo prefill keeps a request's outputs
  independent of which other sequences happened to arrive alongside it.

Queueing semantics mirror :class:`~repro.serve.batching.QueuedEngine`: a
bounded queue with :class:`~repro.serve.engine.QueueFull` backpressure, a
background scheduler thread, and ``close()`` that drains in-flight sequences
and fails queued futures with :class:`~repro.serve.engine.EngineClosed`.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future

import numpy as np

from ...parallel.seeding import derive_seed
from ..engine import EngineClosed, QueueFull
from .strategies import GenerationStrategy, make_strategy, token_logprobs

__all__ = ["GenerationEngine"]

#: Sentinel telling the scheduler thread to begin shutting down.
_SHUTDOWN = object()


class _Request:
    """One in-flight (or queued) generation: its future and running output."""

    __slots__ = ("future", "source", "max_new_tokens", "strategy", "rng",
                 "tokens", "logprobs", "last_token", "slot")

    def __init__(self, future: Future, source: np.ndarray, max_new_tokens: int,
                 strategy: GenerationStrategy, rng: np.random.Generator):
        self.future = future
        self.source = source
        self.max_new_tokens = max_new_tokens
        self.strategy = strategy
        self.rng = rng
        self.tokens: list[int] = []
        self.logprobs: list[float] = []
        self.last_token = -1
        self.slot = -1


class GenerationEngine:
    """Continuous batching over one model's incremental decoder.

    Parameters
    ----------
    model:
        A :class:`~repro.models.transformer.Transformer` (anything exposing
        ``new_decode_state``/``prefill``/``decode_step`` and ``pad_id``).
    bos_id / eos_id:
        Sequence delimiters; decoding starts from ``bos_id`` and a row
        retires when it emits ``eos_id`` (or the model's ``pad_id``).
    max_batch:
        Number of decode slots — the ceiling on concurrently decoding
        sequences; further arrivals wait in the queue.
    max_len:
        Per-sequence position budget (clamped to the model's ``max_len``).
    max_wait_ms:
        How long an idle scheduler blocks on the queue before re-checking
        for shutdown; also the arrival-coalescing window when the pool is
        empty.
    queue_size:
        Bound on queued requests; beyond it ``submit`` raises
        :class:`QueueFull` (HTTP 429).
    seed:
        Root of the per-request sampling streams: request ``i`` (in arrival
        order) draws from ``derive_seed(seed, "generate", i)`` unless the
        caller pins its own ``seed`` at :meth:`submit` time.
    """

    name = "generation"

    def __init__(self, model, bos_id: int, eos_id: int, max_batch: int = 8,
                 max_len: int | None = None, max_wait_ms: float = 2.0,
                 queue_size: int = 256, seed: int = 0, autostart: bool = True):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.model = model
        self.bos_id = int(bos_id)
        self.eos_id = int(eos_id)
        self.pad_id = int(model.pad_id)
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.queue_size = int(queue_size)
        self.seed = int(seed)
        self.state = model.new_decode_state(self.max_batch, max_len=max_len)

        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._active: dict[int, _Request] = {}
        self._free = list(range(self.max_batch - 1, -1, -1))
        self._lock = threading.Lock()
        self._closed = False
        self._shutdown = False
        self._scheduler: threading.Thread | None = None
        self._scheduler_exited = threading.Event()
        # Telemetry (guarded by _lock; the scheduler is the only writer).
        self._requests = 0
        self._completed = 0
        self._tokens_generated = 0
        self._steps = 0
        self._step_rows = 0
        if autostart:
            self.start()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._scheduler is not None and self._scheduler.is_alive():
            return
        self._scheduler_exited.clear()
        self._scheduler = threading.Thread(target=self._scheduler_loop,
                                           name="repro-generate-scheduler",
                                           daemon=True)
        self._scheduler.start()

    def close(self, timeout: float = 5.0) -> None:
        """Drain in-flight sequences, fail queued futures, stop the thread.

        Active sequences finish decoding (their clients get real results);
        requests still waiting in the queue fail fast with
        :class:`EngineClosed` instead of hanging.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._shutdown = True
        try:
            self._queue.put_nowait(_SHUTDOWN)
        except queue.Full:  # the scheduler will see _shutdown on its next poll
            pass
        if self._scheduler is not None:
            self._scheduler.join(timeout)
        self._fail_pending()

    def __enter__(self) -> "GenerationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def warm(self, input_shape=None, batch_sizes=None) -> None:
        """No-op (kept for engine-interface symmetry): decode state is
        preallocated at construction and there is no plan cache to prime."""

    # -- submission ------------------------------------------------------------

    def submit(self, source, max_new_tokens: int | None = None, strategy=None,
               temperature: float | None = None, top_k: int | None = None,
               seed: int | None = None) -> Future:
        """Enqueue one sequence; returns a future resolving to a result dict.

        ``source`` is a 1-D sequence of source-token ids.  The result is
        ``{"tokens": [...], "logprobs": [...], "finish_reason": "eos" |
        "length" | "max_len", "steps": N}`` — generated ids (``eos``/``pad``
        excluded), the log-probability of each generated token under the
        model, and why decoding stopped.
        """
        source = np.asarray(source, dtype=np.int64)
        if source.ndim != 1 or source.shape[0] < 1:
            raise ValueError(f"source must be a non-empty 1-D token-id "
                             f"sequence, got shape {tuple(source.shape)}")
        if source.shape[0] > self.state.src_capacity:
            raise ValueError(f"source length {source.shape[0]} exceeds the "
                             f"engine's capacity {self.state.src_capacity}")
        budget = self.state.max_len - 1  # position 0 is the <bos> feed
        max_new_tokens = budget if max_new_tokens is None \
            else min(int(max_new_tokens), budget)
        if max_new_tokens < 1:
            raise ValueError(f"max_new_tokens must be >= 1, got {max_new_tokens}")
        resolved = make_strategy(strategy, temperature=temperature, top_k=top_k)
        with self._lock:
            if self._closed:
                raise EngineClosed("generation engine is closed; no new "
                                   "sequences are accepted")
            index = self._requests
            self._requests += 1
        components = ("generate", index) if seed is None else ("generate",)
        rng = np.random.default_rng(
            derive_seed(self.seed if seed is None else int(seed), *components))
        request = _Request(Future(), source, max_new_tokens, resolved, rng)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            raise QueueFull(f"generation queue is full ({self.queue_size} "
                            f"requests waiting); retry with backoff") from None
        if self._closed:  # close() raced the enqueue — fail loudly, not silently
            self._fail_pending()
        return request.future

    # -- scheduler -------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        try:
            while True:
                self._admit()
                if not self._active:
                    if self._shutdown:
                        break
                    continue
                self._step()
        finally:
            with self._lock:
                self._closed = True
            self._fail_pending()
            self._scheduler_exited.set()

    def _admit(self) -> None:
        """Move queued requests into free slots; block briefly when idle."""
        block = not self._active and not self._shutdown
        while self._free or block:
            try:
                item = self._queue.get(timeout=self.max_wait_ms / 1000.0) \
                    if block else self._queue.get_nowait()
            except queue.Empty:
                return
            block = False
            if item is _SHUTDOWN:
                return
            if not self._free:  # shutdown sentinel consumed a blocking get
                self._requeue(item)
                return
            self._start_request(item)

    def _requeue(self, request: _Request) -> None:
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._fail_request(request.future,
                               QueueFull("generation queue overflowed while "
                                         "re-queueing; retry with backoff"))

    def _start_request(self, request: _Request) -> None:
        """Prefill one request into a free slot (solo — batch-1 numerics)."""
        if not request.future.set_running_or_notify_cancel():
            return
        slot = self._free.pop()
        try:
            self.model.prefill(self.state, np.array([slot], dtype=np.int64),
                               request.source[None, :])
        except Exception as error:  # noqa: BLE001 — a bad request must not kill the loop
            self._free.append(slot)
            try:
                request.future.set_exception(error)
            except Exception:  # pragma: no cover — future already resolved
                pass
            return
        request.slot = slot
        request.last_token = self.bos_id
        self._active[slot] = request

    def _step(self) -> None:
        """One batched decode step across every active slot."""
        rows = np.array(sorted(self._active), dtype=np.int64)
        tokens = np.array([self._active[slot].last_token for slot in rows],
                          dtype=np.int64)
        try:
            logits = self.model.decode_step(self.state, tokens, rows=rows)
        except Exception as error:  # noqa: BLE001 — fail the batch, keep serving
            for slot in rows:
                self._finish(self._active[slot], error=error)
            return
        logprobs = token_logprobs(logits)
        with self._lock:
            self._steps += 1
            self._step_rows += rows.shape[0]
        for position, slot in enumerate(rows):
            request = self._active[int(slot)]
            token = request.strategy.select(logits[position], request.rng)
            if token == self.eos_id or token == self.pad_id:
                self._finish(request, reason="eos")
                continue
            request.tokens.append(token)
            request.logprobs.append(float(logprobs[position, token]))
            request.last_token = token
            with self._lock:
                self._tokens_generated += 1
            if len(request.tokens) >= request.max_new_tokens:
                self._finish(request, reason="length")
            elif int(self.state.lengths[int(slot)]) >= self.state.max_len:
                self._finish(request, reason="max_len")

    def _finish(self, request: _Request, reason: str | None = None,
                error: Exception | None = None) -> None:
        del self._active[request.slot]
        self._free.append(request.slot)
        try:
            if error is not None:
                request.future.set_exception(error)
            else:
                with self._lock:
                    self._completed += 1
                request.future.set_result({
                    "tokens": list(request.tokens),
                    "logprobs": list(request.logprobs),
                    "finish_reason": reason,
                    "steps": len(request.tokens),
                })
        except Exception:  # pragma: no cover — future already resolved
            pass

    def _fail_request(self, future: Future, error: Exception) -> None:
        if future.set_running_or_notify_cancel():
            try:
                future.set_exception(error)
            except Exception:  # pragma: no cover
                pass

    def _fail_pending(self) -> None:
        error = EngineClosed("generation engine closed before this request "
                            "was scheduled; retry against a live server")
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                self._fail_request(item.future, error)
        for slot in list(self._active):
            self._fail_request(self._active.pop(slot).future, error)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """QueuedEngine-schema counters plus the ``generation`` section.

        ``samples`` counts generated tokens (the unit of work a step
        produces) and ``batches`` counts decode steps, so ``mean_batch_rows``
        reads as the average number of sequences sharing a forward.
        """
        with self._lock:
            steps = self._steps
            step_rows = self._step_rows
            tokens = self._tokens_generated
            stats = {
                "engine": self.name,
                "requests": self._requests,
                "samples": tokens,
                "batches": steps,
                "mean_batch_rows": (step_rows / steps) if steps else 0.0,
                "queue_depth": self._queue.qsize(),
                "queue_size": self.queue_size,
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_ms,
                "closed": self._closed,
                "generation": {
                    "tokens_generated": tokens,
                    "completed": self._completed,
                    "active_sequences": len(self._active),
                    "mean_batch_occupancy":
                        (step_rows / (steps * self.max_batch)) if steps else 0.0,
                    "slots": self.max_batch,
                    "cache": self.state.describe(),
                },
            }
        return stats
