"""Generation subsystem: KV-cached incremental decode + continuous batching.

Layering mirrors the prediction stack:

* :class:`DecodeState` — the per-slot KV caches the incremental decoder of
  :class:`~repro.models.transformer.Transformer` reads and writes.
* :mod:`~repro.serve.generate.strategies` — pluggable token selection
  (greedy, temperature/top-k sampling) with deterministic per-request seeds.
* :class:`GenerationEngine` — continuous batching: one batched decode step
  per token across all in-flight sequences, admission between steps,
  immediate retirement.
* :class:`GenerationPredictor` — the bundle-facing façade
  :func:`repro.serve.load` returns for bundles carrying a ``generation``
  section, giving ``repro serve`` / ``repro generate`` a surface shaped
  like :class:`~repro.serve.Predictor`.
"""

from __future__ import annotations

import numpy as np

from ...data.vocabulary import Vocabulary
from ...io.bundle import Bundle, load_bundle
from .engine import GenerationEngine
from .state import DecodeState
from .strategies import (GenerationStrategy, GreedyStrategy, SamplingStrategy,
                         STRATEGY_NAMES, make_strategy, token_logprobs)

__all__ = ["DecodeState", "GenerationEngine", "GenerationPredictor",
           "GenerationStrategy", "GreedyStrategy", "SamplingStrategy",
           "make_strategy", "token_logprobs", "generation_bundle_info",
           "STRATEGY_NAMES"]


def generation_bundle_info(task) -> dict:
    """The ``generation`` bundle section for a model trained on ``task``.

    Everything :class:`GenerationPredictor` needs to serve the bundle:
    the delimiter ids, the position budget and both vocabularies (as plain
    id→token lists, so the section stays JSON-safe).
    """
    return {
        "bos_id": int(task.bos_id),
        "eos_id": int(task.eos_id),
        "pad_id": int(task.pad_id),
        "max_len": int(task.max_len),
        "source_vocab": list(task.source_vocab.id_to_token),
        "target_vocab": list(task.target_vocab.id_to_token),
    }


def _rebuild_vocabulary(id_to_token) -> Vocabulary | None:
    """Reconstruct a :class:`Vocabulary` from its serialized id→token list."""
    if not id_to_token:
        return None
    vocabulary = Vocabulary(id_to_token[4:])  # specials re-add themselves
    if vocabulary.id_to_token != list(id_to_token):
        raise ValueError("generation bundle vocabulary does not round-trip; "
                         "its first four entries must be the standard "
                         "<pad>/<bos>/<eos>/<unk> specials")
    return vocabulary


class GenerationPredictor:
    """Serving façade for a generation bundle: engine + vocab + metadata.

    Built by :func:`repro.serve.load` when a bundle's section carries
    ``generation`` metadata (see :func:`generation_bundle_info`).  The
    constructor accepts — and deliberately ignores — the prediction-stack
    knobs ``engine``/``workers``/``compile`` so :func:`repro.serve.serve`
    can pass its shared load options to every mounted model regardless of
    kind; ``max_batch`` becomes the decode-slot count and
    ``max_wait_ms``/``queue_size`` configure the engine queue.
    """

    def __init__(self, bundle_or_path, max_batch: int = 8, warm: bool = False,
                 engine=None, max_wait_ms: float | None = None,
                 queue_size: int | None = None, compile: bool = True,
                 workers: int | None = None, max_len: int | None = None,
                 seed: int = 0):
        bundle = bundle_or_path if isinstance(bundle_or_path, Bundle) \
            else load_bundle(bundle_or_path)
        section = bundle.section.get("generation")
        if not section:
            raise ValueError(f"bundle {bundle.path} carries no 'generation' "
                             f"section; load it with repro.serve.Predictor")
        self.bundle = bundle
        self.model = bundle.model
        self.bos_id = int(section["bos_id"])
        self.eos_id = int(section["eos_id"])
        self.pad_id = int(section.get("pad_id", 0))
        self.max_len = int(section.get("max_len") or self.model.max_len)
        if max_len is not None:
            self.max_len = min(self.max_len, int(max_len))
        self.source_vocab = _rebuild_vocabulary(section.get("source_vocab"))
        self.target_vocab = _rebuild_vocabulary(section.get("target_vocab"))
        self.engine = GenerationEngine(
            self.model, bos_id=self.bos_id, eos_id=self.eos_id,
            max_batch=max_batch, max_len=self.max_len,
            max_wait_ms=max_wait_ms if max_wait_ms is not None else 2.0,
            queue_size=queue_size if queue_size is not None else 256,
            seed=seed)
        # `warm` is accepted for load()-option symmetry: the decode state is
        # preallocated by the engine, so there is nothing left to warm.

    @classmethod
    def from_bundle(cls, bundle_or_path, **options) -> "GenerationPredictor":
        return cls(bundle_or_path, **options)

    # -- input/output mapping --------------------------------------------------

    def encode_source(self, text) -> list[int]:
        """Whitespace-tokenize ``text`` through the bundled source vocabulary."""
        if self.source_vocab is None:
            raise ValueError("this bundle ships no source vocabulary; pass "
                             "token ids instead of text")
        return self.source_vocab.encode(str(text).split(), add_eos=True)

    def _as_sequences(self, inputs) -> list[np.ndarray]:
        """Normalize one-or-many sources (ids or text) into id arrays."""
        if isinstance(inputs, str):
            inputs = [inputs]
        elif isinstance(inputs, np.ndarray):
            inputs = inputs[None, :] if inputs.ndim == 1 else inputs
        elif isinstance(inputs, (list, tuple)) and inputs \
                and not isinstance(inputs[0], (str, list, tuple, np.ndarray)):
            inputs = [inputs]  # one flat id sequence
        sequences = []
        for item in inputs:
            ids = self.encode_source(item) if isinstance(item, str) else item
            sequences.append(np.asarray(ids, dtype=np.int64))
        if not sequences:
            raise ValueError("generate needs at least one input sequence")
        return sequences

    # -- generation ------------------------------------------------------------

    def generate(self, inputs, max_new_tokens: int | None = None,
                 strategy=None, temperature: float | None = None,
                 top_k: int | None = None, seed: int | None = None,
                 normalize: bool = True, timeout: float | None = None
                 ) -> list[dict]:
        """Generate for one-or-many sources; one result record per input.

        Each record is the engine's result dict (``tokens``, per-step
        ``logprobs``, ``finish_reason``, ``steps``) plus ``text`` when the
        bundle ships a target vocabulary.  ``normalize`` is accepted (and
        ignored) for interface symmetry with the prediction stack.
        """
        futures = [self.engine.submit(sequence, max_new_tokens=max_new_tokens,
                                      strategy=strategy, temperature=temperature,
                                      top_k=top_k, seed=seed)
                   for sequence in self._as_sequences(inputs)]
        results = []
        for future in futures:
            record = dict(future.result(timeout=timeout))
            if self.target_vocab is not None:
                record["text"] = " ".join(self.target_vocab.decode(
                    record["tokens"]))
            results.append(record)
        return results

    def predict(self, inputs, **kwargs):
        raise ValueError("this bundle is a generation model; call generate() "
                         "(or POST .../generate over HTTP) instead of predict")

    predict_logits = predict_proba = predict_topk = predict

    # -- introspection / lifecycle ---------------------------------------------

    @property
    def classes(self):
        return None

    @property
    def input_shape(self):
        return None

    def warm(self, *args, **kwargs) -> None:
        """No-op: the decode state is preallocated at construction."""

    def describe(self) -> dict:
        spec = self.bundle.spec
        return {
            "model": spec.get("name"),
            "type": "generation",
            "engine": self.engine.name,
            "parameters": int(self.model.num_parameters()),
            "max_len": self.max_len,
            "bos_id": self.bos_id,
            "eos_id": self.eos_id,
            "pad_id": self.pad_id,
            "source_vocab_size": len(self.source_vocab)
            if self.source_vocab else None,
            "target_vocab_size": len(self.target_vocab)
            if self.target_vocab else None,
            "slots": self.engine.max_batch,
        }

    def stats(self) -> dict:
        return self.engine.stats()

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "GenerationPredictor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
