"""Per-sequence decode caches: the mutable state behind incremental decoding.

A :class:`DecodeState` owns every array the KV-cached decode path of
:class:`~repro.models.transformer.Transformer` writes between steps, for a
fixed number of *slots* (concurrent sequences):

* ``self_keys`` / ``self_values`` — one ``(slots, heads, capacity, head_dim)``
  cache pair per decoder layer for the self-attention keys/values of every
  token decoded so far.  ``capacity`` starts small and doubles on demand up
  to ``max_len`` (:meth:`ensure_capacity`), so a fleet of mostly-short
  sequences never pays for the worst case.
* ``memory_keys`` / ``memory_values`` — one ``(slots, heads, src_capacity,
  head_dim)`` pair per layer holding the cross-attention projections of the
  encoder memory, computed exactly once per sequence at prefill.
* ``key_mask`` — additive ``(slots, capacity)`` mask over decoded positions:
  ``0.0`` where a real (non-pad) token sits, ``-1e9`` for pad tokens and
  for positions not yet filled.  Slicing it to the current window *is* the
  causal + target-padding mask of the full-prefix recompute, which is what
  makes the incremental path byte-identical to
  :meth:`~repro.models.transformer.Transformer.decode`.
* ``src_mask`` — additive ``(slots, 1, 1, src_capacity)`` source padding
  mask; columns beyond a sequence's own source length stay masked, so slots
  prefixed with different source lengths batch into one step safely.
* ``lengths`` — decoded positions per slot (the per-row time index, so rows
  at different depths step together in one ragged batch).

Slot reuse is free: :meth:`reset_rows` only clears the masks and lengths —
stale cache values are finite and carry exactly zero attention weight, so
they never leak into a new sequence's output.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecodeState"]

_NEG_INF = -1e9

#: Initial per-slot self-attention cache capacity (grown by doubling).
DEFAULT_INITIAL_CAPACITY = 16


class DecodeState:
    """Preallocated, slot-addressed KV caches for incremental decoding."""

    def __init__(self, slots: int, num_layers: int, num_heads: int,
                 head_dim: int, max_len: int, src_capacity: int,
                 initial_capacity: int = DEFAULT_INITIAL_CAPACITY,
                 dtype: np.dtype | type = np.float64):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if max_len < 1:
            raise ValueError(f"max_len must be >= 1, got {max_len}")
        if src_capacity < 1:
            raise ValueError(f"src_capacity must be >= 1, got {src_capacity}")
        self.slots = int(slots)
        self.num_layers = int(num_layers)
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)
        self.max_len = int(max_len)
        self.src_capacity = int(src_capacity)
        self.capacity = min(max(1, int(initial_capacity)), self.max_len)
        self.grows = 0
        self.dtype = np.dtype(dtype)

        def kv(length: int) -> list[np.ndarray]:
            return [np.zeros((self.slots, self.num_heads, length, self.head_dim),
                             dtype=self.dtype) for _ in range(self.num_layers)]

        self.self_keys = kv(self.capacity)
        self.self_values = kv(self.capacity)
        self.memory_keys = kv(self.src_capacity)
        self.memory_values = kv(self.src_capacity)
        self.key_mask = np.full((self.slots, self.capacity), _NEG_INF,
                                dtype=np.float32)
        self.src_mask = np.full((self.slots, 1, 1, self.src_capacity), _NEG_INF,
                                dtype=np.float32)
        self.lengths = np.zeros(self.slots, dtype=np.int64)

    # -- lifecycle -------------------------------------------------------------

    def reset_rows(self, rows: np.ndarray) -> None:
        """Recycle ``rows`` for new sequences (cache values stay — masked)."""
        rows = np.asarray(rows, dtype=np.int64)
        self.lengths[rows] = 0
        self.key_mask[rows, :] = _NEG_INF
        self.src_mask[rows] = _NEG_INF

    def ensure_capacity(self, needed: int) -> None:
        """Grow the self-attention caches (doubling) to hold ``needed`` steps."""
        if needed <= self.capacity:
            return
        if needed > self.max_len:
            raise ValueError(f"decode position {needed} exceeds max_len "
                             f"{self.max_len}")
        new_capacity = min(self.max_len, max(needed, self.capacity * 2))

        def grown(caches: list[np.ndarray]) -> list[np.ndarray]:
            fresh = []
            for cache in caches:
                bigger = np.zeros((self.slots, self.num_heads, new_capacity,
                                   self.head_dim), dtype=self.dtype)
                bigger[:, :, :self.capacity, :] = cache
                fresh.append(bigger)
            return fresh

        self.self_keys = grown(self.self_keys)
        self.self_values = grown(self.self_values)
        mask = np.full((self.slots, new_capacity), _NEG_INF, dtype=np.float32)
        mask[:, :self.capacity] = self.key_mask
        self.key_mask = mask
        self.capacity = new_capacity
        self.grows += 1

    # -- introspection ---------------------------------------------------------

    def occupancy(self, rows: np.ndarray | None = None) -> float:
        """Mean filled fraction of the position budget over ``rows`` (or all)."""
        lengths = self.lengths if rows is None else self.lengths[np.asarray(rows)]
        if lengths.size == 0:
            return 0.0
        return float(lengths.sum()) / (lengths.size * self.max_len)

    def cache_bytes(self) -> int:
        """Total bytes currently held by the KV caches (growth telemetry)."""
        arrays = (self.self_keys + self.self_values + self.memory_keys
                  + self.memory_values)
        return int(sum(array.nbytes for array in arrays)
                   + self.key_mask.nbytes + self.src_mask.nbytes)

    def describe(self) -> dict:
        return {
            "slots": self.slots,
            "capacity": self.capacity,
            "max_len": self.max_len,
            "src_capacity": self.src_capacity,
            "grows": self.grows,
            "cache_bytes": self.cache_bytes(),
        }

    def __repr__(self) -> str:
        return (f"DecodeState(slots={self.slots}, layers={self.num_layers}, "
                f"capacity={self.capacity}/{self.max_len})")
