"""Token-selection strategies for the generation engine.

A strategy turns one row of next-token logits into a chosen token id.  The
interface is deliberately tiny — ``select(logits, rng)`` — so new decoding
schemes (nucleus sampling, beam stubs, constrained decoding) plug in without
touching the engine: the engine owns *when* a row is stepped, a strategy
owns *which* token the row emits.

Determinism: strategies are stateless; all randomness flows through the
``rng`` argument, a per-request ``numpy`` generator the engine seeds via
:func:`repro.parallel.seeding.derive_seed`.  Two submissions with the same
seed therefore produce identical samples regardless of how the continuous
batch interleaves them with other traffic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GenerationStrategy", "GreedyStrategy", "SamplingStrategy",
           "make_strategy", "token_logprobs", "STRATEGY_NAMES"]

#: Valid ``strategy`` names for :func:`make_strategy` (and the HTTP/CLI knob).
STRATEGY_NAMES = ("greedy", "sample")


def token_logprobs(logits: np.ndarray) -> np.ndarray:
    """Log-softmax over the last axis, numerically stable.

    Used to report per-step log-probabilities of the chosen tokens; computed
    from the *raw* logits, so the reported numbers are comparable across
    strategies (temperature reshapes the sampling distribution, not the
    model's own confidence).
    """
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class GenerationStrategy:
    """Interface: map one ``(vocab,)`` logits row to a token id."""

    name = "base"

    def select(self, logits: np.ndarray, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def describe(self) -> dict:
        return {"strategy": self.name}


class GreedyStrategy(GenerationStrategy):
    """Deterministic argmax decoding (ties break to the lowest id)."""

    name = "greedy"

    def select(self, logits: np.ndarray, rng: np.random.Generator) -> int:
        return int(np.asarray(logits).argmax())


class SamplingStrategy(GenerationStrategy):
    """Temperature + top-k sampling.

    ``temperature`` rescales the logits before the softmax (lower is
    greedier; must be positive).  ``top_k`` (optional) restricts sampling to
    the k highest-scoring tokens.  Sampling uses the inverse-CDF trick on a
    single ``rng.random()`` draw, so one request consumes exactly one draw
    per step — the stream stays aligned however the batch is scheduled.
    """

    name = "sample"

    def __init__(self, temperature: float = 1.0, top_k: int | None = None):
        temperature = float(temperature)
        if not temperature > 0.0:
            raise ValueError(f"temperature must be > 0, got {temperature}")
        if top_k is not None and int(top_k) < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.temperature = temperature
        self.top_k = int(top_k) if top_k is not None else None

    def select(self, logits: np.ndarray, rng: np.random.Generator) -> int:
        logits = np.asarray(logits, dtype=np.float64) / self.temperature
        if self.top_k is not None and self.top_k < logits.shape[-1]:
            keep = np.argpartition(logits, -self.top_k)[-self.top_k:]
            masked = np.full_like(logits, -np.inf)
            masked[keep] = logits[keep]
            logits = masked
        probabilities = np.exp(token_logprobs(logits))
        cumulative = np.cumsum(probabilities)
        draw = rng.random() * cumulative[-1]
        return int(np.searchsorted(cumulative, draw, side="right")
                   .clip(0, logits.shape[-1] - 1))

    def describe(self) -> dict:
        return {"strategy": self.name, "temperature": self.temperature,
                "top_k": self.top_k}


def make_strategy(strategy=None, temperature: float | None = None,
                  top_k: int | None = None) -> GenerationStrategy:
    """Resolve a strategy name (or pass an instance through).

    ``None`` means greedy — unless a sampling knob (``temperature`` or
    ``top_k``) was given, which implies ``"sample"``; naming ``"greedy"``
    while also passing sampling knobs is rejected as contradictory.
    """
    if isinstance(strategy, GenerationStrategy):
        return strategy
    if strategy is None:
        strategy = "greedy" if temperature is None and top_k is None \
            else "sample"
    if strategy == "greedy":
        if temperature is not None or top_k is not None:
            raise ValueError("greedy decoding takes no temperature/top_k; "
                             "use strategy='sample' for those knobs")
        return GreedyStrategy()
    if strategy == "sample":
        return SamplingStrategy(
            temperature=temperature if temperature is not None else 1.0,
            top_k=top_k)
    valid = ", ".join(repr(name) for name in STRATEGY_NAMES)
    raise ValueError(f"unknown generation strategy {strategy!r}; valid: {valid}")
