"""Pre/post-processing around an inference session.

The session speaks raw float arrays and logits; this module turns it into a
classification service:

* **preprocess** — accept nested lists or arrays, promote a single sample to a
  batch of one (when the expected ``input_shape`` is known), cast to float32
  and apply the bundle's training-time normalization so callers can send raw
  pixel values.
* **postprocess** — stable softmax over the logits, then top-k selection with
  class labels, producing JSON-ready prediction records.

Everything here is pure NumPy on plain arrays — no tensors, no graph — so
the only locked, stateful stage of a request is the forward, which
:meth:`Pipeline.logits` hands to the attached serving engine (or straight to
the session when no engine is attached).  That method is the single
dispatch point every prediction path goes through.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "top_k", "Pipeline"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax over plain NumPy logits."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def top_k(probabilities: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and probabilities of the ``k`` largest entries per row.

    Returns ``(indices, values)`` of shape ``(batch, k)``, sorted by
    descending probability (ties broken by ascending class index, so the
    output is fully deterministic).
    """
    probabilities = np.atleast_2d(np.asarray(probabilities))
    k = max(1, min(int(k), probabilities.shape[-1]))
    # argsort on (-p, index) via stable sort of -p: identical probabilities
    # keep ascending index order.
    order = np.argsort(-probabilities, axis=-1, kind="stable")[:, :k]
    values = np.take_along_axis(probabilities, order, axis=-1)
    return order, values


class Pipeline:
    """Normalization-in, top-k-out classification pipeline over a session.

    Parameters mirror the bundle metadata and default from the session's
    bundle when one is attached; every knob can be overridden for models
    served without a bundle (e.g. an in-memory model in tests).
    """

    def __init__(self, session, normalization: dict | None = None,
                 classes: list[str] | None = None,
                 input_shape: tuple | None = None, engine=None,
                 compile: bool | None = None):
        bundle = getattr(session, "bundle", None)
        self.session = session
        self.engine = engine
        # ``compile=`` overrides the session's trace-and-replay switch (leave
        # None to keep whatever the session was built with).
        if compile is not None and hasattr(session, "compile_enabled"):
            session.compile_enabled = bool(compile)
        self.normalization = normalization if normalization is not None else \
            (bundle.normalization if bundle is not None else None)
        self.classes = classes if classes is not None else \
            (bundle.classes if bundle is not None else None)
        self.input_shape = tuple(input_shape) if input_shape is not None else \
            (bundle.input_shape if bundle is not None else None)

    # -- stages ---------------------------------------------------------------

    def preprocess(self, inputs, normalize: bool = True) -> np.ndarray:
        """Validate, batch, cast and normalize raw inputs."""
        array = np.asarray(inputs, dtype=np.float32)
        if self.input_shape is not None:
            if array.shape == self.input_shape:
                array = array[None, ...]  # single sample → batch of one
            elif array.shape[1:] != self.input_shape:
                raise ValueError(
                    f"input shape {tuple(array.shape)} does not match the "
                    f"model's per-sample shape {self.input_shape} (batched: "
                    f"{(-1, *self.input_shape)})")
        if normalize and self.normalization is not None:
            mean = np.float32(self.normalization["mean"])
            std = np.float32(self.normalization["std"])
            array = (array - mean) / std
        return array

    def postprocess(self, logits: np.ndarray, k: int = 1) -> list[dict]:
        """Turn a batch of logits into JSON-ready prediction records."""
        probabilities = softmax(logits)
        indices, values = top_k(probabilities, k)
        records = []
        for row_indices, row_values in zip(indices, values):
            entries = [{"class_index": int(index),
                        "label": self._label(int(index)),
                        "probability": float(value)}
                       for index, value in zip(row_indices, row_values)]
            records.append({**entries[0], "top_k": entries})
        return records

    def _label(self, index: int) -> str:
        if self.classes is not None and 0 <= index < len(self.classes):
            return str(self.classes[index])
        return f"class_{index}"

    # -- end to end -------------------------------------------------------------

    def logits(self, inputs, normalize: bool = True,
               timeout: float | None = None) -> np.ndarray:
        """Preprocess and run the forward — the single dispatch point.

        When an engine is attached the forward is *submitted* to it (so e.g.
        a :class:`~repro.serve.batching.BatchedEngine` can fuse it with
        concurrent requests); without one it runs directly on the session.
        ``timeout`` bounds the wait for an engine result.
        """
        batch = self.preprocess(inputs, normalize=normalize)
        if self.engine is not None:
            return self.engine.predict(batch, timeout=timeout)
        return self.session.predict(batch)

    def predict(self, inputs, k: int = 1, normalize: bool = True,
                timeout: float | None = None) -> list[dict]:
        """Full request path: preprocess → scheduled forward → top-k records."""
        return self.postprocess(
            self.logits(inputs, normalize=normalize, timeout=timeout), k=k)
