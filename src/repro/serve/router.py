"""Named multi-model routing for the v1 serving API.

A :class:`ModelRouter` is an ordered mapping of model names to live
:class:`~repro.serve.Predictor` instances plus the notion of a *default*
model (the target of the legacy ``/predict`` and ``/healthz`` shims).  The
HTTP layer holds exactly one router and resolves every request path through
it; in-process embedders can use it the same way to serve several bundles
behind one object.
"""

from __future__ import annotations

__all__ = ["ModelRouter"]


class ModelRouter:
    """Name → predictor routing table with a designated default model.

    The first model added becomes the default unless another is promoted
    via ``add(..., default=True)`` or :meth:`set_default`.  Lookups with an
    unknown name raise ``KeyError`` listing the available models — the HTTP
    layer forwards that message on its 404s.
    """

    def __init__(self, models: dict | None = None, default: str | None = None):
        self._models: dict[str, object] = {}
        self._default: str | None = None
        for name, predictor in (models or {}).items():
            self.add(name, predictor)
        if default is not None:
            self.set_default(default)

    # -- mutation --------------------------------------------------------------

    def add(self, name: str, predictor, default: bool = False) -> None:
        """Mount ``predictor`` under ``name`` (first added becomes default)."""
        name = str(name)
        if not name or "/" in name:
            raise ValueError(f"model name {name!r} must be non-empty and "
                             f"contain no '/' (it becomes a URL segment)")
        self._models[name] = predictor
        if default or self._default is None:
            self._default = name

    def set_default(self, name: str) -> None:
        if name not in self._models:
            raise KeyError(self._unknown(name))
        self._default = name

    # -- lookup ----------------------------------------------------------------

    def get(self, name: str | None = None):
        """The predictor mounted under ``name`` (default model when ``None``)."""
        if name is None:
            name = self._default
        if name is None or name not in self._models:
            raise KeyError(self._unknown(name))
        return self._models[name]

    def _unknown(self, name) -> str:
        available = ", ".join(sorted(self._models)) or "none"
        return f"unknown model {name!r}; available models: {available}"

    @property
    def default_name(self) -> str | None:
        return self._default

    @property
    def default(self):
        """The default predictor (raises ``KeyError`` on an empty router)."""
        return self.get(None)

    def names(self) -> list[str]:
        return list(self._models)

    def items(self):
        return self._models.items()

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name) -> bool:
        return name in self._models

    # -- introspection / lifecycle ---------------------------------------------

    def describe(self) -> dict:
        """The ``GET /v1/models`` payload: every model plus the default."""
        return {
            "models": [{"name": name, "default": name == self._default,
                        **predictor.describe()}
                       for name, predictor in self._models.items()],
            "default": self._default,
        }

    def stats(self) -> dict:
        """Per-model engine scheduling stats (the ``GET /v1/stats`` payload)."""
        return {name: predictor.stats() for name, predictor in self._models.items()}

    def close(self) -> None:
        """Close every mounted predictor's engine (failing queued work loudly)."""
        for predictor in self._models.values():
            predictor.close()
