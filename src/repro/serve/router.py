"""Named multi-model routing for the v1 serving API.

A :class:`ModelRouter` is an ordered mapping of model names to live
:class:`~repro.serve.ops.ManagedModel` mounts plus the notion of a *default*
model (the target of the legacy ``/predict`` and ``/healthz`` shims).  The
HTTP layer holds exactly one router and resolves every request path through
it; in-process embedders can use it the same way to serve several bundles
behind one object.

Every predictor added to the router is wrapped in a
:class:`~repro.serve.ops.ManagedModel`, which is what makes the mount table
*operable*: the router exposes per-model hot reload, canary/shadow staging,
promote, and clear-canary — the verbs behind the
``/v1/admin/models/<name>/...`` HTTP API — and its per-model stats carry
latency histograms and admission gauges.
"""

from __future__ import annotations

from .engine import EngineClosed
from .ops import ManagedModel

__all__ = ["ModelRouter"]


class ModelRouter:
    """Name → managed-model routing table with a designated default model.

    The first model added becomes the default unless another is promoted
    via ``add(..., default=True)`` or :meth:`set_default`.  Lookups with an
    unknown name raise ``KeyError`` listing the available models — the HTTP
    layer forwards that message on its 404s.
    """

    def __init__(self, models: dict | None = None, default: str | None = None):
        self._models: dict[str, ManagedModel] = {}
        self._default: str | None = None
        self._closed = False
        for name, predictor in (models or {}).items():
            self.add(name, predictor)
        if default is not None:
            self.set_default(default)

    # -- mutation --------------------------------------------------------------

    def add(self, name: str, predictor, default: bool = False,
            source: str | None = None, load_options: dict | None = None,
            max_inflight: int | None = None) -> ManagedModel:
        """Mount ``predictor`` under ``name`` (first added becomes default).

        Plain predictors are wrapped in a :class:`ManagedModel`;
        ``ManagedModel`` instances pass through unwrapped, so re-mounting
        ``router.get(name)`` under a second name shares the same mount.
        ``source``/``load_options``/``max_inflight`` configure the wrapper
        (bundle path for reloads, inherited :func:`repro.serve.load` options,
        per-model admission cap).
        """
        name = str(name)
        if not name or "/" in name:
            raise ValueError(f"model name {name!r} must be non-empty and "
                             f"contain no '/' (it becomes a URL segment)")
        if self._closed:
            raise EngineClosed(
                f"router is closed; cannot mount model {name!r}")
        if not isinstance(predictor, ManagedModel):
            predictor = ManagedModel(predictor, source=source,
                                     load_options=load_options,
                                     max_inflight=max_inflight)
        self._models[name] = predictor
        if default or self._default is None:
            self._default = name
        return predictor

    def set_default(self, name: str) -> None:
        if name not in self._models:
            raise KeyError(self._unknown(name))
        self._default = name

    # -- lookup ----------------------------------------------------------------

    def get(self, name: str | None = None) -> ManagedModel:
        """The managed model mounted under ``name`` (default when ``None``)."""
        if name is None:
            name = self._default
        if name is None or name not in self._models:
            raise KeyError(self._unknown(name))
        return self._models[name]

    def _unknown(self, name) -> str:
        available = ", ".join(sorted(self._models)) or "none"
        return f"unknown model {name!r}; available models: {available}"

    @property
    def default_name(self) -> str | None:
        return self._default

    @property
    def default(self) -> ManagedModel:
        """The default model (raises ``KeyError`` on an empty router)."""
        return self.get(None)

    def names(self) -> list[str]:
        return list(self._models)

    def items(self):
        return self._models.items()

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name) -> bool:
        return name in self._models

    # -- control plane (the admin API's verbs) ---------------------------------

    def reload(self, name: str | None = None, bundle: str | None = None,
               options: dict | None = None) -> dict:
        """Hot-swap one model's bundle; see :meth:`ManagedModel.reload`."""
        return self.get(name).reload(bundle=bundle, options=options)

    def set_canary(self, name: str | None = None, bundle: str | None = None,
                   percent: float = 10.0, shadow: bool = False,
                   options: dict | None = None) -> dict:
        """Stage a candidate bundle on one model (split or shadow traffic)."""
        if bundle is None:
            raise ValueError("set_canary needs a candidate bundle path")
        return self.get(name).set_canary(bundle, percent=percent,
                                         shadow=shadow, options=options)

    def promote(self, name: str | None = None) -> dict:
        """Swap one model's staged canary in as its primary."""
        return self.get(name).promote()

    def clear_canary(self, name: str | None = None) -> dict:
        """Retire one model's staged canary without touching its primary."""
        return self.get(name).clear_canary()

    # -- introspection / lifecycle ---------------------------------------------

    def describe(self) -> dict:
        """The ``GET /v1/models`` payload: every model plus the default."""
        return {
            "models": [{"name": name, "default": name == self._default,
                        **model.describe()}
                       for name, model in self._models.items()],
            "default": self._default,
        }

    def stats(self) -> dict:
        """Per-model control-plane stats (the ``models`` half of /v1/stats)."""
        return {name: model.stats() for name, model in self._models.items()}

    def close(self) -> None:
        """Drain and close every mounted model; idempotent.

        Models are deduplicated first (the same :class:`ManagedModel` can be
        mounted under several names), and ``ManagedModel.close`` is itself
        idempotent, so double-``close()`` — or closing a router that shares
        mounts — is safe.
        """
        if self._closed:
            return
        self._closed = True
        seen: set[int] = set()
        for model in self._models.values():
            if id(model) not in seen:
                seen.add(id(model))
                model.close()
