"""Multi-process serving: a warm worker pool behind the batching scheduler.

:class:`~repro.serve.batching.BatchedEngine` coalesces concurrent requests
into fused forwards, but every fused forward still runs on *one* GIL-bound
interpreter — PR 5/6's wins (dynamic batching, compiled replay) cannot scale
past a single core.  :class:`ProcessPoolEngine` breaks that ceiling the same
way :mod:`repro.parallel` scales experiment sweeps: N warm worker processes,
each holding its own loaded bundle and plan cache, with the parent sharding
work across them.

The composition is deliberate — **batching and multiprocessing compose
instead of competing**:

* The engine *is* a :class:`~repro.serve.batching.QueuedEngine`: the exact
  bounded-queue / ``max_batch``-rows-or-``max_wait_ms`` coalescing policy of
  the batched engine assembles batches in the parent.
* Instead of running a batch inline, the scheduler hands it to the next idle
  worker over a request/response :class:`~multiprocessing.Pipe` and
  immediately goes back to coalescing — so up to ``workers`` fused batches
  execute concurrently, one per process.

Workers are spawned (never forked — same ``REPRO_MP_START`` policy as the
sweep executor) running :func:`worker_main`, which:

* bumps ``REPRO_PARALLEL_DEPTH`` so a model that fans out internally sees
  ``effective_jobs() == 1`` and cannot recursively spawn pools;
* seeds deterministically via :func:`~repro.parallel.seeding.derive_seed`
  (root seed × worker id), so *which* worker serves a shard never changes
  the bytes it returns — model weights come from the bundle and inference
  draws no randomness, making pool output byte-identical to
  :class:`~repro.serve.engine.DirectEngine` for aligned batches;
* loads the bundle **by path** (bundles are self-describing ``.npz`` files,
  so nothing unpicklable crosses the process boundary) into its own
  :class:`~repro.serve.InferenceSession`, where the PR 6 trace-and-replay
  plan cache warms per worker.

Worker death follows the sweep executor's **isolate-and-retry** policy: a
broken pipe marks that worker dead, the parent respawns it, the in-flight
batch is retried exactly once on the fresh worker, and a second death fails
those futures with :class:`~repro.serve.engine.EngineError` — clients are
never stranded.  ``close()`` drains the queue, fails still-queued futures
with :class:`~repro.serve.engine.EngineClosed`, then stops the workers
(``stop`` command first, escalating to ``terminate``/``kill``).

Cost model versus the single-process engines: each worker holds a full copy
of the bundle (memory is N × bundle) and spawn adds ~1 s of startup per
worker, in exchange for throughput that scales with cores.  See the
"choosing an engine" table in ARCHITECTURE.md.
"""

from __future__ import annotations

import os
import queue
import threading
import traceback
from multiprocessing import get_context

import numpy as np

from ..parallel.executor import START_METHOD_ENV, parallel_depth
from ..parallel.seeding import derive_seed, seed_task_globals
from ..parallel.worker import DEPTH_ENV
from .batching import QueuedEngine, _demux, _fuse, _request_groups
from .engine import EngineClosed, EngineError

__all__ = ["ProcessPoolEngine", "worker_main"]

#: Shard-queue sentinel telling a dispatcher thread to exit.
_STOP = object()

#: Counters a worker reports with every reply and the parent aggregates.
_PLAN_COUNTER_KEYS = ("plans", "fallback_keys", "hits", "misses", "fallbacks",
                      "replays", "fused_chains", "fused_ops", "arena_bytes")


def worker_main(worker_id: int, bundle_path: str, conn, config: dict) -> None:
    """Entry point of one pool worker process.

    Loads the bundle at ``bundle_path`` into a private
    :class:`~repro.serve.InferenceSession` and answers commands on ``conn``
    until told to stop.  The wire protocol is deliberately tiny:

    * receive ``("predict", array)`` → send ``("ok", outputs, stats)``
      or ``("error", message, traceback)`` (the model raised; the worker
      itself is fine and keeps serving);
    * receive ``("warm", input_shape_or_None)`` → warm the plan cache,
      send ``("ok", None, stats)``;
    * receive ``("stop",)`` → exit cleanly.

    The first message is always ``("ready", info)`` after a successful load
    (or ``("fatal", message, traceback)`` when the bundle cannot be loaded,
    so spawn/respawn failures surface in the parent instead of hanging it).
    """
    # Record the pool layer: effective_jobs() now clamps to 1, so a model
    # that fans out internally cannot recursively spawn pools of pools.
    os.environ[DEPTH_ENV] = str(config.get("depth", 1))
    seed = derive_seed(config.get("seed", 0), "serve-pool", worker_id)
    seed_task_globals(seed)
    try:
        from .session import InferenceSession

        session = InferenceSession(bundle_path,
                                   max_batch=config.get("max_batch", 64),
                                   compile=config.get("compile", True))
    except BaseException as error:  # noqa: BLE001 — reported, not raised
        try:
            conn.send(("fatal", f"{type(error).__name__}: {error}",
                       traceback.format_exc()))
        finally:
            conn.close()
        return

    from ..parallel.executor import effective_jobs

    def worker_stats() -> dict:
        return {
            "pid": os.getpid(),
            "batches": session.batches_served,
            "samples": session.samples_served,
            "plan_cache": session.plan_stats(),
        }

    conn.send(("ready", {
        "pid": os.getpid(),
        "seed": seed,
        "depth": int(os.environ[DEPTH_ENV]),
        "effective_jobs": effective_jobs(),
    }))
    try:
        while True:
            command = conn.recv()
            if command[0] == "stop":
                break
            try:
                if command[0] == "predict":
                    outputs = session.predict(command[1])
                elif command[0] == "warm":
                    session.warm(command[1])
                    outputs = None
                else:
                    raise ValueError(f"unknown pool command {command[0]!r}")
            except BaseException as error:  # noqa: BLE001 — model error: the
                conn.send(("error", f"{type(error).__name__}: {error}",
                           traceback.format_exc()))  # worker itself survives
            else:
                conn.send(("ok", outputs, worker_stats()))
    except (EOFError, KeyboardInterrupt):  # parent vanished / ^C: just exit
        pass
    finally:
        conn.close()


class _Worker:
    """Parent-side handle for one worker process: pipe, liveness, counters."""

    __slots__ = ("worker_id", "process", "conn", "info", "last_stats",
                 "restarts", "lock")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.conn = None
        self.info: dict = {}
        self.last_stats: dict = {}
        self.restarts = 0
        # Serializes pipe access between the owning dispatcher thread and
        # out-of-band callers (warm broadcasts, shutdown).
        self.lock = threading.Lock()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ProcessPoolEngine(QueuedEngine):
    """Shard coalesced batches across N warm worker processes.

    Parameters
    ----------
    session:
        Parent-side :class:`~repro.serve.InferenceSession` **loaded from a
        bundle on disk** — workers re-load the same bundle by path, so an
        in-memory model cannot be pool-served (there is no path to send).
        The parent session itself never runs forwards; it only supplies the
        bundle path, ``max_batch`` default, compile flag and pipeline
        metadata.
    workers:
        Number of worker processes (the concurrency of the pool).
    max_batch / max_wait_ms / queue_size:
        The shared coalescing policy — identical meaning to
        :class:`~repro.serve.batching.BatchedEngine`.
    seed:
        Root seed for deterministic worker identity: worker *i* is seeded
        with ``derive_seed(seed, "serve-pool", i)``.
    """

    name = "pool"

    def __init__(self, session, workers: int = 2, max_batch: int | None = None,
                 max_wait_ms: float = 2.0, queue_size: int = 256,
                 seed: int = 0, autostart: bool = True):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if parallel_depth() > 0:
            raise EngineError(
                "refusing to start a process-pool engine inside a parallel "
                "worker (REPRO_PARALLEL_DEPTH is set); nested pools would "
                "oversubscribe the machine — serve with engine='direct' or "
                "'batched' here instead")
        if getattr(session, "bundle", None) is None or session.bundle.path is None:
            raise EngineError(
                "the pool engine serves bundles loaded from disk (workers "
                "re-load the model by path); construct the session from a "
                "bundle file, or use engine='direct'/'batched' for "
                "in-memory models")
        self.workers = int(workers)
        self.seed = int(seed)
        self.bundle_path = str(session.bundle.path)
        self.restarts = 0
        self._context = get_context(os.environ.get(START_METHOD_ENV, "spawn"))
        # Unbounded hand-off queue between the scheduler and the dispatcher
        # threads; _slots_free bounds it to at most `workers` in-flight
        # shards, so backpressure lands on the main bounded request queue.
        self._shard_queue: queue.Queue = queue.Queue()
        self._slots_free = threading.Semaphore(self.workers)
        self._workers = [_Worker(worker_id) for worker_id in range(self.workers)]
        self._dispatchers: list[threading.Thread] = []
        # The scheduler thread must not start before the workers exist.
        super().__init__(session, max_batch=max_batch, max_wait_ms=max_wait_ms,
                         queue_size=queue_size, autostart=False)
        try:
            for worker in self._workers:
                self._spawn(worker)
        except BaseException:
            self._closed = True
            self._stop_workers()
            raise
        for worker in self._workers:
            thread = threading.Thread(target=self._dispatch_loop, args=(worker,),
                                      name=f"repro-pool-worker-{worker.worker_id}",
                                      daemon=True)
            self._dispatchers.append(thread)
            thread.start()
        if autostart:
            self.start()

    # -- worker lifecycle ------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        """Start (or restart) one worker process and wait for its ready ack."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(worker.worker_id, self.bundle_path, child_conn, {
                "max_batch": self.max_batch,
                "compile": self.session.compile_enabled,
                "seed": self.seed,
                "depth": parallel_depth() + 1,
            }),
            name=f"repro-pool-{worker.worker_id}",
            daemon=True)
        process.start()
        child_conn.close()  # the child holds its own copy
        try:
            reply = parent_conn.recv()
        except (EOFError, OSError) as error:
            process.join(1.0)
            parent_conn.close()
            raise EngineError(
                f"pool worker {worker.worker_id} died before answering ready "
                f"(exitcode {process.exitcode})") from error
        if reply[0] != "ready":
            process.join(1.0)
            parent_conn.close()
            raise EngineError(
                f"pool worker {worker.worker_id} failed to load bundle "
                f"{self.bundle_path!r}: {reply[1]}\n{reply[2]}")
        worker.process = process
        worker.conn = parent_conn
        worker.info = reply[1]

    def _discard(self, worker: _Worker) -> None:
        """Isolate a dead/suspect worker: close its pipe, reap the process."""
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        if worker.process is not None:
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(2.0)
            worker.process = None

    def _respawn(self, worker: _Worker) -> None:
        """Isolate-and-retry step 1: replace a dead worker with a fresh one."""
        self._discard(worker)
        self._spawn(worker)
        worker.restarts += 1
        with self._stats_lock:
            self.restarts += 1

    # -- scheduling ------------------------------------------------------------

    def _handle_batch(self, batch) -> None:
        """Hand one coalesced batch to the next idle worker.

        Blocks while every worker is busy (that is the backpressure that
        keeps the bounded request queue meaningful), but keeps checking the
        closed flag so ``close()`` during a saturated pool fails the batch
        with :class:`EngineClosed` instead of deadlocking the scheduler.
        """
        while not self._slots_free.acquire(timeout=0.05):
            if self._closed:
                self._fail_batch(batch, EngineClosed(
                    "serving engine closed while the request was still "
                    "queued; the server is shutting down — retry against "
                    "a live server"))
                return
        if self._closed:
            self._slots_free.release()
            self._fail_batch(batch, EngineClosed(
                "serving engine closed while the request was still queued; "
                "the server is shutting down — retry against a live server"))
            return
        self._shard_queue.put(batch)

    def _dispatch_loop(self, worker: _Worker) -> None:
        """One thread per worker: pull shards and run them on that worker."""
        while True:
            shard = self._shard_queue.get()
            if shard is _STOP:
                return
            try:
                self._run_shard(worker, shard)
            finally:
                self._slots_free.release()

    def _run_shard(self, worker: _Worker, shard) -> None:
        """Execute one coalesced batch remotely; every future must resolve."""
        live = [request for request in shard
                if request.future.set_running_or_notify_cancel()]
        for group in _request_groups(live):
            try:
                fused = _fuse(group)
                outputs = self._forward_remote(worker, fused)
                _demux(group, outputs)
            except BaseException as error:  # noqa: BLE001 — delivered per future
                self._fail_batch(group, error)
                continue
            with self._stats_lock:
                self.batches += 1
                self.samples += len(fused)

    def _forward_remote(self, worker: _Worker, fused: np.ndarray) -> np.ndarray:
        """One fused forward on ``worker``, with isolate-and-retry on death.

        A broken pipe (the worker was killed, crashed, or OOMed) triggers
        the sweep executor's policy: respawn the worker and retry the batch
        exactly once; a second death raises :class:`EngineError` for these
        futures.  A *model* error inside a healthy worker is re-raised
        as-is and never retried — it would fail identically everywhere.
        """
        for attempt in (1, 2):
            try:
                with worker.lock:
                    if not worker.alive:  # found dead before sending
                        raise _WorkerDied(worker.process.exitcode
                                          if worker.process else None)
                    worker.conn.send(("predict", fused))
                    reply = worker.conn.recv()
            except (_WorkerDied, EOFError, BrokenPipeError, ConnectionError,
                    OSError) as error:
                if self._closed:
                    raise EngineClosed(
                        "serving engine closed while the request was in "
                        "flight; the server is shutting down") from error
                if attempt == 2:
                    raise EngineError(
                        f"pool worker {worker.worker_id} died twice running "
                        f"the same batch (retried once on a respawned "
                        f"worker); giving up on these requests") from error
                try:  # isolate-and-retry: fresh worker, one more attempt
                    with worker.lock:
                        self._respawn(worker)
                except EngineError as spawn_error:
                    raise EngineError(
                        f"pool worker {worker.worker_id} died and could not "
                        f"be respawned: {spawn_error}") from spawn_error
                continue
            if reply[0] == "ok":
                worker.last_stats = reply[2]
                return reply[1]
            # ("error", message, traceback): the model raised remotely.
            raise RuntimeError(
                f"pool worker {worker.worker_id} forward failed: {reply[1]}\n"
                f"--- worker traceback ---\n{reply[2]}")
        raise AssertionError("unreachable")  # pragma: no cover

    # -- warmup ----------------------------------------------------------------

    def warm(self, input_shape: tuple | None = None) -> None:
        """Broadcast a plan-cache warmup to every worker (each has its own)."""
        for worker in self._workers:
            try:
                with worker.lock:
                    if not worker.alive:
                        continue
                    worker.conn.send(("warm", tuple(input_shape)
                                      if input_shape is not None else None))
                    reply = worker.conn.recv()
                if reply[0] == "ok":
                    worker.last_stats = reply[2]
            except (EOFError, BrokenPipeError, ConnectionError, OSError):
                pass  # a dead worker is respawned on its next shard instead

    # -- shutdown --------------------------------------------------------------

    def _shutdown_backend(self, timeout: float | None) -> None:
        """Stop dispatcher threads and worker processes after the drain.

        Runs after the scheduler has stopped and every still-queued request
        has been failed; only shards already handed to workers may be in
        flight.  Dispatchers finish those (a killed worker's pipe raises,
        which — with the closed flag up — fails the futures with
        :class:`EngineClosed`), then exit on their stop sentinels.
        """
        for _ in self._dispatchers:
            self._shard_queue.put(_STOP)
        deadline = timeout if timeout is not None else 5.0
        for thread in self._dispatchers:
            thread.join(deadline)
        for thread in self._dispatchers:
            if thread.is_alive():  # a forward is wedged: kill its process so
                for worker in self._workers:  # the blocked recv raises EOF
                    if worker.process is not None and worker.process.is_alive():
                        worker.process.terminate()
                thread.join(deadline)
                break
        self._stop_workers()

    def _stop_workers(self) -> None:
        for worker in self._workers:
            if worker.conn is not None:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, ConnectionError, OSError):
                    pass
            self._discard(worker)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Pool stats: the common queued-engine schema plus per-worker detail.

        ``plan_cache`` aggregates every worker's own cache counters (each
        process warms independently); ``per_worker`` carries the identity
        facts the determinism and depth tests pin (pid, derived seed, depth,
        ``effective_jobs`` as observed inside the worker) next to each
        worker's serving counters.
        """
        stats = super().stats()
        with self._stats_lock:
            stats["restarts"] = self.restarts
        stats["workers"] = self.workers
        plan_cache = dict.fromkeys(_PLAN_COUNTER_KEYS, 0)
        plan_cache["compile"] = self.session.compile_enabled
        per_worker = []
        for worker in self._workers:
            worker_plan = worker.last_stats.get("plan_cache", {})
            for key in _PLAN_COUNTER_KEYS:
                plan_cache[key] += int(worker_plan.get(key, 0))
            per_worker.append({
                "worker": worker.worker_id,
                "pid": worker.info.get("pid"),
                "alive": worker.alive,
                "restarts": worker.restarts,
                "seed": worker.info.get("seed"),
                "depth": worker.info.get("depth"),
                "effective_jobs": worker.info.get("effective_jobs"),
                "batches": worker.last_stats.get("batches", 0),
                "samples": worker.last_stats.get("samples", 0),
                "plan_cache": worker_plan,
            })
        stats["plan_cache"] = plan_cache
        stats["per_worker"] = per_worker
        return stats


class _WorkerDied(Exception):
    """Internal: a worker was found dead before/while talking to it."""

    def __init__(self, exitcode):
        super().__init__(f"worker process is dead (exitcode {exitcode})")
        self.exitcode = exitcode
