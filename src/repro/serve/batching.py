"""Cross-request dynamic batching: the engine that fuses concurrent callers.

:class:`BatchedEngine` is why the engine boundary exists.  Under concurrent
load, :class:`~repro.serve.engine.DirectEngine` answers N single-sample
requests as N serialized one-row forwards — each one paying the full im2col
and BLAS-dispatch overhead the paper's fused kernels were built to amortize.
This engine recovers the batch efficiency *across* requests:

* ``submit`` appends the request to a **bounded queue** and returns a
  future immediately; a full queue raises
  :class:`~repro.serve.engine.QueueFull` (backpressure, HTTP 429) instead of
  buffering unbounded memory.
* A single **scheduler thread** drains the queue: it takes the oldest
  request, then keeps pulling until it has ``max_batch`` rows or
  ``max_wait_ms`` has elapsed since the batch opened — the classic dynamic
  batching window (arrivals during the window ride along for free; an idle
  queue never waits).
* The coalesced rows run as **one fused no-grad forward** through the shared
  :class:`~repro.serve.InferenceSession`, and the output is demuxed back
  onto the per-request futures by row offset.

The queue/coalesce machinery lives in :class:`QueuedEngine` so other
engines can reuse the *same batching policy* with a different execution
backend — :class:`~repro.serve.pool.ProcessPoolEngine` plugs a worker-process
pool behind the identical scheduler, which is how dynamic batching and
multiprocessing compose instead of competing.

Numerical note: a fused batch is chunked by the session at ``max_batch``
rows, so when every request carries exactly ``max_batch`` rows the fused
execution is *byte-identical* to per-request forwards (chunk boundaries
coincide with request boundaries).  Mixed request sizes shift BLAS blocking
and may differ from per-request execution in float low bits — same caveat as
the session's own micro-batching, and classifications are unaffected.

``close()`` is the graceful-shutdown path: it stops new submissions, lets
the scheduler finish the batch in flight, then fails every still-queued
future with :class:`~repro.serve.engine.EngineClosed` so blocked clients get
a clear error instead of a hang.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError

import numpy as np

from .engine import EngineClosed, QueueFull, ServingEngine

__all__ = ["BatchedEngine", "QueuedEngine"]

#: Queue sentinel telling the scheduler thread to exit.
_SHUTDOWN = object()


class _Request:
    """One queued unit of work: validated inputs plus the caller's future."""

    __slots__ = ("inputs", "future", "rows")

    def __init__(self, inputs: np.ndarray):
        self.inputs = inputs
        self.rows = len(inputs)
        self.future: Future = Future()


def _request_groups(requests: list[_Request]):
    """Group requests by per-sample geometry: one fused forward per group.

    A single-model queue normally holds exactly one ``(per-sample shape,
    dtype)`` group; heterogeneous submissions (shape-agnostic test models)
    split into one forward each.
    """
    groups: dict[tuple, list[_Request]] = {}
    for request in requests:
        key = (request.inputs.shape[1:], request.inputs.dtype.str)
        groups.setdefault(key, []).append(request)
    return groups.values()


def _fuse(group: list[_Request]) -> np.ndarray:
    """Concatenate a geometry group's rows into one forward-ready array."""
    if len(group) == 1:
        return group[0].inputs
    return np.concatenate([request.inputs for request in group], axis=0)


def _demux(group: list[_Request], outputs: np.ndarray) -> None:
    """Slice fused outputs back onto the per-request futures by row offset."""
    offset = 0
    for request in group:
        request.future.set_result(outputs[offset:offset + request.rows])
        offset += request.rows


class QueuedEngine(ServingEngine):
    """Bounded queue + scheduler thread + coalescing policy, backend-agnostic.

    This base owns everything about *collecting* work: the bounded request
    queue with :class:`QueueFull` backpressure, the scheduler thread, the
    ``max_batch``-rows-or-``max_wait_ms`` coalescing window, shutdown
    draining, and the common stats schema (``requests``/``samples``/
    ``batches``/``mean_batch_rows``/``queue_depth`` — every queued engine
    reports these under the same key names, which ARCHITECTURE.md documents
    and the tests pin).  Subclasses own *executing* a coalesced batch by
    implementing :meth:`_handle_batch`:

    * :class:`BatchedEngine` runs it inline on the scheduler thread — one
      fused forward through the shared session.
    * :class:`~repro.serve.pool.ProcessPoolEngine` hands it to the next idle
      worker process and immediately goes back to coalescing the next batch,
      so batches run concurrently across workers.

    Subclasses may also hook :meth:`_shutdown_backend` (called by ``close``
    after the scheduler has stopped and the queue has drained) to release
    backend resources such as worker processes.
    """

    name = "queued"

    def __init__(self, session, max_batch: int | None = None,
                 max_wait_ms: float = 2.0, queue_size: int = 256,
                 autostart: bool = True):
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.session = session
        self.max_batch = int(max_batch) if max_batch is not None else session.max_batch
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        self.max_wait_ms = float(max_wait_ms)
        self.queue_size = int(queue_size)
        self._queue: queue.Queue = queue.Queue(maxsize=self.queue_size)
        self._closed = False
        self._close_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.requests = 0
        self.samples = 0
        self.batches = 0
        self._thread = threading.Thread(target=self._scheduler_loop,
                                        name=f"repro-serve-{self.name}",
                                        daemon=True)
        self._started = False
        if autostart:
            self.start()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Start the scheduler thread (idempotent)."""
        if not self._started:
            self._started = True
            self._thread.start()

    def close(self, timeout: float | None = 5.0) -> None:
        """Drain gracefully: finish the in-flight batch, fail queued futures.

        Safe to call repeatedly and from any thread.  The scheduler stops
        collecting new work the moment the closed flag is up: at most the
        batch already being collected runs to completion, and every request
        still sitting in the queue fails with :class:`EngineClosed`.  After
        ``close`` returns, every future this engine handed out is resolved —
        completed, failed with its forward's error, or failed with
        :class:`EngineClosed` — except in the pathological case of a single
        in-flight forward outlasting ``timeout``, whose batch resolves when
        that forward finishes.  Backends with extra resources (worker
        processes) release them in :meth:`_shutdown_backend`.
        """
        with self._close_lock:
            already_closed = self._closed
            self._closed = True
        if not already_closed and self._started:
            try:  # wake the scheduler; a jammed queue drains below regardless
                self._queue.put(_SHUTDOWN, timeout=timeout)
            except queue.Full:
                pass
        if self._started:
            self._thread.join(timeout)
        self._fail_pending()
        self._shutdown_backend(timeout)

    def _shutdown_backend(self, timeout: float | None) -> None:
        """Release backend resources after the scheduler stopped (hook)."""

    # -- submission ------------------------------------------------------------

    def submit(self, inputs: np.ndarray) -> Future:
        inputs = np.asarray(inputs)
        if inputs.ndim < 2:
            raise ValueError(
                f"submit expects a batched array (leading batch dimension), "
                f"got shape {tuple(inputs.shape)}")
        if self._closed:
            raise EngineClosed(f"{self.name} engine is closed")
        request = _Request(inputs)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            raise QueueFull(
                f"request queue is full ({self.queue_size} pending); the "
                f"server is overloaded — retry with backoff") from None
        with self._stats_lock:
            self.requests += 1
        if self._closed:
            # close() raced our enqueue and its drain may have missed us;
            # drain again so this future cannot hang forever.
            self._fail_pending()
        return request.future

    # -- scheduler -------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        try:
            self._drain_loop()
        finally:
            # Whether we exited for shutdown or something unthinkable escaped
            # the loop itself: stop accepting work and fail what's queued, so
            # a dead scheduler can never strand blocked clients silently.
            self._closed = True
            self._fail_pending()
            self._scheduler_exited()

    def _scheduler_exited(self) -> None:
        """Called exactly once when the scheduler thread exits (hook)."""

    def _drain_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            if self._closed:  # drain mode: queued requests fail, none run
                self._fail_request(item)
                break
            batch, shutdown = self._collect(item)
            try:
                self._handle_batch(batch)
            except BaseException as error:  # popped requests aren't in the
                self._fail_batch(batch, error)  # queue — fail before bailing
                raise
            if shutdown:
                break

    def _collect(self, first) -> tuple[list[_Request], bool]:
        """The coalescing policy: pull until ``max_batch`` rows or the window
        closes.

        Returns the assembled batch plus a shutdown flag (a ``close`` arrived
        mid-collection).  Arrivals during the window ride along for free; an
        idle queue never waits.
        """
        batch = [first]
        rows = first.rows
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        shutdown = False
        while rows < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                item = (self._queue.get(timeout=remaining) if remaining > 0
                        else self._queue.get_nowait())
            except queue.Empty:
                break
            if item is _SHUTDOWN or self._closed:
                self._fail_request(item)
                shutdown = True
                break
            batch.append(item)
            rows += item.rows
        return batch, shutdown

    def _handle_batch(self, batch: list[_Request]) -> None:
        """Execute one coalesced batch; every future in it must resolve."""
        raise NotImplementedError

    # -- failure delivery ------------------------------------------------------

    @staticmethod
    def _fail_batch(batch: list[_Request], error: BaseException) -> None:
        """Deliver ``error`` to every unresolved future in ``batch``.

        ``set_exception`` is legal from both the pending and the running
        state; only futures that were cancelled (or resolved) in the
        meantime must be left alone.
        """
        for request in batch:
            if not request.future.done():
                try:
                    request.future.set_exception(error)
                except InvalidStateError:  # cancelled/resolved concurrently
                    pass

    @staticmethod
    def _fail_request(item) -> None:
        """Fail one drained request with a clear shutdown error."""
        if item is _SHUTDOWN:
            return
        if item.future.set_running_or_notify_cancel():
            item.future.set_exception(EngineClosed(
                "serving engine closed while the request was still "
                "queued; the server is shutting down — retry against a "
                "live server"))

    def _fail_pending(self) -> None:
        """Fail every still-queued request with a clear shutdown error."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            self._fail_request(item)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """The common queued-engine stats schema (see ARCHITECTURE.md).

        Every queued engine reports ``requests``/``samples``/``batches``,
        the derived ``mean_batch_rows``, live ``queue_depth`` against
        ``queue_size``, and its coalescing knobs under these exact key names
        so dashboards and the bench harness can compare engines directly.
        """
        with self._stats_lock:
            requests, samples, batches = self.requests, self.samples, self.batches
        return {
            "engine": self.name,
            "requests": requests,
            "samples": samples,
            "batches": batches,
            "mean_batch_rows": round(samples / batches, 3) if batches else 0.0,
            "queue_depth": self._queue.qsize(),
            "queue_size": self.queue_size,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "closed": self._closed,
        }


class BatchedEngine(QueuedEngine):
    """Queue–coalesce–demux scheduling over one shared inference session.

    Parameters
    ----------
    session:
        The :class:`~repro.serve.InferenceSession` that runs the fused
        forwards.  Only the scheduler thread calls into it, so the session's
        own lock is uncontended in steady state.
    max_batch:
        Row budget per fused forward (default: the session's ``max_batch``).
        A single oversized request still runs — the session chunks it.
    max_wait_ms:
        How long an *open* batch waits for more rows before running.  This
        is latency spent only when the queue goes empty mid-batch; a deep
        queue fills batches without waiting.
    queue_size:
        Bound on queued requests; beyond it ``submit`` raises
        :class:`QueueFull` so overload surfaces as backpressure.
    autostart:
        Start the scheduler thread immediately (default).  Tests and
        embedders that want to control draining can pass ``False`` and call
        :meth:`start` themselves.
    """

    name = "batched"

    def _handle_batch(self, batch: list[_Request]) -> None:
        self._safe_run_batch(batch)

    def _safe_run_batch(self, batch: list[_Request]) -> None:
        """Run a batch, guaranteeing every future in it resolves.

        The scheduler thread must survive *anything* — an escape here would
        kill it silently, hanging every queued client forever.  Whatever
        leaks out of :meth:`_run_batch` is delivered to the batch's futures
        instead (and the enclosing loop's exit path marks the engine closed
        and drains the queue, so even a truly broken scheduler fails loudly).
        """
        try:
            self._run_batch(batch)
        except BaseException as error:  # noqa: BLE001 — delivered per future
            self._fail_batch(batch, error)

    def _run_batch(self, batch: list[_Request]) -> None:
        live = [request for request in batch
                if request.future.set_running_or_notify_cancel()]
        if not live:
            return
        # Group by per-sample shape/dtype: one fused forward per geometry
        # (a single-model queue normally holds exactly one group).
        for group in _request_groups(live):
            try:
                fused = _fuse(group)
                outputs = self.session.predict(fused)
                _demux(group, outputs)
            except BaseException as error:  # noqa: BLE001 — delivered per future
                self._fail_batch(group, error)
                continue
            with self._stats_lock:
                self.batches += 1
                self.samples += len(fused)
