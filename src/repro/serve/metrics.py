"""Per-model serving observability: fixed-bucket latency histograms.

Counters (requests, samples, fused batches) tell you *how much* a model
served; they say nothing about *how it felt*.  The control plane's stats
schema therefore reports request latency through a
:class:`LatencyHistogram`: a fixed set of log-spaced millisecond buckets,
updated lock-cheap on every request, from which p50/p95/p99 are estimated by
linear interpolation inside the bucket holding the target rank.

Fixed buckets — rather than a reservoir of raw samples — are the deliberate
trade: memory is constant no matter how many requests flow through, two
histograms (e.g. a primary's and a canary's, or two servers') can be merged
by adding bucket counts, and the bucket layout is a stable part of the
``/v1/stats`` schema that dashboards can rely on.  The price is bounded
quantile error (a percentile is only as precise as the bucket it lands in),
which is the standard and acceptable cost — the bounds below are dense where
serving latencies actually live (sub-millisecond to a few seconds).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["LatencyHistogram", "DEFAULT_BOUNDS_MS"]

#: Upper bucket bounds in milliseconds (log-spaced, 0.5 ms – 10 s); one
#: implicit overflow bucket catches everything slower.  Part of the stats
#: schema: changing these is a schema change, not a tuning tweak.
DEFAULT_BOUNDS_MS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                     500.0, 1000.0, 2000.0, 5000.0, 10000.0)


class LatencyHistogram:
    """Thread-safe fixed-bucket histogram over request latencies.

    ``record`` takes *seconds* (what ``time.perf_counter`` differences give
    you); every reported figure is in *milliseconds* with a ``_ms`` suffix,
    so the units are visible in the schema itself.
    """

    __slots__ = ("bounds_ms", "_counts", "_count", "_sum_ms", "_min_ms",
                 "_max_ms", "_lock")

    def __init__(self, bounds_ms: tuple[float, ...] = DEFAULT_BOUNDS_MS):
        bounds = tuple(float(bound) for bound in bounds_ms)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be strictly increasing and "
                             f"non-empty, got {bounds_ms!r}")
        self.bounds_ms = bounds
        self._counts = [0] * (len(bounds) + 1)  # + overflow bucket
        self._count = 0
        self._sum_ms = 0.0
        self._min_ms = float("inf")
        self._max_ms = 0.0
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------------

    def record(self, seconds: float) -> None:
        """Record one request's latency (in seconds, as perf_counter deltas)."""
        ms = max(0.0, float(seconds) * 1000.0)
        index = bisect_left(self.bounds_ms, ms)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum_ms += ms
            if ms < self._min_ms:
                self._min_ms = ms
            if ms > self._max_ms:
                self._max_ms = ms

    # -- percentile estimation -------------------------------------------------

    def _percentile_locked(self, q: float) -> float:
        """Estimate the q-th percentile (0–100) from the bucket counts.

        Walks the cumulative distribution to the bucket holding the target
        rank and interpolates linearly inside it; the open-ended overflow
        bucket is closed at the largest observed value, and every estimate is
        clamped to the observed [min, max] so a sparse histogram can never
        report a latency nobody experienced.
        """
        if self._count == 0:
            return 0.0
        target = (q / 100.0) * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lo = self.bounds_ms[index - 1] if index > 0 else 0.0
                hi = self.bounds_ms[index] if index < len(self.bounds_ms) \
                    else self._max_ms
                fraction = (target - cumulative) / bucket_count
                value = lo + fraction * (max(hi, lo) - lo)
                return min(max(value, self._min_ms), self._max_ms)
            cumulative += bucket_count
        return self._max_ms  # pragma: no cover — target <= count always hits

    def percentile(self, q: float) -> float:
        """The q-th latency percentile in milliseconds (0 when empty)."""
        with self._lock:
            return self._percentile_locked(q)

    # -- introspection ---------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def summary(self) -> dict:
        """The JSON-ready ``latency`` section of the per-model stats schema."""
        with self._lock:
            count = self._count
            buckets = [{"le_ms": bound, "count": bucket_count}
                       for bound, bucket_count
                       in zip(self.bounds_ms, self._counts)]
            buckets.append({"le_ms": None, "count": self._counts[-1]})
            return {
                "count": count,
                "mean_ms": round(self._sum_ms / count, 3) if count else 0.0,
                "min_ms": round(self._min_ms, 3) if count else 0.0,
                "max_ms": round(self._max_ms, 3) if count else 0.0,
                "p50_ms": round(self._percentile_locked(50.0), 3),
                "p95_ms": round(self._percentile_locked(95.0), 3),
                "p99_ms": round(self._percentile_locked(99.0), 3),
                "buckets": buckets,
            }
