"""Protocol-agnostic serving engines: the scheduling layer under every transport.

PR 4's server had exactly one concurrency story — a lock inside
:class:`~repro.serve.InferenceSession` — which meant every HTTP request
serialized on one forward no matter how many handler threads were running.
This module names the boundary that was implicit there: a **serving engine**
owns *when and how* forwards run; transports (HTTP, CLI, in-process callers)
only ever ``submit`` work and wait on futures.  Anything that can schedule a
no-grad forward — a lock, a cross-request batcher, a process pool, a remote
backend — plugs in behind the same three methods:

* ``submit(inputs) -> concurrent.futures.Future`` — enqueue one request;
  the future resolves to the logits array for exactly those rows.
* ``stats() -> dict`` — scheduling counters for ``/v1/stats`` and benchmarks.
* ``close()`` — stop accepting work and fail anything still queued with
  :class:`EngineClosed` (clients get a clear error, never a hang).

Two implementations ship here and in :mod:`repro.serve.batching`:

* :class:`DirectEngine` — today's behavior, made explicit: ``submit`` runs
  the forward inline on the calling thread (the session's lock serializes
  concurrent callers) and returns an already-resolved future.
* :class:`~repro.serve.batching.BatchedEngine` — a background scheduler
  coalesces requests from *different* callers into one fused forward.

:func:`make_engine` is the factory the ``engine=`` knobs on
:class:`repro.Predictor` / :func:`repro.load` / ``repro serve`` resolve
through.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout

import numpy as np

__all__ = ["ServingEngine", "DirectEngine", "make_engine", "ENGINE_NAMES",
           "EngineError", "EngineClosed", "QueueFull"]

#: Every engine name :func:`make_engine` accepts — the single source of truth
#: error messages and CLI validation enumerate.
ENGINE_NAMES = ("direct", "batched", "pool")


class EngineError(RuntimeError):
    """Base class for serving-engine scheduling failures.

    Deliberately distinct from ``ValueError`` (bad request payloads): the
    HTTP layer maps subclasses to backpressure statuses (429/503), not 400.
    """


class QueueFull(EngineError):
    """The engine's bounded request queue is full — retry later (HTTP 429)."""


class EngineClosed(EngineError):
    """The engine is shut down and accepts no further work (HTTP 503)."""


class ServingEngine:
    """The submit/stats/close protocol every serving backend implements.

    Subclasses must implement :meth:`submit`, :meth:`stats` and
    :meth:`close`; :meth:`predict` is a convenience wrapper (submit + wait)
    shared by all of them.  Engines are context managers: ``with`` closes
    them on exit, failing any queued work loudly.
    """

    #: Short name used by :func:`make_engine` and reported in ``stats()``.
    name = "abstract"

    def submit(self, inputs: np.ndarray) -> Future:
        """Enqueue one batched request; the future resolves to its logits.

        ``inputs`` must carry a leading batch dimension (the same contract as
        :meth:`InferenceSession.predict`).  Raises :class:`QueueFull` when the
        engine cannot accept more work and :class:`EngineClosed` after
        :meth:`close`.
        """
        raise NotImplementedError

    def stats(self) -> dict:
        """Scheduling counters (requests/samples/batches, queue depth, ...)."""
        raise NotImplementedError

    def close(self) -> None:
        """Stop accepting work; fail queued futures with :class:`EngineClosed`."""
        raise NotImplementedError

    # -- shared conveniences ---------------------------------------------------

    def warm(self, input_shape: tuple | None = None) -> None:
        """Warm whatever executes forwards (buffer caches + plan cache).

        The default delegates to the engine's in-process session; engines
        whose forwards run elsewhere (the process pool) override this to
        warm every backend worker instead.
        """
        session = getattr(self, "session", None)
        if session is not None:
            session.warm(input_shape)

    def predict(self, inputs: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Blocking submit: enqueue ``inputs`` and wait for the logits.

        Raises :class:`TimeoutError` when the result is not ready within
        ``timeout`` seconds (the request may still complete in the
        background; its result is discarded).
        """
        future = self.submit(inputs)
        try:
            return future.result(timeout)
        except FutureTimeout as error:  # plain Exception subclass on py3.10
            future.cancel()  # drop it if the scheduler has not started it yet
            raise TimeoutError(
                f"{self.name} engine did not answer within {timeout}s "
                f"(the request may still be queued behind other work)") from error

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class DirectEngine(ServingEngine):
    """Lock-and-forward scheduling: ``submit`` runs the forward inline.

    This is PR 4's serving behavior expressed through the engine protocol:
    the calling thread executes the forward itself, serialized against other
    callers by the session's internal lock, and gets back an
    already-resolved future.  Zero scheduling latency, no cross-request
    fusion — the right engine for single-client and latency-floor workloads,
    and the baseline the batched engine is benchmarked against.

    Because nothing ever *waits* here — the future is resolved before
    ``submit`` returns — request timeouts cannot fire on this engine; they
    bound queue wait, which only queued engines (batched) have.
    """

    name = "direct"

    def __init__(self, session):
        self.session = session
        self._closed = False
        self._stats_lock = threading.Lock()
        self.requests = 0
        self.samples = 0

    def submit(self, inputs: np.ndarray) -> Future:
        if self._closed:
            raise EngineClosed("direct engine is closed")
        with self._stats_lock:  # count every accepted request, like BatchedEngine
            self.requests += 1
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            result = self.session.predict(inputs)
        except BaseException as error:  # noqa: BLE001 — delivered via the future
            future.set_exception(error)
        else:
            future.set_result(result)
            with self._stats_lock:
                self.samples += len(result)
        return future

    def stats(self) -> dict:
        with self._stats_lock:
            return {
                "engine": self.name,
                "requests": self.requests,
                "samples": self.samples,
                "max_batch": self.session.max_batch,
                "queue_depth": 0,  # nothing ever queues on the inline engine
                "closed": self._closed,
            }

    def close(self) -> None:
        self._closed = True


def make_engine(engine, session, max_batch: int | None = None,
                max_wait_ms: float | None = None,
                queue_size: int | None = None,
                workers: int | None = None,
                seed: int | None = None) -> ServingEngine:
    """Resolve an ``engine=`` knob into a live :class:`ServingEngine`.

    ``engine`` may be a ready-made :class:`ServingEngine` instance (returned
    as-is), ``None``/``"direct"`` for :class:`DirectEngine`, ``"batched"``
    for :class:`~repro.serve.batching.BatchedEngine`, or ``"pool"`` for
    :class:`~repro.serve.pool.ProcessPoolEngine` (the session must come from
    an on-disk bundle — workers re-load it by path).  The tuning kwargs only
    apply to the queued engines and fall back to their defaults when
    ``None``; ``workers``/``seed`` only apply to the pool.
    """
    if isinstance(engine, ServingEngine):
        return engine
    if engine is None or engine == "direct":
        return DirectEngine(session)
    if engine in ("batched", "pool"):
        kwargs = {"max_batch": max_batch, "max_wait_ms": max_wait_ms,
                  "queue_size": queue_size}
        if engine == "pool":
            from .pool import ProcessPoolEngine

            kwargs.update(workers=workers, seed=seed)
            cls = ProcessPoolEngine
        else:
            from .batching import BatchedEngine

            cls = BatchedEngine
        return cls(session, **{key: value for key, value in kwargs.items()
                               if value is not None})
    expected = ", ".join(repr(name) for name in ENGINE_NAMES)
    raise ValueError(f"unknown serving engine {engine!r}; expected one of "
                     f"{expected}, or a ServingEngine instance")
