"""Zero-downtime model operations: the control plane over one served model.

Everything before this module treats a mounted model as immutable: changing
a bundle meant restarting the process, and the only per-model telemetry was
counters.  :class:`ManagedModel` wraps a :class:`~repro.serve.Predictor`
with the operations a long-running server actually needs:

* **hot reload** — load the replacement bundle *off-path* (build + warm a
  fresh predictor while the old one keeps serving), atomically swap the
  mount, then drain the old engine (wait for its in-flight requests to
  finish) and ``close()`` it.  Requests that resolved the old predictor
  before the swap complete on it; requests arriving after the swap run on
  the new one — zero dropped requests under load, by construction.
* **canary routing** — mount a *candidate* predictor next to the primary
  and deterministically route a configurable percentage of traffic to it
  (request ``i`` goes to the canary iff ``floor((i+1)·p/100) >
  floor(i·p/100)`` — an evenly spread, reproducible split).  ``promote()``
  swaps the candidate in as the new primary (draining the old one);
  ``clear_canary()`` retires it.
* **shadow routing** — mirror requests to the candidate on a background
  thread whose *outputs are compared and counted but never returned*:
  primary latency is untouched, and the agreed/mismatched counters tell you
  whether the candidate actually answers like the incumbent before it takes
  real traffic.
* **per-model observability** — a fixed-bucket
  :class:`~repro.serve.metrics.LatencyHistogram` per mount (p50/p95/p99),
  in-flight gauges, and reload/shed/split counters, all surfaced through
  :meth:`stats` as the v2 stats schema.
* **per-model admission control** — an optional ``max_inflight`` cap; a
  saturated model sheds load with :class:`ModelOverloaded` (HTTP 429)
  while every other mounted model keeps serving, instead of one hot model
  taking the whole process down with it.

The :class:`~repro.serve.router.ModelRouter` wraps every mounted predictor
in a ``ManagedModel`` and forwards the admin API
(``POST /v1/admin/models/<name>/{reload,canary,promote}``,
``DELETE .../canary``) onto these methods.
"""

from __future__ import annotations

import math
import queue
import threading
import time

import numpy as np

from .engine import EngineClosed, QueueFull
from .metrics import LatencyHistogram

__all__ = ["ManagedModel", "ModelOverloaded"]

#: Shadow-queue sentinel telling the mirror thread to exit.
_STOP = object()

#: Bound on queued shadow mirrors; beyond it mirrors are *dropped* (and
#: counted) rather than back-pressuring real traffic — shadows are
#: observability, not correctness.
_SHADOW_QUEUE_SIZE = 64


class ModelOverloaded(QueueFull):
    """This model's admission cap is reached — shed with HTTP 429.

    A :class:`~repro.serve.engine.QueueFull` subclass so the HTTP layer's
    existing 429 + ``Retry-After`` mapping applies; distinct type so tests
    and callers can tell per-model shedding from engine-queue backpressure.
    """


class _Mount:
    """One live predictor generation: the predictor, its origin, its gauge.

    In-flight accounting lives per *mount*, not per model: a hot reload
    swaps the primary mount and then waits for exactly the old mount's
    ``inflight`` to reach zero before closing it, while the new mount is
    already taking traffic.  ``inflight`` is guarded by the owning
    :class:`ManagedModel`'s condition lock.
    """

    __slots__ = ("predictor", "source", "inflight", "latency")

    def __init__(self, predictor, source: str | None = None):
        self.predictor = predictor
        self.source = str(source) if source is not None else None
        self.inflight = 0
        self.latency = LatencyHistogram()


class ManagedModel:
    """The operable wrapper the router mounts: predictor + control plane.

    Parameters
    ----------
    predictor:
        The live :class:`~repro.serve.Predictor` to manage.
    source:
        Where the predictor came from (a bundle path).  Reloads without an
        explicit bundle re-load this path; ``None`` (in-memory models) makes
        such reloads a clear error.
    load_options:
        Keyword arguments for :func:`repro.serve.load` that reloads and
        canaries inherit (``engine``, ``max_batch``, ``workers``, ...), so a
        swapped-in bundle serves through the same engine configuration as
        the mount it replaces unless overridden per call.
    max_inflight:
        Admission cap: with more than this many requests in flight on the
        model (primary + canary together), new arrivals shed with
        :class:`ModelOverloaded`.  ``None`` (default) disables shedding.
    drain_timeout:
        How long a reload/promote waits for the outgoing mount's in-flight
        requests before closing its engine anyway (a safety valve against a
        wedged forward, not a normal path).
    """

    def __init__(self, predictor, source: str | None = None,
                 load_options: dict | None = None,
                 max_inflight: int | None = None,
                 drain_timeout: float = 30.0):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1 (or None to disable "
                             f"admission control), got {max_inflight}")
        self._lock = threading.Condition(threading.Lock())
        self._ops_lock = threading.RLock()  # serializes reload/canary/promote
        self._primary = _Mount(predictor, source)
        self._canary: _Mount | None = None
        self._canary_percent = 0.0
        self._canary_shadow = False
        self._closed = False
        self.load_options = dict(load_options or {})
        self.max_inflight = max_inflight
        self.drain_timeout = float(drain_timeout)
        # Control-plane counters (all guarded by self._lock).
        self.reloads = 0
        self.shed = 0
        self.primary_requests = 0
        self.canary_requests = 0
        self.canary_errors = 0
        self._shadow_counts = {"mirrored": 0, "compared": 0, "agreed": 0,
                               "mismatched": 0, "errors": 0, "dropped": 0}
        self._shadow_queue: queue.Queue | None = None
        self._shadow_thread: threading.Thread | None = None

    # -- delegation: the Predictor surface transports already use --------------

    @property
    def predictor(self):
        """The current primary predictor (changes across reloads/promotes)."""
        return self._primary.predictor

    @property
    def engine(self):
        return self._primary.predictor.engine

    @property
    def session(self):
        return self._primary.predictor.session

    @property
    def pipeline(self):
        return self._primary.predictor.pipeline

    @property
    def model(self):
        return self._primary.predictor.model

    @property
    def classes(self):
        return self._primary.predictor.classes

    @property
    def input_shape(self):
        return self._primary.predictor.input_shape

    @property
    def bundle_path(self) -> str | None:
        return self._primary.source

    # -- request path ----------------------------------------------------------

    def _acquire(self) -> tuple[_Mount, bool]:
        """Admission control + canary routing: pick the mount for one request."""
        with self._lock:
            if self._closed:
                raise EngineClosed(
                    "model is closed; the server is draining — retry against "
                    "a live server")
            inflight = self._primary.inflight + \
                (self._canary.inflight if self._canary is not None else 0)
            if self.max_inflight is not None and inflight >= self.max_inflight:
                self.shed += 1
                raise ModelOverloaded(
                    f"model is saturated ({inflight} requests in flight, "
                    f"admission cap {self.max_inflight}); shedding this "
                    f"request — retry with backoff")
            mount, is_canary = self._route_locked()
            mount.inflight += 1
            if is_canary:
                self.canary_requests += 1
            else:
                self.primary_requests += 1
            return mount, is_canary

    def _route_locked(self) -> tuple[_Mount, bool]:
        """Deterministic canary split: an even spread, not a random draw."""
        canary = self._canary
        if canary is None or self._canary_shadow or self._canary_percent <= 0:
            return self._primary, False
        served = self.primary_requests + self.canary_requests
        percent = self._canary_percent
        takes = math.floor((served + 1) * percent / 100.0) > \
            math.floor(served * percent / 100.0)
        return (canary, True) if takes else (self._primary, False)

    def _release(self, mount: _Mount) -> None:
        with self._lock:
            mount.inflight -= 1
            self._lock.notify_all()

    def _request(self, method: str, inputs, normalize: bool = True,
                 timeout: float | None = None, **kwargs):
        """One managed request: admit, route, time, mirror; then answer."""
        mount, is_canary = self._acquire()
        start = time.perf_counter()
        try:
            result = getattr(mount.predictor, method)(
                inputs, normalize=normalize, timeout=timeout, **kwargs)
        except BaseException:
            if is_canary:
                with self._lock:
                    self.canary_errors += 1
            raise
        finally:
            self._release(mount)
        mount.latency.record(time.perf_counter() - start)
        # Shadow comparison is defined over class indices, so only the
        # predict family mirrors; generation results pass straight through.
        if not is_canary and method != "generate":
            self._mirror_to_shadow(inputs, method, result, normalize)
        return result

    def predict(self, inputs, normalize: bool = True,
                timeout: float | None = None) -> np.ndarray:
        return self._request("predict", inputs, normalize=normalize,
                             timeout=timeout)

    def predict_logits(self, inputs, normalize: bool = True,
                       timeout: float | None = None) -> np.ndarray:
        return self._request("predict_logits", inputs, normalize=normalize,
                             timeout=timeout)

    def predict_proba(self, inputs, normalize: bool = True,
                      timeout: float | None = None) -> np.ndarray:
        return self._request("predict_proba", inputs, normalize=normalize,
                             timeout=timeout)

    def predict_topk(self, inputs, k: int = 5, normalize: bool = True,
                     timeout: float | None = None) -> list[dict]:
        return self._request("predict_topk", inputs, k=k, normalize=normalize,
                             timeout=timeout)

    def generate(self, inputs, timeout: float | None = None,
                 **options) -> list[dict]:
        """Generation bundles only: route one generate call like a predict.

        Goes through the same admission/canary/latency machinery as the
        predict family; raises ``ValueError`` (HTTP 400) when the mounted
        predictor is a classifier without a generate surface.
        """
        if not hasattr(self._primary.predictor, "generate"):
            raise ValueError("this model is a classifier bundle; it serves "
                             "predict, not generate")
        return self._request("generate", inputs, timeout=timeout, **options)

    # -- shadow mirroring ------------------------------------------------------

    @staticmethod
    def _result_classes(method: str, result) -> list[int] | None:
        """Top-1 class indices of a primary answer, whatever method produced it."""
        if method == "predict_topk":
            return [int(record["class_index"]) for record in result]
        if method == "predict":
            return [int(index) for index in np.asarray(result).reshape(-1)]
        return [int(index) for index in
                np.asarray(result).argmax(axis=-1).reshape(-1)]

    def _mirror_to_shadow(self, inputs, method: str, result,
                          normalize: bool) -> None:
        shadow_queue = self._shadow_queue
        if shadow_queue is None or not self._canary_shadow:
            return
        try:
            shadow_queue.put_nowait(
                (inputs, self._result_classes(method, result), normalize))
            with self._lock:
                self._shadow_counts["mirrored"] += 1
        except queue.Full:  # shadows are observability: drop, never backpressure
            with self._lock:
                self._shadow_counts["dropped"] += 1

    def _ensure_shadow_thread(self) -> None:
        if self._shadow_thread is None or not self._shadow_thread.is_alive():
            self._shadow_queue = queue.Queue(maxsize=_SHADOW_QUEUE_SIZE)
            self._shadow_thread = threading.Thread(
                target=self._shadow_loop, name="repro-serve-shadow", daemon=True)
            self._shadow_thread.start()

    def _shadow_loop(self) -> None:
        while True:
            item = self._shadow_queue.get()
            if item is _STOP:
                return
            inputs, primary_classes, normalize = item
            with self._lock:
                mount = self._canary
                if mount is None or not self._canary_shadow or self._closed:
                    continue
                mount.inflight += 1  # participates in the canary's drain
            start = time.perf_counter()
            try:
                shadow_classes = [int(index) for index in
                                  mount.predictor.predict(inputs,
                                                          normalize=normalize)]
            except Exception:  # noqa: BLE001 — a broken shadow is a counter
                with self._lock:
                    self._shadow_counts["errors"] += 1
                continue
            finally:
                self._release(mount)
            mount.latency.record(time.perf_counter() - start)
            with self._lock:
                self._shadow_counts["compared"] += 1
                if shadow_classes == primary_classes:
                    self._shadow_counts["agreed"] += 1
                else:
                    self._shadow_counts["mismatched"] += 1

    def _stop_shadow_thread(self) -> None:
        thread, self._shadow_thread = self._shadow_thread, None
        shadow_queue, self._shadow_queue = self._shadow_queue, None
        if thread is not None and thread.is_alive():
            shadow_queue.put(_STOP)
            thread.join(5.0)

    # -- control plane ---------------------------------------------------------

    def _build(self, bundle: str, overrides: dict | None):
        """Load + warm a predictor off-path with the mount's inherited options."""
        from . import load

        options = {**self.load_options, **(overrides or {})}
        options.setdefault("warm", True)
        return load(bundle, **options), options

    def _swap_primary(self, new_mount: _Mount) -> _Mount:
        with self._lock:
            old, self._primary = self._primary, new_mount
            self.reloads += 1
            return old

    def _retire(self, mount: _Mount) -> bool:
        """Drain one outgoing mount, then close its engine.

        Waits (up to ``drain_timeout``) for every request already routed to
        the mount to finish — they hold engine futures that ``close()``
        would otherwise fail — and only then closes the engine.  Returns
        whether the drain completed cleanly within the timeout.
        """
        deadline = time.monotonic() + self.drain_timeout
        with self._lock:
            while mount.inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._lock.wait(remaining)
            drained = mount.inflight == 0
        mount.predictor.close()
        return drained

    def _require_open(self, operation: str) -> None:
        if self._closed:
            raise EngineClosed(f"model is closed; cannot {operation}")

    def reload(self, bundle: str | None = None,
               options: dict | None = None) -> dict:
        """Hot-swap the primary to ``bundle`` (default: re-load the current one).

        Builds and warms the replacement while the incumbent keeps serving,
        atomically swaps the mount, then drains and closes the old engine.
        In-flight requests complete on whichever mount they resolved — no
        request is dropped by a reload.
        """
        with self._ops_lock:
            self._require_open("reload")
            source = str(bundle) if bundle is not None else self._primary.source
            if source is None:
                raise ValueError(
                    "this model was not loaded from a bundle, so there is no "
                    "path to reload; pass a bundle path explicitly")
            predictor, used_options = self._build(source, options)
            old = self._swap_primary(_Mount(predictor, source))
            self.load_options = {key: value for key, value
                                 in used_options.items() if key != "warm"}
            drained = self._retire(old)
            return {"status": "reloaded", "bundle": source,
                    "previous_bundle": old.source, "reloads": self.reloads,
                    "drained": drained}

    def set_canary(self, bundle: str, percent: float = 10.0,
                   shadow: bool = False, options: dict | None = None) -> dict:
        """Stage ``bundle`` as the candidate: split traffic or mirror it.

        ``percent`` of requests route to the candidate (and are answered by
        it); with ``shadow=True`` the candidate instead receives mirrored
        copies whose outputs are compared against the primary's and counted,
        never returned.  Replaces (and retires) any existing candidate.
        """
        percent = float(percent)
        if not shadow and not 0.0 < percent <= 100.0:
            raise ValueError(f"canary percent must be in (0, 100], got "
                             f"{percent} (or pass shadow=true for a "
                             f"mirror-only candidate)")
        with self._ops_lock:
            self._require_open("stage a canary")
            predictor, _ = self._build(str(bundle), options)
            with self._lock:
                old_canary, self._canary = self._canary, \
                    _Mount(predictor, bundle)
                self._canary_percent = 0.0 if shadow else percent
                self._canary_shadow = bool(shadow)
                # Routing counters restart with the episode: the split (and
                # the even-spread formula driving it) is measured from the
                # moment this candidate was staged, not from process start.
                self.primary_requests = 0
                self.canary_requests = 0
                self.canary_errors = 0
                self._shadow_counts = dict.fromkeys(self._shadow_counts, 0)
            if shadow:
                self._ensure_shadow_thread()
            if old_canary is not None:
                self._retire(old_canary)
            return {"status": "canary", "bundle": str(bundle),
                    "percent": self._canary_percent, "shadow": bool(shadow)}

    def promote(self) -> dict:
        """Make the candidate the primary; drain and close the old primary."""
        with self._ops_lock:
            self._require_open("promote")
            with self._lock:
                if self._canary is None:
                    raise ValueError(
                        "no canary is staged on this model; stage one with "
                        "POST .../canary (or use .../reload to swap directly)")
                candidate, self._canary = self._canary, None
                self._canary_percent = 0.0
                self._canary_shadow = False
            old = self._swap_primary(candidate)
            drained = self._retire(old)
            return {"status": "promoted", "bundle": candidate.source,
                    "previous_bundle": old.source, "reloads": self.reloads,
                    "drained": drained}

    def clear_canary(self) -> dict:
        """Retire the candidate (if any) without touching the primary."""
        with self._ops_lock:
            with self._lock:
                candidate, self._canary = self._canary, None
                self._canary_percent = 0.0
                self._canary_shadow = False
            if candidate is None:
                return {"status": "no-canary"}
            self._retire(candidate)
            return {"status": "canary-cleared", "bundle": candidate.source}

    def close(self) -> None:
        """Drain and close both mounts; idempotent and race-safe."""
        with self._ops_lock:
            with self._lock:
                if self._closed:
                    return
                self._closed = True
                candidate, self._canary = self._canary, None
            self._stop_shadow_thread()
            if candidate is not None:
                self._retire(candidate)
            self._retire(self._primary)

    def __enter__(self) -> "ManagedModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    def describe(self) -> dict:
        """The primary predictor's description plus control-plane facts."""
        info = self._primary.predictor.describe()
        info["bundle"] = self._primary.source
        info["reloads"] = self.reloads
        with self._lock:
            canary = self._canary
            info["canary"] = None if canary is None else {
                "bundle": canary.source,
                "percent": self._canary_percent,
                "shadow": self._canary_shadow,
            }
        return info

    def stats(self) -> dict:
        """One model's entry in the v2 stats schema (plus legacy aliases).

        Stable v2 sections: ``scheduler`` (the engine's own stats),
        ``plan_cache``, ``latency`` (primary histogram), ``admission``,
        ``bundle`` (path + reload count) and ``canary`` (``None`` when no
        candidate is staged).  The engine's flat keys (``engine`` as a
        string, ``requests``, ``queue_depth``, ...) remain merged at the top
        level as deprecated aliases for one release; note this makes the
        flat ``restarts`` mean *model reloads* — the pool engine's worker
        respawns live under ``scheduler.restarts``.
        """
        scheduler = self._primary.predictor.stats()
        entry = dict(scheduler)  # legacy flat aliases (one release)
        entry["scheduler"] = {key: value for key, value in scheduler.items()
                              if key != "plan_cache"}
        entry["plan_cache"] = scheduler.get("plan_cache")
        entry["latency"] = self._primary.latency.summary()
        with self._lock:
            inflight = self._primary.inflight + \
                (self._canary.inflight if self._canary is not None else 0)
            entry["admission"] = {
                "max_inflight": self.max_inflight,
                "inflight": inflight,
                "shed": self.shed,
            }
            entry["bundle"] = {"path": self._primary.source,
                               "reloads": self.reloads}
            entry["restarts"] = self.reloads
            entry["requests_routed"] = {"primary": self.primary_requests,
                                        "canary": self.canary_requests}
            canary = self._canary
            if canary is None:
                entry["canary"] = None
            else:
                entry["canary"] = {
                    "bundle": canary.source,
                    "percent": self._canary_percent,
                    "shadow": self._canary_shadow,
                    "requests": self.canary_requests,
                    "errors": self.canary_errors,
                    "latency": canary.latency.summary(),
                    "shadow_stats": dict(self._shadow_counts)
                    if self._canary_shadow else None,
                }
        return entry
