"""Model zoo: ResNets, plain CNNs, MLPs and Transformers with switchable neurons."""

from .resnet import (
    BasicBlock,
    CifarResNet,
    ResNet18,
    resnet20,
    resnet32,
    resnet44,
    resnet56,
    resnet110,
    CIFAR_RESNET_DEPTHS,
)
from .cnn import SimpleCNN, MLPClassifier
from .transformer import (
    Transformer,
    MultiHeadAttention,
    FeedForward,
    EncoderLayer,
    DecoderLayer,
    sinusoidal_positions,
    make_padding_mask,
    make_causal_mask,
)

__all__ = [
    "BasicBlock",
    "CifarResNet",
    "ResNet18",
    "resnet20",
    "resnet32",
    "resnet44",
    "resnet56",
    "resnet110",
    "CIFAR_RESNET_DEPTHS",
    "SimpleCNN",
    "MLPClassifier",
    "Transformer",
    "MultiHeadAttention",
    "FeedForward",
    "EncoderLayer",
    "DecoderLayer",
    "sinusoidal_positions",
    "make_padding_mask",
    "make_causal_mask",
]
