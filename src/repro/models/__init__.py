"""Model zoo: ResNets, plain CNNs, MLPs and Transformers with switchable neurons.

Every model class registers in the model-spec registry (:mod:`.registry`), so
each instance carries a JSON-safe ``model_spec`` from which the architecture
can be rebuilt by name — the substrate of self-describing checkpoint bundles
(:mod:`repro.io.bundle`) and the serving layer (:mod:`repro.serve`).
"""

from .registry import (
    ModelSpecError,
    build_from_spec,
    build_model,
    get_model_builder,
    model_names,
    register_model,
    spec_of,
)
from .resnet import (
    BasicBlock,
    CifarResNet,
    ResNet18,
    resnet20,
    resnet32,
    resnet44,
    resnet56,
    resnet110,
    CIFAR_RESNET_DEPTHS,
)
from .cnn import SimpleCNN, MLPClassifier
from .transformer import (
    Transformer,
    MultiHeadAttention,
    FeedForward,
    EncoderLayer,
    DecoderLayer,
    sinusoidal_positions,
    make_padding_mask,
    make_causal_mask,
)

__all__ = [
    "ModelSpecError",
    "build_from_spec",
    "build_model",
    "get_model_builder",
    "model_names",
    "register_model",
    "spec_of",
    "BasicBlock",
    "CifarResNet",
    "ResNet18",
    "resnet20",
    "resnet32",
    "resnet44",
    "resnet56",
    "resnet110",
    "CIFAR_RESNET_DEPTHS",
    "SimpleCNN",
    "MLPClassifier",
    "Transformer",
    "MultiHeadAttention",
    "FeedForward",
    "EncoderLayer",
    "DecoderLayer",
    "sinusoidal_positions",
    "make_padding_mask",
    "make_causal_mask",
]
