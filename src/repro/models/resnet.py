"""ResNet architectures parameterized by neuron type.

Two families are provided, matching the paper's image-classification
experiments:

* :class:`CifarResNet` — the classic CIFAR-style ResNets (depth ``6n + 2``:
  ResNet-20/32/44/56/110) used for Fig. 4, Fig. 5 and Fig. 7.  Every 3×3
  convolution can be built from any neuron type registered in
  :mod:`repro.quadratic.factory`.
* :class:`ResNet18` — a configurable-width ResNet-18 used for the Fig. 6
  training-stability study; its ``neuron_first_n`` argument replaces only the
  first *n* convolutions with the requested neuron (reproducing the "KNN-n"
  deployment of the kervolution baseline) while ``neuron_first_n=None``
  deploys the neuron in all layers (the paper's configuration for the
  proposed neuron).

Width and input resolution are configurable so that the same code runs the
paper-scale models (32×32 inputs, 16/32/64 channels) and the scaled-down
versions used by the CPU benchmarks.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..quadratic.factory import make_conv
from ..tensor import Tensor
from .registry import register_model

__all__ = [
    "BasicBlock",
    "CifarResNet",
    "ResNet18",
    "resnet20",
    "resnet32",
    "resnet44",
    "resnet56",
    "resnet110",
    "CIFAR_RESNET_DEPTHS",
]

CIFAR_RESNET_DEPTHS = (20, 32, 44, 56, 110)


class _ConvCounter:
    """Hands out conv layers, switching neuron type after the first *n* layers.

    The Fig. 6 experiment deploys the kervolution neuron only in the first
    ``n`` convolutional layers ("KNN-n"); beyond the threshold the counter
    falls back to linear convolutions.  With ``first_n=None`` the requested
    neuron type is used everywhere.
    """

    def __init__(self, neuron_type: str, rank: int, rng: np.random.Generator,
                 first_n: int | None = None, neuron_kwargs: dict | None = None):
        self.neuron_type = neuron_type
        self.rank = rank
        self.rng = rng
        self.first_n = first_n
        self.neuron_kwargs = neuron_kwargs or {}
        self.count = 0

    def next_conv(self, in_channels: int, out_channels: int, kernel_size: int,
                  stride: int = 1, padding: int = 0) -> nn.Module:
        self.count += 1
        use_neuron = self.first_n is None or self.count <= self.first_n
        neuron_type = self.neuron_type if use_neuron else "linear"
        kwargs = self.neuron_kwargs if neuron_type == self.neuron_type else {}
        return make_conv(neuron_type, in_channels, out_channels, kernel_size,
                         stride=stride, padding=padding, rank=self.rank, bias=False,
                         rng=self.rng, **kwargs)


class BasicBlock(nn.Module):
    """Two 3×3 convolutions with batch norm and an identity / projection shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 counter: _ConvCounter):
        super().__init__()
        self.conv1 = counter.next_conv(in_channels, out_channels, 3, stride=stride, padding=1)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = counter.next_conv(out_channels, out_channels, 3, stride=1, padding=1)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            # Projection shortcut: always a plain 1×1 linear convolution, as in
            # the original ResNet and in the paper's experiments (only the 3×3
            # feature-extraction convolutions change neuron type).
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False,
                          rng=counter.rng),
                nn.BatchNorm2d(out_channels))
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + self.shortcut(x))


@register_model("cifar_resnet")
class CifarResNet(nn.Module):
    """CIFAR-style ResNet of depth ``6n + 2`` with configurable neuron type.

    Parameters
    ----------
    depth:
        Network depth; must satisfy ``depth = 6n + 2`` (20, 32, 44, 56, 110...).
    num_classes:
        Size of the classification head.
    neuron_type:
        Any key of :data:`repro.quadratic.factory.CONV_NEURON_TYPES`.
    rank:
        Decomposition rank ``k`` for the proposed / factorized neurons
        (the paper fixes ``k = 9`` on CIFAR).
    base_width:
        Channel width of the first stage (16 in the paper; smaller values give
        the scaled-down models used by the CPU benchmarks).
    width_multiplier:
        Extra multiplicative factor on all widths; the paper widens the
        quadratic networks slightly for the Fig. 5 iso-accuracy comparison.
    """

    def __init__(self, depth: int, num_classes: int = 10, neuron_type: str = "linear",
                 rank: int = 9, base_width: int = 16, width_multiplier: float = 1.0,
                 in_channels: int = 3, neuron_first_n: int | None = None,
                 neuron_kwargs: dict | None = None, seed: int = 0):
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError(f"CIFAR ResNet depth must be 6n + 2, got {depth}")
        blocks_per_stage = (depth - 2) // 6
        rng = np.random.default_rng(seed)
        counter = _ConvCounter(neuron_type, rank, rng, first_n=neuron_first_n,
                               neuron_kwargs=neuron_kwargs)

        self.depth = depth
        self.neuron_type = neuron_type
        self.rank = rank
        widths = [max(1, int(round(base_width * width_multiplier * factor)))
                  for factor in (1, 2, 4)]
        self.widths = widths

        self.stem = counter.next_conv(in_channels, widths[0], 3, stride=1, padding=1)
        self.stem_bn = nn.BatchNorm2d(widths[0])
        self.relu = nn.ReLU()

        stages = []
        in_width = widths[0]
        for stage_index, width in enumerate(widths):
            blocks = []
            for block_index in range(blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                blocks.append(BasicBlock(in_width, width, stride, counter))
                in_width = width
            stages.append(nn.Sequential(*blocks))
        self.stage1, self.stage2, self.stage3 = stages

        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(widths[-1], num_classes, rng=rng)
        self.num_conv_layers = counter.count

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.stem_bn(self.stem(x)))
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        return self.classifier(self.pool(out))


def _named_cifar_resnet(depth: int):
    def build(num_classes: int = 10, **kwargs) -> CifarResNet:
        return CifarResNet(depth, num_classes=num_classes, **kwargs)
    build.__name__ = f"resnet{depth}"
    build.__doc__ = f"CIFAR-style ResNet-{depth} (see :class:`CifarResNet`)."
    return build


resnet20 = _named_cifar_resnet(20)
resnet32 = _named_cifar_resnet(32)
resnet44 = _named_cifar_resnet(44)
resnet56 = _named_cifar_resnet(56)
resnet110 = _named_cifar_resnet(110)


@register_model("resnet18")
class ResNet18(nn.Module):
    """ResNet-18-style network (4 stages of two basic blocks each).

    The stem is a 3×3 convolution rather than the ImageNet 7×7/stride-2 stem so
    that the network is meaningful at the reduced input resolutions used by the
    CPU-scale stability benchmark; the block structure (2-2-2-2) and the
    doubling widths follow ResNet-18.
    """

    def __init__(self, num_classes: int = 100, neuron_type: str = "linear", rank: int = 9,
                 base_width: int = 64, in_channels: int = 3,
                 neuron_first_n: int | None = None, neuron_kwargs: dict | None = None,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        counter = _ConvCounter(neuron_type, rank, rng, first_n=neuron_first_n,
                               neuron_kwargs=neuron_kwargs)
        self.neuron_type = neuron_type
        self.neuron_first_n = neuron_first_n
        widths = [base_width, base_width * 2, base_width * 4, base_width * 8]

        self.stem = counter.next_conv(in_channels, widths[0], 3, stride=1, padding=1)
        self.stem_bn = nn.BatchNorm2d(widths[0])
        self.relu = nn.ReLU()

        stages = []
        in_width = widths[0]
        for stage_index, width in enumerate(widths):
            blocks = []
            for block_index in range(2):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                blocks.append(BasicBlock(in_width, width, stride, counter))
                in_width = width
            stages.append(nn.Sequential(*blocks))
        self.stage1, self.stage2, self.stage3, self.stage4 = stages

        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(widths[-1], num_classes, rng=rng)
        self.num_conv_layers = counter.count

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.stem_bn(self.stem(x)))
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.stage4(out)
        return self.classifier(self.pool(out))
