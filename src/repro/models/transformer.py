"""Encoder–decoder Transformer with switchable neuron type in the attention projections.

The paper's Table II deploys the proposed quadratic neuron in "all linear
projection operators in the multi-head attention blocks" of a Transformer
trained on WMT14 English→German.  This module implements the standard
"Attention Is All You Need" architecture (post-norm, sinusoidal positions,
label-smoothing-friendly output head) on top of the autograd engine, with the
query/key/value/output projections built through the dense neuron factory so a
single ``neuron_type`` string switches between the baseline Transformer and
the quadratic Transformer.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..quadratic.factory import make_dense
from ..tensor import Tensor, no_grad
from ..tensor import functional as F
from .registry import register_model

__all__ = [
    "sinusoidal_positions",
    "MultiHeadAttention",
    "FeedForward",
    "EncoderLayer",
    "DecoderLayer",
    "Transformer",
    "make_padding_mask",
    "make_causal_mask",
]

_NEG_INF = -1e9


def sinusoidal_positions(max_len: int, model_dim: int) -> np.ndarray:
    """Sinusoidal positional encoding table of shape ``(max_len, model_dim)``."""
    positions = np.arange(max_len)[:, None].astype(np.float64)
    dims = np.arange(model_dim)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / model_dim)
    angles = positions * angle_rates
    table = np.zeros((max_len, model_dim), dtype=np.float32)
    table[:, 0::2] = np.sin(angles[:, 0::2])
    table[:, 1::2] = np.cos(angles[:, 1::2])
    return table


def make_padding_mask(token_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Return an additive attention mask of shape ``(batch, 1, 1, seq)``.

    Padding positions receive a large negative value so that softmax assigns
    them (numerically) zero attention.
    """
    mask = (np.asarray(token_ids) == pad_id).astype(np.float32) * _NEG_INF
    return mask[:, None, None, :]


def make_causal_mask(seq_len: int) -> np.ndarray:
    """Upper-triangular additive mask of shape ``(1, 1, seq, seq)``."""
    mask = np.triu(np.ones((seq_len, seq_len), dtype=np.float32), k=1) * _NEG_INF
    return mask[None, None, :, :]


class MultiHeadAttention(nn.Module):
    """Multi-head scaled dot-product attention with factory-built projections."""

    def __init__(self, model_dim: int, num_heads: int, neuron_type: str = "linear",
                 rank: int = 4, dropout: float = 0.0, rng: np.random.Generator | None = None,
                 neuron_kwargs: dict | None = None):
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(f"model_dim {model_dim} must be divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng()
        neuron_kwargs = neuron_kwargs or {}
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.neuron_type = neuron_type
        self.query_proj = make_dense(neuron_type, model_dim, model_dim, rank=rank, rng=rng,
                                     **neuron_kwargs)
        self.key_proj = make_dense(neuron_type, model_dim, model_dim, rank=rank, rng=rng,
                                   **neuron_kwargs)
        self.value_proj = make_dense(neuron_type, model_dim, model_dim, rank=rank, rng=rng,
                                     **neuron_kwargs)
        self.output_proj = make_dense(neuron_type, model_dim, model_dim, rank=rank, rng=rng,
                                      **neuron_kwargs)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq_len, _ = x.shape
        return x.reshape(batch, seq_len, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, seq_len, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq_len, self.model_dim)

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: np.ndarray | None = None) -> Tensor:
        q = self._split_heads(self.query_proj(query))
        k = self._split_heads(self.key_proj(key))
        v = self._split_heads(self.value_proj(value))

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + Tensor(mask)
        attention = F.softmax(scores, axis=-1)
        attention = self.dropout(attention)
        context = self._merge_heads(attention @ v)
        return self.output_proj(context)


class FeedForward(nn.Module):
    """Position-wise feed-forward block (kept linear, as in the paper)."""

    def __init__(self, model_dim: int, hidden_dim: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.expand = nn.Linear(model_dim, hidden_dim, rng=rng)
        self.relu = nn.ReLU()
        self.contract = nn.Linear(hidden_dim, model_dim, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.contract(self.dropout(self.relu(self.expand(x))))


class EncoderLayer(nn.Module):
    """Post-norm Transformer encoder layer."""

    def __init__(self, model_dim: int, num_heads: int, hidden_dim: int,
                 neuron_type: str = "linear", rank: int = 4, dropout: float = 0.0,
                 rng: np.random.Generator | None = None, neuron_kwargs: dict | None = None):
        super().__init__()
        self.self_attention = MultiHeadAttention(model_dim, num_heads, neuron_type, rank,
                                                 dropout, rng, neuron_kwargs)
        self.attention_norm = nn.LayerNorm(model_dim)
        self.feed_forward = FeedForward(model_dim, hidden_dim, dropout, rng)
        self.feed_forward_norm = nn.LayerNorm(model_dim)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = self.attention_norm(x + self.dropout(self.self_attention(x, x, x, mask)))
        return self.feed_forward_norm(x + self.dropout(self.feed_forward(x)))


class DecoderLayer(nn.Module):
    """Post-norm Transformer decoder layer with masked self- and cross-attention."""

    def __init__(self, model_dim: int, num_heads: int, hidden_dim: int,
                 neuron_type: str = "linear", rank: int = 4, dropout: float = 0.0,
                 rng: np.random.Generator | None = None, neuron_kwargs: dict | None = None):
        super().__init__()
        self.self_attention = MultiHeadAttention(model_dim, num_heads, neuron_type, rank,
                                                 dropout, rng, neuron_kwargs)
        self.self_norm = nn.LayerNorm(model_dim)
        self.cross_attention = MultiHeadAttention(model_dim, num_heads, neuron_type, rank,
                                                  dropout, rng, neuron_kwargs)
        self.cross_norm = nn.LayerNorm(model_dim)
        self.feed_forward = FeedForward(model_dim, hidden_dim, dropout, rng)
        self.feed_forward_norm = nn.LayerNorm(model_dim)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, memory: Tensor, self_mask: np.ndarray | None,
                memory_mask: np.ndarray | None) -> Tensor:
        x = self.self_norm(x + self.dropout(self.self_attention(x, x, x, self_mask)))
        x = self.cross_norm(x + self.dropout(self.cross_attention(x, memory, memory,
                                                                  memory_mask)))
        return self.feed_forward_norm(x + self.dropout(self.feed_forward(x)))


@register_model("transformer")
class Transformer(nn.Module):
    """Encoder–decoder Transformer for sequence-to-sequence translation.

    Parameters
    ----------
    src_vocab_size / tgt_vocab_size:
        Vocabulary sizes of the source and target languages.
    model_dim, num_heads, num_layers, hidden_dim:
        Standard Transformer hyper-parameters (the paper follows the base
        configuration of Vaswani et al.; the benchmarks use a scaled-down
        version).
    neuron_type:
        Neuron used for the attention projections (``"linear"`` reproduces the
        baseline row of Table II, ``"proposed"`` the quadratic rows).
    rank:
        Decomposition rank ``k`` of the proposed neuron.
    """

    def __init__(self, src_vocab_size: int, tgt_vocab_size: int, model_dim: int = 64,
                 num_heads: int = 4, num_layers: int = 2, hidden_dim: int = 128,
                 max_len: int = 128, dropout: float = 0.0, neuron_type: str = "linear",
                 rank: int = 4, pad_id: int = 0, neuron_kwargs: dict | None = None,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.model_dim = model_dim
        self.pad_id = pad_id
        self.neuron_type = neuron_type
        self.max_len = max_len

        self.src_embedding = nn.Embedding(src_vocab_size, model_dim, rng=rng,
                                          padding_idx=pad_id)
        self.tgt_embedding = nn.Embedding(tgt_vocab_size, model_dim, rng=rng,
                                          padding_idx=pad_id)
        self.register_buffer("positions", sinusoidal_positions(max_len, model_dim))
        self.embedding_dropout = nn.Dropout(dropout, rng=rng)

        self.encoder_layers = nn.ModuleList([
            EncoderLayer(model_dim, num_heads, hidden_dim, neuron_type, rank, dropout, rng,
                         neuron_kwargs)
            for _ in range(num_layers)])
        self.decoder_layers = nn.ModuleList([
            DecoderLayer(model_dim, num_heads, hidden_dim, neuron_type, rank, dropout, rng,
                         neuron_kwargs)
            for _ in range(num_layers)])
        self.generator = nn.Linear(model_dim, tgt_vocab_size, rng=rng)

    # -- embedding helpers -----------------------------------------------------

    def _embed(self, embedding: nn.Embedding, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        seq_len = token_ids.shape[1]
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds max_len {self.max_len}")
        scaled = embedding(token_ids) * np.sqrt(self.model_dim)
        positions = Tensor(self._buffers["positions"][:seq_len][None, :, :])
        return self.embedding_dropout(scaled + positions)

    # -- core passes -------------------------------------------------------------

    def encode(self, src_ids: np.ndarray) -> tuple[Tensor, np.ndarray]:
        """Run the encoder; returns the memory and the source padding mask."""
        src_mask = make_padding_mask(src_ids, self.pad_id)
        memory = self._embed(self.src_embedding, src_ids)
        for layer in self.encoder_layers:
            memory = layer(memory, src_mask)
        return memory, src_mask

    def decode(self, tgt_ids: np.ndarray, memory: Tensor, src_mask: np.ndarray) -> Tensor:
        """Run the decoder over ``tgt_ids`` given encoder ``memory``; returns logits."""
        tgt_ids = np.asarray(tgt_ids, dtype=np.int64)
        seq_len = tgt_ids.shape[1]
        self_mask = make_causal_mask(seq_len) + make_padding_mask(tgt_ids, self.pad_id)
        x = self._embed(self.tgt_embedding, tgt_ids)
        for layer in self.decoder_layers:
            x = layer(x, memory, self_mask, src_mask)
        return self.generator(x)

    def forward(self, src_ids: np.ndarray, tgt_ids: np.ndarray) -> Tensor:
        """Teacher-forced forward pass; returns logits of shape ``(B, T_tgt, V)``."""
        memory, src_mask = self.encode(src_ids)
        return self.decode(tgt_ids, memory, src_mask)

    # -- inference ---------------------------------------------------------------

    def greedy_decode(self, src_ids: np.ndarray, bos_id: int, eos_id: int,
                      max_len: int | None = None) -> list[list[int]]:
        """Greedy autoregressive decoding for a batch of source sentences."""
        max_len = max_len or self.max_len
        src_ids = np.asarray(src_ids, dtype=np.int64)
        batch = src_ids.shape[0]
        with no_grad():
            memory, src_mask = self.encode(src_ids)
            generated = np.full((batch, 1), bos_id, dtype=np.int64)
            finished = np.zeros(batch, dtype=bool)
            for _ in range(max_len - 1):
                logits = self.decode(generated, memory, src_mask)
                next_tokens = logits.data[:, -1, :].argmax(axis=-1)
                next_tokens = np.where(finished, self.pad_id, next_tokens)
                generated = np.concatenate([generated, next_tokens[:, None]], axis=1)
                finished |= next_tokens == eos_id
                if finished.all():
                    break
        outputs = []
        for row in generated:
            tokens = []
            for token in row[1:]:
                if token == eos_id or token == self.pad_id:
                    break
                tokens.append(int(token))
            outputs.append(tokens)
        return outputs
