"""Encoder–decoder Transformer with switchable neuron type in the attention projections.

The paper's Table II deploys the proposed quadratic neuron in "all linear
projection operators in the multi-head attention blocks" of a Transformer
trained on WMT14 English→German.  This module implements the standard
"Attention Is All You Need" architecture (post-norm, sinusoidal positions,
label-smoothing-friendly output head) on top of the autograd engine, with the
query/key/value/output projections built through the dense neuron factory so a
single ``neuron_type`` string switches between the baseline Transformer and
the quadratic Transformer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .. import nn
from ..quadratic.factory import make_dense
from ..tensor import Tensor, no_grad
from ..tensor import functional as F
from .registry import register_model

__all__ = [
    "sinusoidal_positions",
    "MultiHeadAttention",
    "FeedForward",
    "EncoderLayer",
    "DecoderLayer",
    "Transformer",
    "make_padding_mask",
    "make_causal_mask",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..serve.generate.state import DecodeState

_NEG_INF = -1e9


def sinusoidal_positions(max_len: int, model_dim: int) -> np.ndarray:
    """Sinusoidal positional encoding table of shape ``(max_len, model_dim)``."""
    positions = np.arange(max_len)[:, None].astype(np.float64)
    dims = np.arange(model_dim)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / model_dim)
    angles = positions * angle_rates
    table = np.zeros((max_len, model_dim), dtype=np.float32)
    table[:, 0::2] = np.sin(angles[:, 0::2])
    table[:, 1::2] = np.cos(angles[:, 1::2])
    return table


def make_padding_mask(token_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Return an additive attention mask of shape ``(batch, 1, 1, seq)``.

    Padding positions receive a large negative value so that softmax assigns
    them (numerically) zero attention.
    """
    mask = (np.asarray(token_ids) == pad_id).astype(np.float32) * _NEG_INF
    return mask[:, None, None, :]


def make_causal_mask(seq_len: int) -> np.ndarray:
    """Upper-triangular additive mask of shape ``(1, 1, seq, seq)``."""
    mask = np.triu(np.ones((seq_len, seq_len), dtype=np.float32), k=1) * _NEG_INF
    return mask[None, None, :, :]


class MultiHeadAttention(nn.Module):
    """Multi-head scaled dot-product attention with factory-built projections."""

    def __init__(self, model_dim: int, num_heads: int, neuron_type: str = "linear",
                 rank: int = 4, dropout: float = 0.0, rng: np.random.Generator | None = None,
                 neuron_kwargs: dict | None = None):
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(f"model_dim {model_dim} must be divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng()
        neuron_kwargs = neuron_kwargs or {}
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.neuron_type = neuron_type
        self.query_proj = make_dense(neuron_type, model_dim, model_dim, rank=rank, rng=rng,
                                     **neuron_kwargs)
        self.key_proj = make_dense(neuron_type, model_dim, model_dim, rank=rank, rng=rng,
                                   **neuron_kwargs)
        self.value_proj = make_dense(neuron_type, model_dim, model_dim, rank=rank, rng=rng,
                                     **neuron_kwargs)
        self.output_proj = make_dense(neuron_type, model_dim, model_dim, rank=rank, rng=rng,
                                      **neuron_kwargs)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq_len, _ = x.shape
        return x.reshape(batch, seq_len, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, seq_len, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq_len, self.model_dim)

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: np.ndarray | None = None) -> Tensor:
        q = self._split_heads(self.query_proj(query))
        k = self._split_heads(self.key_proj(key))
        v = self._split_heads(self.value_proj(value))

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + Tensor(mask)
        attention = F.attention_softmax(scores, axis=-1)
        attention = self.dropout(attention)
        context = self._merge_heads(attention @ v)
        return self.output_proj(context)

    # -- incremental decoding --------------------------------------------------

    def _attend(self, q: Tensor, keys: np.ndarray, values: np.ndarray,
                mask: np.ndarray | None) -> Tensor:
        """Attend a projected query against raw key/value arrays (cache path)."""
        scores = (q @ Tensor(keys.transpose(0, 1, 3, 2))) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + Tensor(mask)
        attention = F.attention_softmax(scores, axis=-1)
        attention = self.dropout(attention)
        context = self._merge_heads(attention @ Tensor(values))
        return self.output_proj(context)

    def project_memory(self, memory: Tensor) -> tuple[np.ndarray, np.ndarray]:
        """Project encoder memory into split-head key/value arrays, once."""
        keys = self._split_heads(self.key_proj(memory))
        values = self._split_heads(self.value_proj(memory))
        return keys.data, values.data

    def step(self, x: Tensor, key_cache: np.ndarray, value_cache: np.ndarray,
             rows: np.ndarray, steps: np.ndarray, window: int,
             mask: np.ndarray | None) -> Tensor:
        """Self-attend one new token per row against the cached prefix.

        Projects the single-token input, writes the new key/value into each
        row's cache column ``steps[r]``, and attends against the first
        ``window`` cached columns.  The padding entries of ``mask`` absorb
        every column a row has not filled, so rows at different depths share
        one batched step.
        """
        q = self._split_heads(self.query_proj(x))
        k = self._split_heads(self.key_proj(x))
        v = self._split_heads(self.value_proj(x))
        key_cache[rows, :, steps, :] = k.data[:, :, 0, :]
        value_cache[rows, :, steps, :] = v.data[:, :, 0, :]
        keys = key_cache[rows, :, :window, :]
        values = value_cache[rows, :, :window, :]
        return self._attend(q, keys, values, mask)

    def cached(self, x: Tensor, keys: np.ndarray, values: np.ndarray,
               rows: np.ndarray, mask: np.ndarray | None) -> Tensor:
        """Cross-attend one new token per row against pre-projected memory."""
        q = self._split_heads(self.query_proj(x))
        return self._attend(q, keys[rows], values[rows], mask)


class FeedForward(nn.Module):
    """Position-wise feed-forward block (kept linear, as in the paper)."""

    def __init__(self, model_dim: int, hidden_dim: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.expand = nn.Linear(model_dim, hidden_dim, rng=rng)
        self.relu = nn.ReLU()
        self.contract = nn.Linear(hidden_dim, model_dim, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.contract(self.dropout(self.relu(self.expand(x))))


class EncoderLayer(nn.Module):
    """Post-norm Transformer encoder layer."""

    def __init__(self, model_dim: int, num_heads: int, hidden_dim: int,
                 neuron_type: str = "linear", rank: int = 4, dropout: float = 0.0,
                 rng: np.random.Generator | None = None, neuron_kwargs: dict | None = None):
        super().__init__()
        self.self_attention = MultiHeadAttention(model_dim, num_heads, neuron_type, rank,
                                                 dropout, rng, neuron_kwargs)
        self.attention_norm = nn.LayerNorm(model_dim)
        self.feed_forward = FeedForward(model_dim, hidden_dim, dropout, rng)
        self.feed_forward_norm = nn.LayerNorm(model_dim)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = self.attention_norm(x + self.dropout(self.self_attention(x, x, x, mask)))
        return self.feed_forward_norm(x + self.dropout(self.feed_forward(x)))


class DecoderLayer(nn.Module):
    """Post-norm Transformer decoder layer with masked self- and cross-attention."""

    def __init__(self, model_dim: int, num_heads: int, hidden_dim: int,
                 neuron_type: str = "linear", rank: int = 4, dropout: float = 0.0,
                 rng: np.random.Generator | None = None, neuron_kwargs: dict | None = None):
        super().__init__()
        self.self_attention = MultiHeadAttention(model_dim, num_heads, neuron_type, rank,
                                                 dropout, rng, neuron_kwargs)
        self.self_norm = nn.LayerNorm(model_dim)
        self.cross_attention = MultiHeadAttention(model_dim, num_heads, neuron_type, rank,
                                                  dropout, rng, neuron_kwargs)
        self.cross_norm = nn.LayerNorm(model_dim)
        self.feed_forward = FeedForward(model_dim, hidden_dim, dropout, rng)
        self.feed_forward_norm = nn.LayerNorm(model_dim)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, memory: Tensor, self_mask: np.ndarray | None,
                memory_mask: np.ndarray | None) -> Tensor:
        x = self.self_norm(x + self.dropout(self.self_attention(x, x, x, self_mask)))
        x = self.cross_norm(x + self.dropout(self.cross_attention(x, memory, memory,
                                                                  memory_mask)))
        return self.feed_forward_norm(x + self.dropout(self.feed_forward(x)))

    def step(self, x: Tensor, state: "DecodeState", index: int, rows: np.ndarray,
             steps: np.ndarray, window: int, self_mask: np.ndarray | None,
             memory_mask: np.ndarray | None) -> Tensor:
        """One-token decoder layer pass against the caches of layer ``index``."""
        x = self.self_norm(x + self.dropout(self.self_attention.step(
            x, state.self_keys[index], state.self_values[index], rows, steps,
            window, self_mask)))
        x = self.cross_norm(x + self.dropout(self.cross_attention.cached(
            x, state.memory_keys[index], state.memory_values[index], rows,
            memory_mask)))
        return self.feed_forward_norm(x + self.dropout(self.feed_forward(x)))


@register_model("transformer")
class Transformer(nn.Module):
    """Encoder–decoder Transformer for sequence-to-sequence translation.

    Parameters
    ----------
    src_vocab_size / tgt_vocab_size:
        Vocabulary sizes of the source and target languages.
    model_dim, num_heads, num_layers, hidden_dim:
        Standard Transformer hyper-parameters (the paper follows the base
        configuration of Vaswani et al.; the benchmarks use a scaled-down
        version).
    neuron_type:
        Neuron used for the attention projections (``"linear"`` reproduces the
        baseline row of Table II, ``"proposed"`` the quadratic rows).
    rank:
        Decomposition rank ``k`` of the proposed neuron.
    """

    def __init__(self, src_vocab_size: int, tgt_vocab_size: int, model_dim: int = 64,
                 num_heads: int = 4, num_layers: int = 2, hidden_dim: int = 128,
                 max_len: int = 128, dropout: float = 0.0, neuron_type: str = "linear",
                 rank: int = 4, pad_id: int = 0, neuron_kwargs: dict | None = None,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.model_dim = model_dim
        self.pad_id = pad_id
        self.neuron_type = neuron_type
        self.max_len = max_len

        self.src_embedding = nn.Embedding(src_vocab_size, model_dim, rng=rng,
                                          padding_idx=pad_id)
        self.tgt_embedding = nn.Embedding(tgt_vocab_size, model_dim, rng=rng,
                                          padding_idx=pad_id)
        self.register_buffer("positions", sinusoidal_positions(max_len, model_dim))
        self.embedding_dropout = nn.Dropout(dropout, rng=rng)

        self.encoder_layers = nn.ModuleList([
            EncoderLayer(model_dim, num_heads, hidden_dim, neuron_type, rank, dropout, rng,
                         neuron_kwargs)
            for _ in range(num_layers)])
        self.decoder_layers = nn.ModuleList([
            DecoderLayer(model_dim, num_heads, hidden_dim, neuron_type, rank, dropout, rng,
                         neuron_kwargs)
            for _ in range(num_layers)])
        self.generator = nn.Linear(model_dim, tgt_vocab_size, rng=rng)

    # -- embedding helpers -----------------------------------------------------

    def _embed(self, embedding: nn.Embedding, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        seq_len = token_ids.shape[1]
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds max_len {self.max_len}")
        scaled = embedding(token_ids) * np.sqrt(self.model_dim)
        positions = Tensor(self._buffers["positions"][:seq_len][None, :, :])
        return self.embedding_dropout(scaled + positions)

    # -- core passes -------------------------------------------------------------

    def encode(self, src_ids: np.ndarray) -> tuple[Tensor, np.ndarray]:
        """Run the encoder; returns the memory and the source padding mask."""
        src_mask = make_padding_mask(src_ids, self.pad_id)
        memory = self._embed(self.src_embedding, src_ids)
        for layer in self.encoder_layers:
            memory = layer(memory, src_mask)
        return memory, src_mask

    def decode(self, tgt_ids: np.ndarray, memory: Tensor, src_mask: np.ndarray) -> Tensor:
        """Run the decoder over ``tgt_ids`` given encoder ``memory``; returns logits."""
        tgt_ids = np.asarray(tgt_ids, dtype=np.int64)
        seq_len = tgt_ids.shape[1]
        self_mask = make_causal_mask(seq_len) + make_padding_mask(tgt_ids, self.pad_id)
        x = self._embed(self.tgt_embedding, tgt_ids)
        for layer in self.decoder_layers:
            x = layer(x, memory, self_mask, src_mask)
        return self.generator(x)

    def forward(self, src_ids: np.ndarray, tgt_ids: np.ndarray) -> Tensor:
        """Teacher-forced forward pass; returns logits of shape ``(B, T_tgt, V)``."""
        memory, src_mask = self.encode(src_ids)
        return self.decode(tgt_ids, memory, src_mask)

    # -- incremental decoding ----------------------------------------------------

    def new_decode_state(self, slots: int, max_len: int | None = None,
                         src_capacity: int | None = None,
                         initial_capacity: int | None = None) -> "DecodeState":
        """Allocate a :class:`DecodeState` sized for this model's decoder."""
        from ..serve.generate.state import DecodeState

        attention = self.decoder_layers[0].self_attention
        max_len = self.max_len if max_len is None else min(int(max_len), self.max_len)
        src_capacity = min(int(src_capacity or self.max_len), self.max_len)
        # The embedding scale np.sqrt(model_dim) is a float64 scalar, so the
        # whole forward computes in the promoted dtype — caches must match it
        # exactly for the byte-identity guarantee to hold.
        weights = self.tgt_embedding.weight.data
        dtype = np.result_type(weights.dtype, np.sqrt(self.model_dim))
        kwargs = {} if initial_capacity is None else \
            {"initial_capacity": initial_capacity}
        return DecodeState(slots=slots, num_layers=len(self.decoder_layers),
                           num_heads=attention.num_heads,
                           head_dim=attention.head_dim, max_len=max_len,
                           src_capacity=src_capacity, dtype=dtype, **kwargs)

    def prefill(self, state: "DecodeState", rows: np.ndarray,
                src_ids: np.ndarray) -> "DecodeState":
        """Encode ``src_ids`` and install the results into ``rows`` of ``state``.

        Runs the encoder once, projects the memory through every decoder
        layer's cross-attention key/value projections, and resets the rows so
        they are ready for :meth:`decode_step` from position zero.
        """
        src_ids = np.asarray(src_ids, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        if src_ids.ndim != 2:
            raise ValueError(f"src_ids must be 2-D (rows, source_len), got shape "
                             f"{src_ids.shape}")
        if src_ids.shape[0] != rows.shape[0]:
            raise ValueError(f"src_ids has {src_ids.shape[0]} rows but {rows.shape[0]} "
                             f"slots were given")
        source_len = src_ids.shape[1]
        if source_len > state.src_capacity:
            raise ValueError(f"source length {source_len} exceeds state src_capacity "
                             f"{state.src_capacity}")
        with no_grad():
            memory, src_mask = self.encode(src_ids)
            state.reset_rows(rows)
            for index, layer in enumerate(self.decoder_layers):
                keys, values = layer.cross_attention.project_memory(memory)
                state.memory_keys[index][rows, :, :source_len, :] = keys
                state.memory_values[index][rows, :, :source_len, :] = values
            state.src_mask[rows, :, :, :source_len] = src_mask
        return state

    def start_decode(self, src_ids: np.ndarray,
                     max_len: int | None = None) -> "DecodeState":
        """Allocate a state for a batch of sources and prefill every row."""
        src_ids = np.asarray(src_ids, dtype=np.int64)
        state = self.new_decode_state(src_ids.shape[0], max_len=max_len,
                                      src_capacity=src_ids.shape[1])
        return self.prefill(state, np.arange(src_ids.shape[0]), src_ids)

    def decode_step(self, state: "DecodeState", next_tokens: np.ndarray,
                    rows: np.ndarray | None = None) -> np.ndarray:
        """Feed one token per row through the decoder; return ``(rows, V)`` logits.

        Byte-identical to running :meth:`decode` over the full prefix and
        reading the last position: unfilled/pad cache columns carry an
        additive ``-1e9`` mask, softmax turns them into exactly-zero weights,
        and zero-weight terms do not perturb the matmul reductions.

        Domain of the guarantee: attention windows up to 15 positions —
        which covers the translation task's entire ``max_len`` 16 decode
        (``max_len - 1`` steps).  At window 16 the BLAS switches its K=16
        reduction to a different accumulator grouping, and the full-prefix
        recompute *retroactively changes the bytes of its own earlier rows*
        (``decode`` over 16 positions disagrees in the last bits with
        ``decode`` over 2 positions about row 1).  A caching decoder cannot
        match a target that rewrites its history, so beyond window 15 the
        two paths agree to ~1e-15 per logit — in practice always the same
        argmax, and greedy token streams stay identical.

        Kernel-matching subtlety: every matmul in the decoder runs one gemm
        per batch row whose M equals that row's query count, and the bytes of
        an output row depend on where it falls in the kernel's M-blocking —
        M=1 routes to gemv, and for output widths with a SIMD remainder
        (e.g. an odd-sized vocabulary projection) a row in a partial tail
        block accumulates differently from a row in a full-width block.  The
        full-prefix recompute for a row of prefix length T reads the LAST
        row of an M=T gemm, which sits in a tail block of width ``T mod 4``
        (a full block when T divides evenly).  Replicating the new token to
        ``1`` (T=1), ``4`` (T ≡ 0 mod 4) or ``2`` (otherwise) query
        positions puts row 0 of the incremental gemm in a block that
        produces those exact bytes — verified across every matmul shape the
        decoder uses.  Rows at different replication counts run as separate
        forwards.  Depth-0 rows additionally run a two-position forward
        purely to rewrite their caches: the recompute later produces
        position 0's keys/values with a gemm kernel, not the gemv pass that
        produced the first logits, and the caches must hold the gemm bytes
        (the cached projections all have SIMD-friendly widths, whose row
        bytes are block-position-independent for M >= 2).
        """
        next_tokens = np.asarray(next_tokens, dtype=np.int64)
        if rows is None:
            rows = np.arange(next_tokens.shape[0], dtype=np.int64)
        else:
            rows = np.asarray(rows, dtype=np.int64)
        if next_tokens.shape != rows.shape:
            raise ValueError(f"next_tokens shape {next_tokens.shape} must match rows "
                             f"shape {rows.shape}")
        steps = state.lengths[rows]
        if steps.size == 0:
            raise ValueError("decode_step called with no rows")
        if int(steps.max()) >= state.max_len:
            raise ValueError(f"decode position {int(steps.max())} exceeds max_len "
                             f"{state.max_len}")
        state.ensure_capacity(int(steps.max()) + 1)
        state.key_mask[rows, steps] = np.where(
            next_tokens == self.pad_id, np.float32(_NEG_INF), np.float32(0.0))
        logits = np.empty((rows.shape[0], self.generator.out_features),
                          dtype=state.dtype)
        replication = np.where(steps == 0, 1,
                               np.where((steps + 1) % 4 == 0, 4, 2))
        for positions in (1, 2, 4):
            members = replication == positions
            if not members.any():
                continue
            logits[members] = self._step_group(
                state, next_tokens[members], rows[members], steps[members],
                positions=positions)
            if positions == 1:
                self._step_group(state, next_tokens[members], rows[members],
                                 steps[members], positions=2)
        state.lengths[rows] = steps + 1
        return logits

    def _step_group(self, state: "DecodeState", next_tokens: np.ndarray,
                    rows: np.ndarray, steps: np.ndarray,
                    positions: int) -> np.ndarray:
        """One incremental forward over rows that share a kernel regime."""
        window = int(steps.max()) + 1
        tokens = np.repeat(next_tokens[:, None], positions, axis=1)
        with no_grad():
            scaled = self.tgt_embedding(tokens) * np.sqrt(self.model_dim)
            position_codes = Tensor(self._buffers["positions"][steps][:, None, :])
            x = self.embedding_dropout(scaled + position_codes)
            self_mask = state.key_mask[rows, :window][:, None, None, :]
            memory_mask = state.src_mask[rows]
            for index, layer in enumerate(self.decoder_layers):
                x = layer.step(x, state, index, rows, steps, window, self_mask,
                               memory_mask)
            logits = self.generator(x)
        return logits.data[:, 0, :]

    # -- inference ---------------------------------------------------------------

    def greedy_decode(self, src_ids: np.ndarray, bos_id: int, eos_id: int,
                      max_len: int | None = None) -> list[list[int]]:
        """Greedy autoregressive decoding via the incremental KV-cached path.

        Produces exactly the same outputs as :meth:`greedy_decode_reference`
        (the full-prefix recompute) but runs each step over only the newest
        token and drops rows from the batch the moment they finish.
        """
        max_len = max_len or self.max_len
        src_ids = np.asarray(src_ids, dtype=np.int64)
        batch = src_ids.shape[0]
        outputs: list[list[int]] = [[] for _ in range(batch)]
        with no_grad():
            state = self.start_decode(src_ids, max_len=max_len)
            active = np.arange(batch, dtype=np.int64)
            tokens = np.full(batch, bos_id, dtype=np.int64)
            for _ in range(max_len - 1):
                logits = self.decode_step(state, tokens[active], rows=active)
                next_tokens = logits.argmax(axis=-1)
                keep = np.ones(active.shape[0], dtype=bool)
                for position, row in enumerate(active):
                    token = int(next_tokens[position])
                    if token == eos_id or token == self.pad_id:
                        keep[position] = False
                    else:
                        outputs[int(row)].append(token)
                        tokens[int(row)] = token
                active = active[keep]
                if active.size == 0:
                    break
        return outputs

    def greedy_decode_reference(self, src_ids: np.ndarray, bos_id: int, eos_id: int,
                                max_len: int | None = None) -> list[list[int]]:
        """Reference greedy decoding by full-prefix recompute (O(T²) per row).

        Kept as the ground truth the incremental path is byte-compared
        against; :meth:`greedy_decode` is the production path.
        """
        max_len = max_len or self.max_len
        src_ids = np.asarray(src_ids, dtype=np.int64)
        batch = src_ids.shape[0]
        with no_grad():
            memory, src_mask = self.encode(src_ids)
            generated = np.full((batch, 1), bos_id, dtype=np.int64)
            finished = np.zeros(batch, dtype=bool)
            for _ in range(max_len - 1):
                logits = self.decode(generated, memory, src_mask)
                next_tokens = logits.data[:, -1, :].argmax(axis=-1)
                next_tokens = np.where(finished, self.pad_id, next_tokens)
                generated = np.concatenate([generated, next_tokens[:, None]], axis=1)
                finished |= next_tokens == eos_id
                if finished.all():
                    break
        outputs = []
        for row in generated:
            tokens = []
            for token in row[1:]:
                if token == eos_id or token == self.pad_id:
                    break
                tokens.append(int(token))
            outputs.append(tokens)
        return outputs
