"""Model-spec registry: reconstruct any servable model from a name + primitive kwargs.

A *model spec* is the JSON-safe pair ``{"name": <registered name>, "kwargs":
{...primitives...}}``.  Builders (model classes or factory functions) register
under a name with :func:`register_model`; every instance they construct then
carries its own spec on ``model.model_spec``, captured automatically from the
constructor arguments.  :func:`build_from_spec` inverts the mapping, which is
what makes checkpoints *self-describing*: :func:`repro.io.load_bundle` can
rebuild the architecture of any registered model from the spec embedded in a
``.npz`` bundle without knowing which experiment produced it.

Spec kwargs must be **primitives** (``None``/bool/int/float/str, and
lists/tuples/dicts thereof) so a spec survives a JSON round trip bit-exactly.
Builders therefore take a ``seed`` rather than a live ``numpy`` ``Generator``.
Constructing a registered model directly with a non-primitive argument does
not fail — the instance simply gets ``model_spec = None`` (not servable) —
while :func:`build_model` validates eagerly and raises.

To make a new model servable::

    from .registry import register_model

    @register_model("my_net")
    class MyNet(nn.Module):
        def __init__(self, num_classes: int = 10, seed: int = 0):
            ...

Nothing else is required: ``MyNet(num_classes=4).model_spec`` round-trips
through :func:`build_from_spec`, ``Trainer.fit`` checkpoints become loadable
bundles, and ``repro serve`` can serve them.
"""

from __future__ import annotations

import functools
import inspect

import numpy as np

__all__ = [
    "ModelSpecError",
    "register_model",
    "build_model",
    "build_from_spec",
    "get_model_builder",
    "model_names",
    "spec_of",
    "sanitize_spec_value",
]


class ModelSpecError(TypeError):
    """A value cannot participate in a model spec (not a JSON-safe primitive)."""


_REGISTRY: dict[str, object] = {}


# ---------------------------------------------------------------------------
# Spec values
# ---------------------------------------------------------------------------

def sanitize_spec_value(value, context: str = "value"):
    """Coerce ``value`` to a JSON-safe primitive structure or raise.

    Tuples become lists (matching what a JSON round trip produces, so a spec
    captured at construction compares equal to one reloaded from a bundle);
    NumPy scalars collapse to Python scalars.  Anything else —
    ``np.random.Generator``, arrays, modules — raises :class:`ModelSpecError`
    naming the offending argument.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [sanitize_spec_value(item, context=f"{context}[{index}]")
                for index, item in enumerate(value)]
    if isinstance(value, dict):
        return {str(key): sanitize_spec_value(item, context=f"{context}[{key!r}]")
                for key, item in value.items()}
    raise ModelSpecError(
        f"{context} = {value!r} ({type(value).__name__}) cannot be part of a "
        f"model spec; specs only carry None/bool/int/float/str and "
        f"lists/dicts thereof (pass a seed instead of a Generator)")


def _capture_kwargs(signature: inspect.Signature, args: tuple, kwargs: dict,
                    context: str) -> dict:
    """Bind a builder call and flatten it into sanitized keyword arguments."""
    bound = signature.bind(*args, **kwargs)
    bound.apply_defaults()
    captured: dict = {}
    for name, value in bound.arguments.items():
        if name == "self":
            continue
        kind = signature.parameters[name].kind
        if kind is inspect.Parameter.VAR_KEYWORD:
            for key, item in value.items():
                captured[key] = sanitize_spec_value(item, context=f"{context}({key}=...)")
        elif kind is inspect.Parameter.VAR_POSITIONAL:
            if value:
                raise ModelSpecError(
                    f"{context} received extra positional arguments {value!r}; "
                    f"servable builders must be fully keyword-addressable")
        else:
            captured[name] = sanitize_spec_value(value, context=f"{context}({name}=...)")
    return captured


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

def register_model(name: str):
    """Class/function decorator registering a model builder under ``name``.

    Classes keep their identity (the decorator wraps ``__init__`` so every
    instance — however constructed — captures its spec); functions are
    replaced by a wrapper that attaches the spec to the module they return.
    Re-decorating the same builder is idempotent; registering a *different*
    builder under an existing name raises.
    """
    def decorate(builder):
        existing = _REGISTRY.get(name)
        if existing is not None:
            if existing is builder or getattr(existing, "__wrapped__", None) is builder:
                return existing
            raise ValueError(f"model name '{name}' is already registered "
                             f"to {existing!r}")
        if inspect.isclass(builder):
            _instrument_class(name, builder)
            _REGISTRY[name] = builder
            return builder
        wrapped = _instrument_function(name, builder)
        _REGISTRY[name] = wrapped
        return wrapped
    return decorate


def _instrument_class(name: str, cls) -> None:
    original = cls.__init__
    signature = inspect.signature(original)

    @functools.wraps(original)
    def __init__(self, *args, **kwargs):
        # Only exact instances of the registered class capture its spec: a
        # subclass reaching here through super().__init__ is a *different*
        # architecture, and stamping it with the parent's spec would make
        # build_from_spec silently reconstruct the wrong model.  Subclasses
        # register themselves (their own wrapper attaches after this returns)
        # or stay non-servable.
        if type(self) is not cls:
            original(self, *args, **kwargs)
            return
        try:
            spec_kwargs = _capture_kwargs(signature, (self,) + args, kwargs,
                                          context=name)
        except (ModelSpecError, TypeError):
            # Binding errors surface from the real constructor call below;
            # non-primitive arguments just make this instance non-servable.
            spec_kwargs = None
        original(self, *args, **kwargs)
        self.model_spec = ({"name": name, "kwargs": spec_kwargs}
                           if spec_kwargs is not None else None)

    cls.__init__ = __init__
    cls.spec_name = name


def _instrument_function(name: str, function):
    signature = inspect.signature(function)

    @functools.wraps(function)
    def build(*args, **kwargs):
        try:
            spec_kwargs = _capture_kwargs(signature, args, kwargs, context=name)
        except (ModelSpecError, TypeError):
            spec_kwargs = None
        module = function(*args, **kwargs)
        module.model_spec = ({"name": name, "kwargs": spec_kwargs}
                             if spec_kwargs is not None else None)
        return module

    build.spec_name = name
    return build


# ---------------------------------------------------------------------------
# Lookup / construction
# ---------------------------------------------------------------------------

def get_model_builder(name: str):
    """The registered builder for ``name``; ``KeyError`` lists what exists."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown model '{name}'; registered models: "
                       f"{', '.join(model_names()) or '(none)'}")
    return _REGISTRY[name]


def model_names() -> list[str]:
    """Registered model names in registration order."""
    return list(_REGISTRY)


def build_model(name: str, **kwargs):
    """Construct a registered model from primitive keyword arguments.

    Unlike direct construction, this path is strict: a non-primitive argument
    raises :class:`ModelSpecError` up front, so everything built here is
    guaranteed to carry a round-trippable ``model_spec``.
    """
    for key, value in kwargs.items():
        sanitize_spec_value(value, context=f"{name}({key}=...)")
    model = get_model_builder(name)(**kwargs)
    if getattr(model, "model_spec", None) is None:
        raise ModelSpecError(f"builder '{name}' did not attach a model spec")
    return model


def build_from_spec(spec: dict):
    """Rebuild a model from a ``{"name": ..., "kwargs": {...}}`` spec."""
    if not isinstance(spec, dict) or "name" not in spec:
        raise ValueError(f"not a model spec: {spec!r}")
    return build_model(spec["name"], **(spec.get("kwargs") or {}))


def spec_of(model) -> dict | None:
    """The model's captured spec, or ``None`` when it is not servable."""
    return getattr(model, "model_spec", None)
