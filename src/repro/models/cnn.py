"""Small plain CNNs and MLPs with switchable neuron types.

These models are used by the unit/integration tests, the quickstart example
and the ablation benchmarks, where a full ResNet would be unnecessarily heavy.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..quadratic.factory import make_conv, make_dense
from ..tensor import Tensor
from .registry import register_model

__all__ = ["SimpleCNN", "MLPClassifier"]


@register_model("simple_cnn")
class SimpleCNN(nn.Module):
    """Three convolutional stages followed by a linear classifier.

    Every convolution is built through the neuron factory, so the model can be
    instantiated with linear neurons, the proposed quadratic neuron or any
    baseline for quick comparisons.
    """

    def __init__(self, num_classes: int = 10, neuron_type: str = "linear", rank: int = 3,
                 in_channels: int = 3, base_width: int = 8, image_size: int = 16,
                 neuron_kwargs: dict | None = None, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        neuron_kwargs = neuron_kwargs or {}
        widths = [base_width, base_width * 2, base_width * 4]
        self.neuron_type = neuron_type

        layers = []
        previous = in_channels
        for width in widths:
            layers.append(make_conv(neuron_type, previous, width, 3, stride=1, padding=1,
                                    rank=rank, bias=False, rng=rng, **neuron_kwargs))
            layers.append(nn.BatchNorm2d(width))
            layers.append(nn.ReLU())
            layers.append(nn.MaxPool2d(2))
            previous = width
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(widths[-1], num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.pool(self.features(x)))


@register_model("mlp_classifier")
class MLPClassifier(nn.Module):
    """Multi-layer perceptron with switchable neuron type in the hidden layers."""

    def __init__(self, in_features: int, num_classes: int, hidden_sizes: tuple[int, ...] = (64,),
                 neuron_type: str = "linear", rank: int = 3,
                 neuron_kwargs: dict | None = None, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        neuron_kwargs = neuron_kwargs or {}
        self.neuron_type = neuron_type

        layers = []
        previous = in_features
        for hidden in hidden_sizes:
            layers.append(make_dense(neuron_type, previous, hidden, rank=rank, rng=rng,
                                     **neuron_kwargs))
            layers.append(nn.ReLU())
            previous = hidden
        layers.append(nn.Linear(previous, num_classes, rng=rng))
        self.network = nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.network(x)
