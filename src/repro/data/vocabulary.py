"""Token vocabulary with the special symbols used by the sequence models."""

from __future__ import annotations

import numpy as np

__all__ = ["Vocabulary", "PAD_ID", "BOS_ID", "EOS_ID", "UNK_ID"]

PAD_ID = 0
BOS_ID = 1
EOS_ID = 2
UNK_ID = 3

_SPECIALS = ["<pad>", "<bos>", "<eos>", "<unk>"]


class Vocabulary:
    """Bidirectional token ↔ id mapping with ``<pad>/<bos>/<eos>/<unk>`` specials."""

    def __init__(self, tokens):
        self.id_to_token = list(_SPECIALS)
        seen = set(self.id_to_token)
        for token in tokens:
            if token not in seen:
                seen.add(token)
                self.id_to_token.append(token)
        self.token_to_id = {token: index for index, token in enumerate(self.id_to_token)}

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    def encode(self, tokens, add_bos: bool = False, add_eos: bool = True) -> list[int]:
        """Map tokens to ids, optionally wrapping with ``<bos>`` / ``<eos>``."""
        ids = [self.token_to_id.get(token, UNK_ID) for token in tokens]
        if add_bos:
            ids = [BOS_ID] + ids
        if add_eos:
            ids = ids + [EOS_ID]
        return ids

    def decode(self, ids, strip_special: bool = True) -> list[str]:
        """Map ids back to tokens, optionally dropping special symbols."""
        tokens = []
        for token_id in ids:
            token_id = int(token_id)
            if strip_special and token_id in (PAD_ID, BOS_ID, EOS_ID):
                continue
            if 0 <= token_id < len(self.id_to_token):
                tokens.append(self.id_to_token[token_id])
            else:
                tokens.append("<unk>")
        return tokens

    @staticmethod
    def pad_batch(sequences: list[list[int]], max_len: int | None = None) -> np.ndarray:
        """Right-pad integer sequences into a dense ``(batch, max_len)`` array."""
        if max_len is None:
            max_len = max(len(sequence) for sequence in sequences)
        batch = np.full((len(sequences), max_len), PAD_ID, dtype=np.int64)
        for row, sequence in enumerate(sequences):
            clipped = sequence[:max_len]
            batch[row, :len(clipped)] = clipped
        return batch
