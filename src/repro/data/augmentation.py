"""Data augmentation matching the paper's CIFAR training recipe.

The paper pads images, takes a random crop back to the original resolution and
applies a random horizontal flip.  The functions operate on NumPy batches of
shape ``(N, C, H, W)`` and are composed by the data loader.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_crop", "random_horizontal_flip", "Compose", "standard_cifar_augmentation"]


def random_crop(images: np.ndarray, padding: int, rng: np.random.Generator) -> np.ndarray:
    """Pad by ``padding`` pixels on every side and crop back to the original size."""
    if padding <= 0:
        return images
    n, channels, height, width = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                    mode="constant")
    output = np.empty_like(images)
    offsets_y = rng.integers(0, 2 * padding + 1, size=n)
    offsets_x = rng.integers(0, 2 * padding + 1, size=n)
    for index in range(n):
        top, left = offsets_y[index], offsets_x[index]
        output[index] = padded[index, :, top:top + height, left:left + width]
    return output


def random_horizontal_flip(images: np.ndarray, rng: np.random.Generator,
                           probability: float = 0.5) -> np.ndarray:
    """Flip each image left-right with the given probability."""
    flip = rng.random(images.shape[0]) < probability
    output = images.copy()
    output[flip] = output[flip, :, :, ::-1]
    return output


class Compose:
    """Chain augmentation callables ``f(images, rng) -> images``."""

    def __init__(self, transforms):
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images, rng)
        return images


def standard_cifar_augmentation(padding: int = 2) -> Compose:
    """Random crop (with padding) followed by random horizontal flip.

    The paper uses a 4-pixel pad on 32×32 images; the default of 2 keeps the
    same pad-to-size ratio for the 16×16 images used by the CPU benchmarks.
    """
    return Compose([
        lambda images, rng: random_crop(images, padding, rng),
        random_horizontal_flip,
    ])
