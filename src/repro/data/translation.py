"""Synthetic English→German-style translation corpus (WMT14 newstest stand-in).

The Table II experiment needs a sequence-to-sequence task on which (a) a small
Transformer can be trained from scratch on CPU, (b) BLEU is a meaningful
metric, and (c) the four evaluation settings of the paper (13a vs
"international" tokenization, cased vs uncased) actually produce different
numbers.  This module builds such a task from a miniature bilingual grammar:

* a word-level dictionary maps each source word to a target word;
* target sentences follow verb-final order (the verb of the source main clause
  moves to the end), so the model has to learn a non-trivial reordering;
* target nouns are capitalized (German orthography), which makes cased and
  uncased BLEU differ;
* adjectives take an ``-n`` suffix in front of plural nouns (simple
  morphology);
* sentence-final punctuation stays attached to the last word in the *surface*
  string, so the 13a-style tokenizer (which splits punctuation) and the
  international tokenizer (which splits on every non-letter) score differently.

The mapping is deterministic given the random seed, so train/test splits are
reproducible and test sentences are unseen combinations rather than unseen
rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vocabulary import Vocabulary, BOS_ID, EOS_ID, PAD_ID

__all__ = ["TranslationPair", "SyntheticTranslationTask"]


# Miniature bilingual lexicon: (source, target, part-of-speech).
_NAMES = [("anna", "Anna"), ("peter", "Peter"), ("maria", "Maria"), ("john", "Johann"),
          ("lisa", "Lisa"), ("tom", "Thomas")]
_NOUNS = [("ball", "Ball"), ("house", "Haus"), ("dog", "Hund"), ("cat", "Katze"),
          ("tree", "Baum"), ("car", "Auto"), ("book", "Buch"), ("table", "Tisch"),
          ("fish", "Fisch"), ("garden", "Garten")]
_VERBS = [("sees", "sieht"), ("likes", "mag"), ("finds", "findet"), ("takes", "nimmt"),
          ("holds", "haelt"), ("wants", "will"), ("buys", "kauft"), ("paints", "malt")]
_ADJECTIVES = [("red", "rote"), ("big", "grosse"), ("old", "alte"), ("new", "neue"),
               ("small", "kleine"), ("good", "gute"), ("green", "gruene"), ("blue", "blaue")]
_DETERMINERS = [("the", "das"), ("a", "ein"), ("this", "dieses"), ("every", "jedes")]
_ADVERBS = [("today", "heute"), ("often", "oft"), ("now", "jetzt"), ("here", "hier")]


@dataclass(frozen=True)
class TranslationPair:
    """A single parallel sentence: tokenized model inputs plus surface strings."""

    source_tokens: tuple[str, ...]
    target_tokens: tuple[str, ...]
    source_text: str
    target_text: str


class SyntheticTranslationTask:
    """Deterministic parallel corpus with train/test splits and model-ready arrays."""

    def __init__(self, train_size: int = 512, test_size: int = 96, max_len: int = 16,
                 seed: int = 0):
        self.train_size = train_size
        self.test_size = test_size
        self.max_len = max_len
        self.seed = seed

        rng = np.random.default_rng(seed)
        total = train_size + test_size
        pairs = [self._generate_pair(rng) for _ in range(total)]
        self.train_pairs = pairs[:train_size]
        self.test_pairs = pairs[train_size:]

        source_tokens = sorted({token for pair in pairs for token in pair.source_tokens})
        target_tokens = sorted({token for pair in pairs for token in pair.target_tokens})
        self.source_vocab = Vocabulary(source_tokens)
        self.target_vocab = Vocabulary(target_tokens)

        self.bos_id = BOS_ID
        self.eos_id = EOS_ID
        self.pad_id = PAD_ID

    # -- sentence generation ----------------------------------------------------

    def _generate_clause(self, rng: np.random.Generator) -> tuple[list[str], list[str]]:
        """One subject–verb–object clause; the target clause is verb-final."""
        name_src, name_tgt = _NAMES[rng.integers(len(_NAMES))]
        verb_src, verb_tgt = _VERBS[rng.integers(len(_VERBS))]
        det_src, det_tgt = _DETERMINERS[rng.integers(len(_DETERMINERS))]
        adj_src, adj_tgt = _ADJECTIVES[rng.integers(len(_ADJECTIVES))]
        noun_src, noun_tgt = _NOUNS[rng.integers(len(_NOUNS))]

        use_adverb = rng.random() < 0.4
        use_adjective = rng.random() < 0.7

        source = [name_src, verb_src, det_src]
        target = [name_tgt, det_tgt]
        if use_adjective:
            source.append(adj_src)
            target.append(adj_tgt)
        source.append(noun_src)
        target.append(noun_tgt)
        if use_adverb:
            adv_src, adv_tgt = _ADVERBS[rng.integers(len(_ADVERBS))]
            source.append(adv_src)
            target.append(adv_tgt)
        # Verb-final order in the target language.
        target.append(verb_tgt)
        return source, target

    def _generate_pair(self, rng: np.random.Generator) -> TranslationPair:
        source, target = self._generate_clause(rng)
        # Compound sentences ("... and ...") join two clauses; both target
        # clauses keep their verb-final order, which forces the model to learn
        # a longer-range reordering than single-clause sentences.
        if rng.random() < 0.45:
            second_source, second_target = self._generate_clause(rng)
            source = source + ["and"] + second_source
            target = target + ["und"] + second_target
        punctuation = "." if rng.random() < 0.8 else "!"
        source.append(punctuation)
        target.append(punctuation)

        source_text = self._detokenize(source)
        target_text = self._detokenize(target)
        return TranslationPair(tuple(source), tuple(target), source_text, target_text)

    @staticmethod
    def _detokenize(tokens: list[str]) -> str:
        """Join tokens into a surface string with punctuation attached."""
        text = ""
        for token in tokens:
            if token in {".", "!", ",", "?"}:
                text = text.rstrip() + token + " "
            else:
                text += token + " "
        return text.strip()

    # -- model-ready encodings -----------------------------------------------------

    def encode_pairs(self, pairs: list[TranslationPair]
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode pairs into ``(source_ids, decoder_input_ids, decoder_target_ids)``.

        Decoder inputs start with ``<bos>`` and exclude the final token;
        decoder targets exclude ``<bos>`` and end with ``<eos>`` — the standard
        teacher-forcing shift.
        """
        source_ids = [self.source_vocab.encode(pair.source_tokens, add_eos=True)
                      for pair in pairs]
        target_full = [self.target_vocab.encode(pair.target_tokens, add_bos=True, add_eos=True)
                       for pair in pairs]
        decoder_input = [sequence[:-1] for sequence in target_full]
        decoder_target = [sequence[1:] for sequence in target_full]
        return (Vocabulary.pad_batch(source_ids, self.max_len),
                Vocabulary.pad_batch(decoder_input, self.max_len),
                Vocabulary.pad_batch(decoder_target, self.max_len))

    def training_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.encode_pairs(self.train_pairs)

    def test_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.encode_pairs(self.test_pairs)

    # -- evaluation helpers -----------------------------------------------------------

    def references(self, pairs: list[TranslationPair] | None = None) -> list[str]:
        """Surface reference strings for BLEU evaluation (test split by default)."""
        pairs = pairs if pairs is not None else self.test_pairs
        return [pair.target_text for pair in pairs]

    def hypotheses_from_ids(self, batched_ids: list[list[int]]) -> list[str]:
        """Convert decoded target-token ids back to surface strings."""
        hypotheses = []
        for ids in batched_ids:
            tokens = self.target_vocab.decode(ids)
            hypotheses.append(self._detokenize(tokens))
        return hypotheses

    def describe(self) -> dict:
        return {
            "train_size": self.train_size,
            "test_size": self.test_size,
            "max_len": self.max_len,
            "source_vocab": len(self.source_vocab),
            "target_vocab": len(self.target_vocab),
            "seed": self.seed,
        }
