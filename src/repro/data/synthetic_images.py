"""Synthetic image-classification datasets (CIFAR-10 / CIFAR-100 / ImageNet stand-ins).

The paper's image experiments compare *neuron types* on CIFAR-10, CIFAR-100
and ImageNet.  Those datasets cannot be downloaded in this offline
environment, so this module generates deterministic, class-structured images
whose decision structure deliberately mixes:

* **first-order cues** — class-specific spatial prototypes (oriented
  sinusoidal gratings plus a soft elliptical shape mask), which a linear
  neuron can pick up; and
* **second-order cues** — classes that share the *same* mean prototype but
  differ in texture contrast / variance (the label depends on products of
  latent factors), which reward neurons able to model interactions between
  inputs, i.e. exactly the quadratic structure the paper exploits.

This preserves the qualitative comparison of the paper (quadratic neurons
match or beat linear neurons of larger size) while every parameter/FLOP
number reported by the benchmarks remains exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SyntheticImageClassification",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_imagenet_like",
]


@dataclass
class SyntheticImageClassification:
    """Deterministic synthetic image-classification dataset.

    Attributes (populated on construction)
    --------------------------------------
    train_images / test_images:
        Float32 arrays of shape ``(N, channels, image_size, image_size)``
        normalized to roughly zero mean and unit variance.
    train_labels / test_labels:
        Int64 class labels.
    """

    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    train_size: int = 512
    test_size: int = 128
    noise_level: float = 0.35
    second_order_fraction: float = 0.5
    seed: int = 0

    train_images: np.ndarray = field(init=False, repr=False)
    train_labels: np.ndarray = field(init=False, repr=False)
    test_images: np.ndarray = field(init=False, repr=False)
    test_labels: np.ndarray = field(init=False, repr=False)
    #: Normalization applied to the train split (``{"mean": ..., "std": ...}``
    #: of the raw pixel values).  Serving pipelines embed this in model
    #: bundles so raw inference inputs can be normalized the same way the
    #: training data was.
    train_normalization: dict = field(init=False, repr=False)

    def __post_init__(self):
        rng = np.random.default_rng(self.seed)
        self._prototypes, self._texture_signs = self._build_class_structure(rng)
        self.train_images, self.train_labels, self.train_normalization = \
            self._sample_split(rng, self.train_size)
        self.test_images, self.test_labels, _ = self._sample_split(rng, self.test_size)

    # -- class structure ------------------------------------------------------

    def _build_class_structure(self, rng: np.random.Generator):
        """Create per-class prototypes and the second-order texture assignments."""
        size = self.image_size
        ys, xs = np.meshgrid(np.linspace(-1, 1, size), np.linspace(-1, 1, size), indexing="ij")

        num_second_order = int(round(self.num_classes * self.second_order_fraction))
        num_first_order = self.num_classes - num_second_order

        prototypes = np.zeros((self.num_classes, self.channels, size, size), dtype=np.float32)
        texture_signs = np.zeros(self.num_classes, dtype=np.float32)

        # First-order classes: unique oriented grating + elliptical blob + colour.
        for class_index in range(num_first_order):
            angle = np.pi * class_index / max(num_first_order, 1)
            frequency = 2.0 + 1.5 * (class_index % 3)
            grating = np.sin(frequency * np.pi * (xs * np.cos(angle) + ys * np.sin(angle)))
            center_x, center_y = rng.uniform(-0.4, 0.4, size=2)
            radius = rng.uniform(0.35, 0.7)
            blob = np.exp(-(((xs - center_x) ** 2 + (ys - center_y) ** 2) / radius ** 2))
            pattern = 0.7 * grating + 0.8 * blob
            colour = rng.uniform(0.4, 1.0, size=self.channels)
            prototypes[class_index] = colour[:, None, None] * pattern

        # Second-order classes: pairs share a mean prototype but differ in the
        # *sign of the texture correlation* between channels / neighbouring
        # pixels — only products of inputs separate them.
        shared_rng = np.random.default_rng(self.seed + 1000)
        for pair_offset in range(num_second_order):
            class_index = num_first_order + pair_offset
            pair_id = pair_offset // 2
            angle = np.pi * (pair_id + 0.5) / max(num_second_order, 1)
            grating = np.sin(3.0 * np.pi * (xs * np.cos(angle) + ys * np.sin(angle)))
            shared_colour = shared_rng.uniform(0.4, 1.0, size=self.channels)
            prototypes[class_index] = 0.4 * shared_colour[:, None, None] * grating
            texture_signs[class_index] = 1.0 if pair_offset % 2 == 0 else -1.0

        self._texture_pattern = np.sin(4.0 * np.pi * xs) * np.sin(4.0 * np.pi * ys)
        return prototypes, texture_signs

    # -- sampling ---------------------------------------------------------------

    def _sample_split(self, rng: np.random.Generator, count: int):
        labels = rng.integers(0, self.num_classes, size=count).astype(np.int64)
        images = np.zeros((count, self.channels, self.image_size, self.image_size),
                          dtype=np.float32)
        for index, label in enumerate(labels):
            images[index] = self._sample_image(rng, int(label))
        # Global normalization (per-dataset mean/std, like CIFAR preprocessing).
        mean = images.mean()
        std = images.std() + 1e-8
        images = (images - mean) / std
        normalization = {"mean": float(mean), "std": float(std)}
        return images.astype(np.float32), labels, normalization

    def _sample_image(self, rng: np.random.Generator, label: int) -> np.ndarray:
        amplitude = rng.uniform(0.7, 1.3)
        image = amplitude * self._prototypes[label].copy()

        sign = self._texture_signs[label]
        if sign != 0.0:
            # Second-order cue: a zero-mean latent factor multiplies the texture
            # pattern identically (sign +1) or with alternating channel sign
            # (sign -1).  The *mean* contribution is zero either way; only the
            # correlation between channels carries the label.
            latent = rng.standard_normal()
            channel_signs = np.ones(self.channels) if sign > 0 else \
                np.array([(-1.0) ** c for c in range(self.channels)])
            image += 0.9 * latent * channel_signs[:, None, None] * self._texture_pattern

        image += self.noise_level * rng.standard_normal(image.shape)
        return image

    # -- convenience -------------------------------------------------------------

    def __len__(self) -> int:
        return self.train_size

    #: Configuration fields reported by :meth:`describe` (in report order).
    DESCRIBE_KEYS = ("num_classes", "image_size", "channels", "train_size",
                     "test_size", "noise_level", "second_order_fraction", "seed")

    def describe(self) -> dict:
        """Summary of the dataset configuration (used in experiment reports)."""
        return {key: getattr(self, key) for key in self.DESCRIBE_KEYS}

    @classmethod
    def describe_config(cls, **overrides) -> dict:
        """The :meth:`describe` dictionary for a configuration, without
        generating any data — construction eagerly samples every image, which
        experiment drivers that only need the description should skip."""
        from dataclasses import fields

        config = {f.name: f.default for f in fields(cls) if f.init}
        config.update(overrides)
        return {key: config[key] for key in cls.DESCRIBE_KEYS}


def make_cifar10_like(image_size: int = 16, train_size: int = 512, test_size: int = 128,
                      seed: int = 0) -> SyntheticImageClassification:
    """10-class stand-in for CIFAR-10 at a configurable (reduced) resolution."""
    return SyntheticImageClassification(num_classes=10, image_size=image_size,
                                        train_size=train_size, test_size=test_size, seed=seed)


def make_cifar100_like(image_size: int = 16, train_size: int = 1024, test_size: int = 256,
                       num_classes: int = 20, seed: int = 0) -> SyntheticImageClassification:
    """Many-class stand-in for CIFAR-100 (class count reduced for CPU budgets)."""
    return SyntheticImageClassification(num_classes=num_classes, image_size=image_size,
                                        train_size=train_size, test_size=test_size, seed=seed)


def make_imagenet_like(image_size: int = 24, train_size: int = 768, test_size: int = 192,
                       num_classes: int = 16, seed: int = 0) -> SyntheticImageClassification:
    """Larger-resolution stand-in for the ImageNet training-stability study."""
    return SyntheticImageClassification(num_classes=num_classes, image_size=image_size,
                                        train_size=train_size, test_size=test_size, seed=seed)
