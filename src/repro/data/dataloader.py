"""Mini-batch iteration over in-memory NumPy datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate ``(inputs, targets)`` mini-batches with optional shuffling/augmentation.

    Parameters
    ----------
    inputs, targets:
        Aligned NumPy arrays; the first axis is the example axis.
    batch_size:
        Mini-batch size; the final partial batch is kept unless ``drop_last``.
    shuffle:
        Reshuffle example order at the start of every epoch.
    augmentation:
        Optional callable ``f(batch_inputs, rng) -> batch_inputs`` applied to
        every batch (training-time data augmentation).

    Shuffling and augmentation draw from *separate* RNG streams
    (:attr:`shuffle_rng` / :attr:`augment_rng`), so the epoch's example order
    is identical whether or not augmentation is enabled — which keeps ablation
    runs comparable — and :meth:`state_dict`/:meth:`load_state_dict` expose
    both streams so an interrupted run can resume with bit-identical batches.
    """

    def __init__(self, inputs: np.ndarray, targets: np.ndarray, batch_size: int = 32,
                 shuffle: bool = True, augmentation=None, drop_last: bool = False,
                 seed: int = 0):
        if len(inputs) != len(targets):
            raise ValueError(f"inputs ({len(inputs)}) and targets ({len(targets)}) "
                             "must have the same length")
        self.inputs = inputs
        self.targets = targets
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.augmentation = augmentation
        self.drop_last = drop_last
        self.seed = seed
        self.shuffle_rng = np.random.default_rng(seed)
        self.augment_rng = np.random.default_rng(seed + 1)

    @property
    def rng(self) -> np.random.Generator:
        """Backwards-compatible alias for the shuffle stream."""
        return self.shuffle_rng

    def __len__(self) -> int:
        full, remainder = divmod(len(self.inputs), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.inputs))
        if self.shuffle:
            self.shuffle_rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            batch_indices = order[start:start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            batch_inputs = self.inputs[batch_indices]
            batch_targets = self.targets[batch_indices]
            if self.augmentation is not None:
                batch_inputs = self.augmentation(batch_inputs, self.augment_rng)
            yield batch_inputs, batch_targets

    # -- resume support ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of both RNG streams (taken between epochs for resume)."""
        return {"shuffle_rng": self.shuffle_rng.bit_generator.state,
                "augment_rng": self.augment_rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore both RNG streams from a :meth:`state_dict` snapshot."""
        self.shuffle_rng.bit_generator.state = state["shuffle_rng"]
        self.augment_rng.bit_generator.state = state["augment_rng"]
