"""Mini-batch iteration over in-memory NumPy datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate ``(inputs, targets)`` mini-batches with optional shuffling/augmentation.

    Parameters
    ----------
    inputs, targets:
        Aligned NumPy arrays; the first axis is the example axis.
    batch_size:
        Mini-batch size; the final partial batch is kept unless ``drop_last``.
    shuffle:
        Reshuffle example order at the start of every epoch.
    augmentation:
        Optional callable ``f(batch_inputs, rng) -> batch_inputs`` applied to
        every batch (training-time data augmentation).

    Shuffling and augmentation draw from *separate* RNG streams
    (:attr:`shuffle_rng` / :attr:`augment_rng`), so the epoch's example order
    is identical whether or not augmentation is enabled — which keeps ablation
    runs comparable — and :meth:`state_dict`/:meth:`load_state_dict` expose
    both streams so an interrupted run can resume with bit-identical batches.

    Resume is **batch-granular**: while an epoch is in flight the state dict
    additionally carries a *cursor* — the next batch index plus the shuffle
    RNG state captured *before* the epoch's permutation was drawn.  Restoring
    such a state replays the identical permutation (without touching the live
    stream, which is restored to its post-shuffle position) and the next
    iteration continues from the recorded batch, so a run killed mid-epoch
    resumes with exactly the batches — and exactly the augmentation draws —
    the uninterrupted run would have seen.  Epoch-boundary state dicts (the
    pre-cursor v1 format) contain no cursor and load unchanged.
    """

    def __init__(self, inputs: np.ndarray, targets: np.ndarray, batch_size: int = 32,
                 shuffle: bool = True, augmentation=None, drop_last: bool = False,
                 seed: int = 0):
        if len(inputs) != len(targets):
            raise ValueError(f"inputs ({len(inputs)}) and targets ({len(targets)}) "
                             "must have the same length")
        self.inputs = inputs
        self.targets = targets
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.augmentation = augmentation
        self.drop_last = drop_last
        self.seed = seed
        self.shuffle_rng = np.random.default_rng(seed)
        self.augment_rng = np.random.default_rng(seed + 1)
        # Mid-epoch cursor: the in-flight epoch's permutation, the index of
        # the next batch to yield, and the shuffle RNG state from just before
        # the permutation was drawn (what a resume needs to redraw it).
        self._epoch_order: np.ndarray | None = None
        self._batch_cursor = 0
        self._pre_epoch_state: dict | None = None
        self._resume_pending = False

    @property
    def rng(self) -> np.random.Generator:
        """Backwards-compatible alias for the shuffle stream."""
        return self.shuffle_rng

    def __len__(self) -> int:
        full, remainder = divmod(len(self.inputs), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if self._resume_pending and self._epoch_order is not None:
            # Continue the epoch restored by load_state_dict from its cursor.
            self._resume_pending = False
        else:
            self._pre_epoch_state = self.shuffle_rng.bit_generator.state
            order = np.arange(len(self.inputs))
            if self.shuffle:
                self.shuffle_rng.shuffle(order)
            self._epoch_order = order
            self._batch_cursor = 0
        order = self._epoch_order
        while True:
            start = self._batch_cursor * self.batch_size
            if start >= len(order):
                break
            batch_indices = order[start:start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            batch_inputs = self.inputs[batch_indices]
            batch_targets = self.targets[batch_indices]
            if self.augmentation is not None:
                batch_inputs = self.augmentation(batch_inputs, self.augment_rng)
            # Advance before yielding: a checkpoint taken while the consumer
            # holds this batch records it as already consumed.
            self._batch_cursor += 1
            yield batch_inputs, batch_targets
        self._epoch_order = None
        self._pre_epoch_state = None
        self._batch_cursor = 0

    # -- resume support ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of both RNG streams, plus the mid-epoch cursor when one is live.

        Between epochs this is the v1 two-stream format; mid-epoch it adds a
        ``cursor`` with the next batch index and the pre-epoch shuffle RNG
        state (enough to redraw the in-flight permutation on resume).
        """
        state = {"shuffle_rng": self.shuffle_rng.bit_generator.state,
                 "augment_rng": self.augment_rng.bit_generator.state}
        if self._epoch_order is not None and self._pre_epoch_state is not None:
            state["cursor"] = {"batch_index": int(self._batch_cursor),
                               "pre_epoch_shuffle_rng": self._pre_epoch_state}
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (v1 epoch-boundary or v2 cursor).

        With a cursor present, the in-flight permutation is redrawn from the
        recorded pre-epoch RNG state on a throwaway generator — the live
        streams are restored to their saved (post-shuffle / mid-epoch)
        positions — and the next ``__iter__`` continues from the recorded
        batch instead of starting a fresh epoch.
        """
        self.shuffle_rng.bit_generator.state = state["shuffle_rng"]
        self.augment_rng.bit_generator.state = state["augment_rng"]
        cursor = state.get("cursor")
        if cursor is None:
            self._epoch_order = None
            self._pre_epoch_state = None
            self._batch_cursor = 0
            self._resume_pending = False
            return
        replay = np.random.default_rng()
        replay.bit_generator.state = cursor["pre_epoch_shuffle_rng"]
        order = np.arange(len(self.inputs))
        if self.shuffle:
            replay.shuffle(order)
        self._epoch_order = order
        self._pre_epoch_state = cursor["pre_epoch_shuffle_rng"]
        self._batch_cursor = int(cursor["batch_index"])
        self._resume_pending = True
