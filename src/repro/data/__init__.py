"""Data substrate: synthetic image classification, augmentation, loaders, translation."""

from .synthetic_images import (
    SyntheticImageClassification,
    make_cifar10_like,
    make_cifar100_like,
    make_imagenet_like,
)
from .augmentation import (
    random_crop,
    random_horizontal_flip,
    Compose,
    standard_cifar_augmentation,
)
from .dataloader import DataLoader
from .vocabulary import Vocabulary, PAD_ID, BOS_ID, EOS_ID, UNK_ID
from .translation import SyntheticTranslationTask, TranslationPair

__all__ = [
    "SyntheticImageClassification",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_imagenet_like",
    "random_crop",
    "random_horizontal_flip",
    "Compose",
    "standard_cifar_augmentation",
    "DataLoader",
    "Vocabulary",
    "PAD_ID",
    "BOS_ID",
    "EOS_ID",
    "UNK_ID",
    "SyntheticTranslationTask",
    "TranslationPair",
]
