"""Gradient worker for data-parallel training.

One worker process computes loss/gradient *sums* over its contiguous shard of
a global batch and ships them back to the parent, which reduces shards in
rank order (see :mod:`repro.training.distributed`).  The shard math lives in
:func:`compute_shard_gradients` precisely so the parent's *inline* execution
path (``workers=1``) runs the identical code on the identical arrays — that
shared function is what makes worker-count a pure execution detail with no
numerical footprint.

Wire protocol (mirrors :mod:`repro.serve.pool`):

* first message ``("ready", info)`` after a successful model build, or
  ``("fatal", message, traceback)`` when the spec cannot be built;
* receive ``("step", state_dict, inputs, targets, training)`` →
  send ``("ok", result)`` or ``("error", message, traceback)`` (the model
  raised; the worker itself is fine and keeps serving);
* receive ``("stop",)`` → exit cleanly.

Every ``step`` message carries the parent's full ``state_dict`` — the
authoritative parameter broadcast.  Workers hold no training state between
steps, which is what makes crash recovery trivial: a respawned worker given
the same message computes the same bytes, so the parent can retry an
in-flight step on a fresh process with zero drift.
"""

from __future__ import annotations

import os
import traceback

import numpy as np

from ..parallel.seeding import derive_seed, seed_task_globals
from ..parallel.worker import DEPTH_ENV
from ..tensor import Tensor

__all__ = ["loss_spec_of", "build_sum_loss", "compute_shard_gradients",
           "worker_main"]


def loss_spec_of(loss_fn) -> dict:
    """Describe a supported loss as a JSON-safe spec workers can rebuild.

    Data-parallel training needs the loss in ``reduction="sum"`` form (shard
    sums add exactly; the parent normalizes once), so only losses with a
    known sum decomposition are supported.  Raises ``ValueError`` otherwise.
    """
    from ..nn.loss import CrossEntropyLoss, MSELoss

    if isinstance(loss_fn, CrossEntropyLoss):
        return {"kind": "cross_entropy",
                "label_smoothing": float(loss_fn.label_smoothing),
                "ignore_index": loss_fn.ignore_index}
    if isinstance(loss_fn, MSELoss):
        return {"kind": "mse"}
    raise ValueError(
        f"{type(loss_fn).__name__} has no known sum decomposition for "
        f"data-parallel training; supported losses: CrossEntropyLoss "
        f"(incl. LabelSmoothingLoss), MSELoss")


def build_sum_loss(spec: dict):
    """Rebuild ``(sum_loss_fn, weight_fn)`` from a :func:`loss_spec_of` spec.

    ``sum_loss_fn(logits, targets)`` returns the *summed* loss over the
    shard; ``weight_fn(targets)`` returns the count the matching mean loss
    would have divided by, so the parent can apply the normalization once
    over the global batch.
    """
    from ..nn.loss import CrossEntropyLoss, MSELoss
    from ..tensor.functional import cross_entropy_weight

    kind = spec.get("kind")
    if kind == "cross_entropy":
        ignore_index = spec.get("ignore_index")
        loss = CrossEntropyLoss(label_smoothing=spec.get("label_smoothing", 0.0),
                                ignore_index=ignore_index, reduction="sum")
        return loss, lambda targets: cross_entropy_weight(targets, ignore_index)
    if kind == "mse":
        return MSELoss(reduction="sum"), lambda targets: float(np.asarray(targets).size)
    raise ValueError(f"unknown loss spec kind {kind!r}")


def compute_shard_gradients(model, sum_loss_fn, weight_fn,
                            inputs: np.ndarray, targets: np.ndarray) -> dict:
    """One shard's contribution to a data-parallel step.

    Runs forward + backward on ``model`` (already in the right train/eval
    mode, already holding the authoritative parameters) and returns:

    * ``loss_sum`` — summed (unnormalized) loss over the shard,
    * ``weight`` — the normalization this shard contributes (examples, or
      unmasked positions for masked cross-entropy),
    * ``grads`` — per-parameter gradient *sums* in ``named_parameters``
      order (zeros for parameters the graph never reached),
    * ``buffers`` — the post-forward ``buffer::`` entries (BatchNorm running
      stats); the parent adopts rank 0's,
    * ``predictions`` — per-example argmax, so the parent can compute the
      global batch accuracy without shipping full logits.

    Both the worker process and the parent's inline path call exactly this
    function — identical arrays through identical operations is the whole
    bit-identity argument.
    """
    model.zero_grad()
    logits = model(Tensor(inputs))
    loss = sum_loss_fn(logits, targets)
    loss.backward()
    grads = [parameter.grad.copy() if parameter.grad is not None
             else np.zeros_like(parameter.data)
             for _, parameter in model.named_parameters()]
    buffers = {key: value for key, value in model.state_dict().items()
               if key.startswith("buffer::")}
    return {"loss_sum": float(loss.data),
            "weight": float(weight_fn(targets)),
            "grads": grads,
            "buffers": buffers,
            "predictions": np.argmax(logits.data, axis=-1)}


def worker_main(rank: int, conn, config: dict) -> None:
    """Entry point of one gradient worker process.

    Builds the model architecture once from ``config["model_spec"]`` (the
    parameters are overwritten by every ``step`` message) and the summed
    loss from ``config["loss_spec"]``, then answers step requests until told
    to stop.  Seeded with ``derive_seed(seed, "train-dp", rank)`` and depth-
    tagged via ``REPRO_PARALLEL_DEPTH`` so nothing inside the model can
    recursively fan out.
    """
    os.environ[DEPTH_ENV] = str(config.get("depth", 1))
    seed = derive_seed(config.get("seed", 0), "train-dp", rank)
    seed_task_globals(seed)
    try:
        import repro.models  # noqa: F401 — populates the model registry
        from ..models.registry import build_from_spec

        model = build_from_spec(config["model_spec"])
        sum_loss_fn, weight_fn = build_sum_loss(config["loss_spec"])
    except BaseException as error:  # noqa: BLE001 — reported, not raised
        try:
            conn.send(("fatal", f"{type(error).__name__}: {error}",
                       traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ready", {
        "pid": os.getpid(),
        "rank": rank,
        "seed": seed,
        "depth": int(os.environ[DEPTH_ENV]),
    }))
    try:
        while True:
            command = conn.recv()
            if command[0] == "stop":
                break
            try:
                if command[0] == "step":
                    _, state, inputs, targets, training = command
                    model.load_state_dict(state)
                    model.train(training)
                    result = compute_shard_gradients(model, sum_loss_fn,
                                                     weight_fn, inputs, targets)
                    conn.send(("ok", result))
                else:
                    raise ValueError(f"unknown command {command[0]!r}")
            except Exception as error:  # noqa: BLE001 — shipped to the parent
                conn.send(("error", f"{type(error).__name__}: {error}",
                           traceback.format_exc()))
    except (EOFError, BrokenPipeError, ConnectionError, KeyboardInterrupt):
        pass  # parent went away; nothing useful left to do
    finally:
        conn.close()
