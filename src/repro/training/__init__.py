"""Training harnesses: classification, data-parallel and seq2seq trainers."""

from .history import History
from .trainer import Trainer
from .distributed import DataParallelTrainer, DistributedTrainingError, shard_bounds
from .seq2seq import Seq2SeqTrainer

__all__ = ["History", "Trainer", "DataParallelTrainer",
           "DistributedTrainingError", "shard_bounds", "Seq2SeqTrainer"]
