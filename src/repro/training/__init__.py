"""Training harnesses: classification trainer, seq2seq trainer, history records."""

from .history import History
from .trainer import Trainer
from .seq2seq import Seq2SeqTrainer

__all__ = ["History", "Trainer", "Seq2SeqTrainer"]
