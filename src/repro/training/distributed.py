"""Preemptible data-parallel training with crash-tolerant gradient workers.

:class:`DataParallelTrainer` extends :class:`~repro.training.Trainer` with
data parallelism built around one load-bearing distinction:

* ``world_size`` — how many contiguous shards every global batch is split
  into.  **This defines the arithmetic.**  Each shard's loss and gradient
  *sums* are computed independently, then reduced in rank order and
  normalized once by the global batch weight.
* ``workers`` — how many processes execute those shards.  **This is a pure
  execution detail.**  Shards run through the *same* function
  (:func:`~repro.training.dp_worker.compute_shard_gradients`) on the *same*
  arrays whether they execute inline in the parent (``workers=1``) or on
  spawned worker processes (``workers>1``), and the parent-side reduction is
  the same rank-ordered code in both modes — so for a fixed ``world_size``,
  training is **byte-identical across any worker count**, which is the
  reproducibility contract CI pins (checkpoint sha256 equality between
  ``--train-jobs 1`` and ``--train-jobs 2``).

``world_size=1`` delegates every step to the plain :class:`Trainer` math and
is therefore trivially byte-identical to single-process training.  A fixed
``world_size > 1`` is *not* byte-identical to ``world_size=1`` — splitting a
batch reduction into per-shard partial sums regroups floating-point
additions, and BLAS reductions do not associate — so the shard count is an
explicit, recorded hyperparameter of the run rather than something the
machine size silently chooses.  (Same honest boundary as the serving stack's
"aligned batches" caveat: we promise exactly what the arithmetic can
deliver.)

Fault tolerance follows the pool engine's isolate-and-retry playbook: every
step message carries the parent's full ``state_dict`` (the authoritative
broadcast), so a worker that dies mid-step — crash, OOM, ``kill -9`` — is
respawned, re-seeded via ``derive_seed(seed, "train-dp", rank)``, and the
in-flight shard is retried exactly once on the fresh process.  Because
workers are stateless between steps, the retry computes the same bytes the
dead worker would have; a second death raises
:class:`DistributedTrainingError`.

Nested parallelism degrades instead of exploding: under a sweep worker
(``REPRO_PARALLEL_DEPTH`` set), the trainer clamps to inline execution —
same ``world_size``, same bytes, no grandchild processes.
"""

from __future__ import annotations

import math
import os
import threading
from multiprocessing import get_context

import numpy as np

from ..data.dataloader import DataLoader
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..parallel.executor import START_METHOD_ENV, parallel_depth
from .dp_worker import build_sum_loss, compute_shard_gradients, loss_spec_of, worker_main
from .trainer import Trainer

__all__ = ["DistributedTrainingError", "DataParallelTrainer", "shard_bounds"]


class DistributedTrainingError(RuntimeError):
    """A data-parallel worker could not be started, or died twice on one step."""


class _WorkerDied(Exception):
    """Internal: a worker was found dead before/while talking to it."""

    def __init__(self, exitcode):
        super().__init__(f"worker process is dead (exitcode {exitcode})")
        self.exitcode = exitcode


def shard_bounds(total: int, world_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` row bounds splitting ``total`` rows into shards.

    Balanced: with ``total = q * world_size + r``, the first ``r`` shards get
    ``q + 1`` rows and the rest ``q`` — so shard sizes differ by at most one,
    every row lands in exactly one shard, and the bounds depend only on
    ``(total, world_size)``, never on the worker count.  When ``total <
    world_size`` the tail shards are empty (``start == end``) and contribute
    nothing to the reduction.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, remainder = divmod(total, world_size)
    bounds = []
    start = 0
    for rank in range(world_size):
        size = base + (1 if rank < remainder else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class _WorkerHandle:
    """Parent-side handle for one gradient worker: pipe, liveness, counters."""

    __slots__ = ("rank", "process", "conn", "info", "restarts", "lock")

    def __init__(self, rank: int):
        self.rank = rank
        self.process = None
        self.conn = None
        self.info: dict = {}
        self.restarts = 0
        # Serializes pipe access between the dispatching thread that owns
        # this worker for the current step and out-of-band shutdown.
        self.lock = threading.Lock()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class DataParallelTrainer(Trainer):
    """Data-parallel :class:`Trainer`: shard every batch, reduce gradient sums.

    Parameters
    ----------
    world_size:
        Number of contiguous gradient shards per global batch — the
        arithmetic-defining knob.  ``1`` delegates to plain :class:`Trainer`
        math.
    workers:
        Number of worker processes (default: one per CPU, capped at
        ``world_size``).  Purely an execution knob: any value produces the
        same bytes for the same ``world_size``.  Clamped to ``1`` (inline)
        inside sweep workers.  ``workers > 1`` requires a registry-built
        model (workers rebuild the architecture from ``model.model_spec``)
        and a loss with a known sum decomposition.
    seed:
        Root seed for worker identity: rank *r* is seeded with
        ``derive_seed(seed, "train-dp", r)``.

    The remaining parameters are inherited from :class:`Trainer`; so are
    ``fit``/``checkpoint_every_steps``/``resume_from`` — step-granular
    preemption composes with data parallelism unchanged, because
    checkpoints see only the reduced (worker-count-independent) state.
    """

    def __init__(self, model: Module, optimizer: Optimizer, loss_fn,
                 scheduler: LRScheduler | None = None, grad_clip: float | None = None,
                 divergence_threshold: float = 1e4, *, world_size: int = 2,
                 workers: int | None = None, seed: int = 0):
        super().__init__(model, optimizer, loss_fn, scheduler=scheduler,
                         grad_clip=grad_clip,
                         divergence_threshold=divergence_threshold)
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = int(world_size)
        self.seed = int(seed)
        self.restarts = 0
        self.degraded = False
        self._closed = False
        self._worker_handles: list[_WorkerHandle] = []
        self._context = None
        if self.world_size == 1:
            self.workers = 1
            return
        try:
            self._loss_spec = loss_spec_of(loss_fn)
        except ValueError as error:
            raise DistributedTrainingError(str(error)) from error
        self._sum_loss, self._weight_fn = build_sum_loss(self._loss_spec)
        requested = workers if workers is not None else (os.cpu_count() or 1)
        resolved = max(1, min(int(requested), self.world_size))
        if resolved > 1 and parallel_depth() > 0:
            # Inside a sweep worker: degrade to inline execution instead of
            # spawning grandchildren.  Same world_size, same bytes.
            resolved = 1
            self.degraded = True
        if resolved > 1 and getattr(model, "model_spec", None) is None:
            raise DistributedTrainingError(
                f"{type(model).__name__} has no model_spec; worker processes "
                f"rebuild the architecture by registry spec — register the "
                f"model with repro.models.register_model, or run with "
                f"workers=1 (inline, byte-identical)")
        self.workers = resolved
        if self.workers > 1:
            self._context = get_context(os.environ.get(START_METHOD_ENV, "spawn"))

    # -- worker lifecycle ------------------------------------------------------

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) one gradient worker and wait for its ready ack."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(handle.rank, child_conn, {
                "model_spec": self.model.model_spec,
                "loss_spec": self._loss_spec,
                "seed": self.seed,
                "depth": parallel_depth() + 1,
            }),
            name=f"repro-dp-{handle.rank}",
            daemon=True)
        process.start()
        child_conn.close()  # the child holds its own copy
        try:
            reply = parent_conn.recv()
        except (EOFError, OSError) as error:
            process.join(1.0)
            parent_conn.close()
            raise DistributedTrainingError(
                f"gradient worker {handle.rank} died before answering ready "
                f"(exitcode {process.exitcode})") from error
        if reply[0] != "ready":
            process.join(1.0)
            parent_conn.close()
            raise DistributedTrainingError(
                f"gradient worker {handle.rank} failed to start: "
                f"{reply[1]}\n{reply[2]}")
        handle.process = process
        handle.conn = parent_conn
        handle.info = reply[1]

    def _discard(self, handle: _WorkerHandle) -> None:
        """Isolate a dead/suspect worker: close its pipe, reap the process."""
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(2.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(2.0)
            handle.process = None

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Isolate-and-retry step 1: replace a dead worker with a fresh one."""
        self._discard(handle)
        self._spawn(handle)
        handle.restarts += 1
        self.restarts += 1

    def _ensure_workers(self) -> None:
        """Lazily spawn the worker fleet on the first remote step."""
        if self._closed:
            raise DistributedTrainingError("trainer is closed")
        if self._worker_handles:
            return
        handles = [_WorkerHandle(index) for index in range(self.workers)]
        try:
            for handle in handles:
                self._spawn(handle)
        except BaseException:
            for handle in handles:
                self._discard(handle)
            raise
        self._worker_handles = handles

    def close(self) -> None:
        """Stop the worker processes (``stop`` first, escalating to kill)."""
        self._closed = True
        for handle in self._worker_handles:
            with handle.lock:
                if handle.conn is not None:
                    try:
                        handle.conn.send(("stop",))
                    except (BrokenPipeError, ConnectionError, OSError):
                        pass
                self._discard(handle)
        self._worker_handles = []

    def __enter__(self) -> "DataParallelTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the sharded step ------------------------------------------------------

    def _optimize_batch(self, batch_inputs, batch_targets):
        """One data-parallel step: shard, compute, rank-ordered reduce, apply.

        Identical reduction code runs over the shard results regardless of
        how they were computed (inline or remote), which is what makes the
        worker count numerically invisible.
        """
        if self.world_size == 1:
            return super()._optimize_batch(batch_inputs, batch_targets)
        self.optimizer.zero_grad()
        bounds = shard_bounds(len(batch_targets), self.world_size)
        if self.workers > 1:
            results = self._compute_shards_remote(batch_inputs, batch_targets, bounds)
        else:
            results = self._compute_shards_inline(batch_inputs, batch_targets, bounds)
        live = [result for result in results if result is not None]

        # Rank-ordered scalar reduction: shard loss *sums* add exactly; the
        # mean's normalization is applied once, over the global weight.
        loss_sum = 0.0
        weight = 0.0
        for result in live:
            loss_sum += result["loss_sum"]
            weight += result["weight"]
        loss_value = loss_sum / max(weight, 1.0)
        predictions = (np.concatenate([result["predictions"] for result in live])
                       if live else np.empty(0, dtype=np.int64))

        # Rank-0 buffer authority (the DDP convention): every shard saw the
        # pre-batch running stats; the model keeps rank 0's post-batch ones.
        # Applied even on a diverged step — the plain Trainer's forward also
        # mutates buffers before its divergence check.
        if live and live[0]["buffers"]:
            self.model.load_state_dict(live[0]["buffers"], strict=False)
        if not math.isfinite(loss_value) or loss_value > self.divergence_threshold:
            return loss_value, predictions, False

        # Rank-ordered gradient reduction: accumulate shard sums in shard
        # order, then divide by the global weight once.  Order and grouping
        # are fixed by this loop, not by which process produced each term.
        for index, (_, parameter) in enumerate(self.model.named_parameters()):
            accumulated = live[0]["grads"][index].copy()
            for result in live[1:]:
                accumulated += result["grads"][index]
            parameter.grad = accumulated / accumulated.dtype.type(weight)

        if self.grad_clip is not None:
            self.optimizer.clip_grad_norm(self.grad_clip)
        self.optimizer.step()
        return loss_value, predictions, True

    def _batch_accuracy(self, logits, batch_targets) -> float:
        """Accuracy from the rank-ordered predictions the sharded step returns.

        Per-row argmax is row-local, so the concatenated shard predictions
        equal the full-batch argmax exactly — training accuracy matches the
        plain Trainer's bitwise even though the loss normalization differs.
        """
        if self.world_size == 1:
            return super()._batch_accuracy(logits, batch_targets)
        return float((logits == np.asarray(batch_targets)).mean())

    def _compute_shards_inline(self, batch_inputs, batch_targets, bounds) -> list:
        """Run every shard sequentially on the parent's own model.

        Buffers are reset to the pre-batch snapshot before each shard so
        every shard observes the same starting state a worker process would
        (workers get the pre-batch ``state_dict`` in their step message).
        """
        pre_buffers = {key: value for key, value in self.model.state_dict().items()
                       if key.startswith("buffer::")}
        results = []
        for start, end in bounds:
            if start == end:
                results.append(None)
                continue
            if pre_buffers:
                self.model.load_state_dict(pre_buffers, strict=False)
            results.append(compute_shard_gradients(
                self.model, self._sum_loss, self._weight_fn,
                batch_inputs[start:end], batch_targets[start:end]))
        return results

    def _compute_shards_remote(self, batch_inputs, batch_targets, bounds) -> list:
        """Fan the shards out across the worker fleet, round-robin by rank.

        Worker *w* computes shards ``w, w + workers, w + 2*workers, ...`` —
        an assignment that only affects *where* each shard runs, never the
        reduction order.  Each dispatching thread drives one worker; any
        shard failure (after the one respawn-and-retry) aborts the step.
        """
        self._ensure_workers()
        state = self.model.state_dict()
        results: list = [None] * len(bounds)
        errors: list[BaseException] = []

        def dispatch(handle: _WorkerHandle, ranks: list[int]) -> None:
            for rank in ranks:
                start, end = bounds[rank]
                if start == end:
                    continue
                try:
                    results[rank] = self._run_shard(
                        handle, state, batch_inputs[start:end],
                        batch_targets[start:end])
                except BaseException as error:  # noqa: BLE001 — re-raised below
                    errors.append(error)
                    return

        threads = []
        for index, handle in enumerate(self._worker_handles):
            ranks = list(range(index, len(bounds), len(self._worker_handles)))
            if not ranks:
                continue
            thread = threading.Thread(target=dispatch, args=(handle, ranks),
                                      name=f"repro-dp-dispatch-{index}",
                                      daemon=True)
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    def _run_shard(self, handle: _WorkerHandle, state, inputs, targets) -> dict:
        """One shard on one worker, with isolate-and-retry on worker death.

        A broken pipe (killed, crashed, OOMed worker) triggers the pool
        playbook: respawn and retry the shard exactly once on the fresh
        process — safe because the step message carries the authoritative
        parameters, so the retry computes the same bytes.  A *model* error
        inside a healthy worker is raised immediately and never retried (it
        would fail identically everywhere).
        """
        for attempt in (1, 2):
            try:
                with handle.lock:
                    if not handle.alive:  # found dead before sending
                        raise _WorkerDied(handle.process.exitcode
                                          if handle.process else None)
                    handle.conn.send(("step", state, inputs, targets,
                                      self.model.training))
                    reply = handle.conn.recv()
            except (_WorkerDied, EOFError, BrokenPipeError, ConnectionError,
                    OSError) as error:
                if self._closed:
                    raise DistributedTrainingError(
                        "trainer closed while a shard was in flight") from error
                if attempt == 2:
                    raise DistributedTrainingError(
                        f"gradient worker {handle.rank} died twice running the "
                        f"same shard (retried once on a respawned worker)") from error
                try:  # isolate-and-retry: fresh worker, one more attempt
                    with handle.lock:
                        self._respawn(handle)
                except DistributedTrainingError as spawn_error:
                    raise DistributedTrainingError(
                        f"gradient worker {handle.rank} died and could not be "
                        f"respawned: {spawn_error}") from spawn_error
                continue
            if reply[0] == "ok":
                return reply[1]
            # ("error", message, traceback): the model raised remotely.
            raise DistributedTrainingError(
                f"gradient worker {handle.rank} step failed: {reply[1]}\n"
                f"--- worker traceback ---\n{reply[2]}")
        raise AssertionError("unreachable")  # pragma: no cover

    # -- introspection ---------------------------------------------------------

    def describe(self) -> dict:
        """Identity facts the determinism and fault-tolerance tests pin."""
        return {
            "world_size": self.world_size,
            "workers": self.workers,
            "degraded": self.degraded,
            "restarts": self.restarts,
            "per_worker": [{
                "rank": handle.rank,
                "pid": handle.info.get("pid"),
                "alive": handle.alive,
                "seed": handle.info.get("seed"),
                "depth": handle.info.get("depth"),
                "restarts": handle.restarts,
            } for handle in self._worker_handles],
        }
