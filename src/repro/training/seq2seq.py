"""Training loop for the translation Transformers (Table II).

Teacher-forced cross-entropy with label smoothing and padding masking, Adam
with the Noam warmup schedule, and BLEU evaluation through greedy decoding —
the same recipe as the paper's Transformer experiments, scaled down.
"""

from __future__ import annotations

import math

import numpy as np

from ..data.translation import SyntheticTranslationTask
from ..data.vocabulary import PAD_ID
from ..metrics.bleu import bleu_score, EVALUATION_SETTINGS
from ..models.transformer import Transformer
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..tensor import no_grad
from .history import History

__all__ = ["Seq2SeqTrainer"]


class Seq2SeqTrainer:
    """Trainer for encoder–decoder translation models."""

    def __init__(self, model: Transformer, optimizer: Optimizer, loss_fn,
                 scheduler: LRScheduler | None = None, grad_clip: float | None = 1.0,
                 divergence_threshold: float = 1e4, seed: int = 0):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.scheduler = scheduler
        self.grad_clip = grad_clip
        self.divergence_threshold = divergence_threshold
        self.history = History()
        self.diverged = False
        self.rng = np.random.default_rng(seed)

    def train_epoch(self, source_ids: np.ndarray, decoder_inputs: np.ndarray,
                    decoder_targets: np.ndarray, batch_size: int = 32) -> dict:
        """One epoch of teacher-forced training over the full parallel corpus."""
        self.model.train()
        order = self.rng.permutation(len(source_ids))
        total_loss = 0.0
        total_batches = 0
        for start in range(0, len(order), batch_size):
            batch = order[start:start + batch_size]
            self.optimizer.zero_grad()
            logits = self.model(source_ids[batch], decoder_inputs[batch])
            loss = self.loss_fn(logits, decoder_targets[batch])
            loss_value = float(loss.data)
            if not math.isfinite(loss_value) or loss_value > self.divergence_threshold:
                self.diverged = True
                break
            loss.backward()
            if self.grad_clip is not None:
                self.optimizer.clip_grad_norm(self.grad_clip)
            self.optimizer.step()
            if self.scheduler is not None:
                self.scheduler.step()
            total_loss += loss_value
            total_batches += 1
        return {"loss": total_loss / max(total_batches, 1), "diverged": self.diverged}

    def evaluate_loss(self, source_ids: np.ndarray, decoder_inputs: np.ndarray,
                      decoder_targets: np.ndarray, batch_size: int = 32) -> float:
        """Teacher-forced loss on held-out data."""
        self.model.eval()
        total_loss = 0.0
        total_batches = 0
        with no_grad():
            for start in range(0, len(source_ids), batch_size):
                stop = start + batch_size
                logits = self.model(source_ids[start:stop], decoder_inputs[start:stop])
                loss = self.loss_fn(logits, decoder_targets[start:stop])
                total_loss += float(loss.data)
                total_batches += 1
        return total_loss / max(total_batches, 1)

    def evaluate_bleu(self, task: SyntheticTranslationTask, batch_size: int = 32,
                      max_len: int | None = None,
                      decoder: str = "incremental") -> dict:
        """Greedy-decode the test split and score BLEU under all Table II settings.

        Decoding runs through the KV-cached incremental path
        (:meth:`~repro.models.transformer.Transformer.greedy_decode`), which
        is byte-identical to — and much faster than — the full-prefix
        recompute; pass ``decoder="reference"`` to force the O(T²) reference
        implementation (used by the identity tests).  Returns a dictionary
        keyed by ``(tokenization, cased)`` plus the raw hypothesis strings
        under ``"hypotheses"``.
        """
        if decoder not in ("incremental", "reference"):
            raise ValueError(f"decoder must be 'incremental' or 'reference', "
                             f"got {decoder!r}")
        decode = self.model.greedy_decode if decoder == "incremental" \
            else self.model.greedy_decode_reference
        self.model.eval()
        source_ids, _, _ = task.test_arrays()
        hypotheses_ids: list[list[int]] = []
        for start in range(0, len(source_ids), batch_size):
            decoded = decode(
                source_ids[start:start + batch_size], bos_id=task.bos_id, eos_id=task.eos_id,
                max_len=max_len or task.max_len)
            hypotheses_ids.extend(decoded)
        hypotheses = task.hypotheses_from_ids(hypotheses_ids)
        references = task.references()
        scores = {}
        for tokenization, cased in EVALUATION_SETTINGS:
            scores[(tokenization, cased)] = bleu_score(
                hypotheses, references, tokenization=tokenization, cased=cased)
        scores["hypotheses"] = hypotheses
        return scores

    def fit(self, task: SyntheticTranslationTask, epochs: int, batch_size: int = 32,
            evaluate_every: int = 0, verbose: bool = False) -> History:
        """Train on the task's training split; optionally track test loss/BLEU."""
        source_ids, decoder_inputs, decoder_targets = task.training_arrays()
        test_source, test_inputs, test_targets = task.test_arrays()
        for epoch in range(1, epochs + 1):
            metrics = self.train_epoch(source_ids, decoder_inputs, decoder_targets, batch_size)
            record = {"epoch": epoch, "train_loss": metrics["loss"], "diverged": self.diverged}
            if evaluate_every and epoch % evaluate_every == 0 and not self.diverged:
                record["test_loss"] = self.evaluate_loss(test_source, test_inputs, test_targets,
                                                         batch_size)
                bleu = self.evaluate_bleu(task, batch_size)
                record["bleu_13a_cased"] = bleu[("13a", True)]
            self.history.append(**record)
            if verbose:
                printable = {key: value for key, value in record.items()
                             if isinstance(value, float)}
                print(f"epoch {epoch:3d}  " +
                      "  ".join(f"{key}={value:.4f}" for key, value in printable.items()))
            if self.diverged:
                break
        return self.history
