"""Training history container shared by all trainers."""

from __future__ import annotations

import json
import math
from pathlib import Path

__all__ = ["History"]


class History:
    """Ordered record of per-epoch metrics.

    Every entry is a plain dictionary (``{"epoch": 3, "train_loss": ...}``).
    The container offers convenience accessors used by the experiment drivers
    and the stability analysis.
    """

    def __init__(self):
        self.records: list[dict] = []

    def append(self, **metrics) -> dict:
        record = dict(metrics)
        record.setdefault("epoch", len(self.records) + 1)
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> dict:
        return self.records[index]

    def column(self, key: str) -> list:
        """All recorded values of ``key`` (missing entries are skipped)."""
        return [record[key] for record in self.records if key in record]

    def last(self, key: str, default=None):
        values = self.column(key)
        return values[-1] if values else default

    def best(self, key: str, mode: str = "max"):
        """Best value of ``key`` (ignoring NaN/inf); ``mode`` is ``max`` or ``min``."""
        values = [value for value in self.column(key) if _is_finite(value)]
        if not values:
            return None
        return max(values) if mode == "max" else min(values)

    def to_list(self) -> list[dict]:
        return [dict(record) for record in self.records]

    # -- (de)serialization ------------------------------------------------------

    @classmethod
    def from_records(cls, records: list[dict]) -> "History":
        """Rebuild a history from :meth:`to_list` output (records are copied)."""
        history = cls()
        for record in records:
            history.records.append(dict(record))
        return history

    def to_json(self, indent: int | None = None) -> str:
        """JSON text round-trippable through :meth:`from_json`."""
        from ..io.serialization import to_jsonable

        return json.dumps(to_jsonable(self.records), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "History":
        return cls.from_records(json.loads(text))

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=2))
        return path

    @classmethod
    def load(cls, path) -> "History":
        return cls.from_json(Path(path).read_text())


def _is_finite(value) -> bool:
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False
