"""Training history container shared by all trainers."""

from __future__ import annotations

import math

__all__ = ["History"]


class History:
    """Ordered record of per-epoch metrics.

    Every entry is a plain dictionary (``{"epoch": 3, "train_loss": ...}``).
    The container offers convenience accessors used by the experiment drivers
    and the stability analysis.
    """

    def __init__(self):
        self.records: list[dict] = []

    def append(self, **metrics) -> dict:
        record = dict(metrics)
        record.setdefault("epoch", len(self.records) + 1)
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> dict:
        return self.records[index]

    def column(self, key: str) -> list:
        """All recorded values of ``key`` (missing entries are skipped)."""
        return [record[key] for record in self.records if key in record]

    def last(self, key: str, default=None):
        values = self.column(key)
        return values[-1] if values else default

    def best(self, key: str, mode: str = "max"):
        """Best value of ``key`` (ignoring NaN/inf); ``mode`` is ``max`` or ``min``."""
        values = [value for value in self.column(key) if _is_finite(value)]
        if not values:
            return None
        return max(values) if mode == "max" else min(values)

    def to_list(self) -> list[dict]:
        return [dict(record) for record in self.records]


def _is_finite(value) -> bool:
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False
