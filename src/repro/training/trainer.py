"""Training loop for image classifiers.

The trainer reproduces the relevant aspects of the paper's recipe: SGD with a
multi-step learning-rate schedule, a separate learning rate for the quadratic
eigenvalue parameters (handled through optimizer parameter groups), optional
gradient clipping, and divergence detection — the latter is what the Fig. 6
training-stability study measures.
"""

from __future__ import annotations

import math

import numpy as np

from ..data.dataloader import DataLoader
from ..metrics.accuracy import accuracy
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..tensor import Tensor, no_grad
from .history import History

__all__ = ["Trainer"]


class Trainer:
    """Supervised training loop for classification models.

    Parameters
    ----------
    model, optimizer, loss_fn:
        The usual triple; ``loss_fn(logits, integer_targets)`` must return a
        scalar :class:`Tensor`.
    scheduler:
        Optional :class:`repro.optim.LRScheduler`, stepped once per epoch.
    grad_clip:
        Optional global gradient-norm clip.
    divergence_threshold:
        A batch loss above this value (or any non-finite loss) marks the run
        as diverged; training stops early and the history records the event.
        This implements the "cross mark" divergence criterion of Fig. 6.
    """

    def __init__(self, model: Module, optimizer: Optimizer, loss_fn,
                 scheduler: LRScheduler | None = None, grad_clip: float | None = None,
                 divergence_threshold: float = 1e4):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.scheduler = scheduler
        self.grad_clip = grad_clip
        self.divergence_threshold = divergence_threshold
        self.history = History()
        self.diverged = False
        self.divergence_epoch: int | None = None

    # -- single step / epoch ----------------------------------------------------

    def _optimize_batch(self, batch_inputs, batch_targets):
        """One optimization step: forward, divergence guard, backward, clip, step.

        Returns ``(loss_value, logits, stepped)``; ``stepped`` is ``False``
        when the loss diverged, in which case no parameter update is applied.
        """
        self.optimizer.zero_grad()
        logits = self.model(Tensor(batch_inputs))
        loss = self.loss_fn(logits, batch_targets)
        loss_value = float(loss.data)
        if not math.isfinite(loss_value) or loss_value > self.divergence_threshold:
            return loss_value, logits, False
        loss.backward()
        if self.grad_clip is not None:
            self.optimizer.clip_grad_norm(self.grad_clip)
        self.optimizer.step()
        return loss_value, logits, True

    def train_epoch(self, loader: DataLoader) -> dict:
        """Run one epoch of optimization; returns mean loss and accuracy."""
        self.model.train()
        total_loss = 0.0
        total_correct = 0.0
        total_examples = 0
        for batch_inputs, batch_targets in loader:
            loss_value, logits, stepped = self._optimize_batch(batch_inputs, batch_targets)
            if not stepped:
                self.diverged = True
                total_loss += loss_value if math.isfinite(loss_value) else float("inf")
                total_examples += len(batch_targets)
                break
            batch_size = len(batch_targets)
            total_loss += loss_value * batch_size
            total_correct += accuracy(logits, batch_targets) * batch_size
            total_examples += batch_size
        mean_loss = total_loss / max(total_examples, 1)
        mean_accuracy = total_correct / max(total_examples, 1)
        return {"loss": mean_loss, "accuracy": mean_accuracy, "diverged": self.diverged}

    # -- profiling ----------------------------------------------------------------

    def profile_ops(self, loader: DataLoader, num_batches: int = 1):
        """Time every autograd op over a few full training steps.

        Runs ``num_batches`` optimization steps — through the same
        :meth:`_optimize_batch` path as :meth:`train_epoch`, so gradient
        clipping and the divergence guard still apply — with the graph
        executor's per-op timing hooks enabled, and returns the aggregated
        :class:`repro.metrics.OpTimeTable` (forward entries under the op
        name, backward entries under ``"<name>:backward"``).  Useful for
        spotting which kernels dominate a model's step time.
        """
        from ..metrics.profiler import record_op_times

        self.model.train()
        with record_op_times() as table:
            for index, (batch_inputs, batch_targets) in enumerate(loader):
                if index >= num_batches:
                    break
                _, _, stepped = self._optimize_batch(batch_inputs, batch_targets)
                if not stepped:
                    break
        return table

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray, batch_size: int = 64) -> dict:
        """Loss and accuracy of the current model on held-out data."""
        self.model.eval()
        total_loss = 0.0
        total_correct = 0.0
        total_examples = 0
        with no_grad():
            for start in range(0, len(inputs), batch_size):
                batch_inputs = inputs[start:start + batch_size]
                batch_targets = targets[start:start + batch_size]
                logits = self.model(Tensor(batch_inputs))
                loss = self.loss_fn(logits, batch_targets)
                size = len(batch_targets)
                total_loss += float(loss.data) * size
                total_correct += accuracy(logits, batch_targets) * size
                total_examples += size
        return {"loss": total_loss / max(total_examples, 1),
                "accuracy": total_correct / max(total_examples, 1)}

    # -- full loop -----------------------------------------------------------------

    def fit(self, train_loader: DataLoader, epochs: int,
            eval_inputs: np.ndarray | None = None, eval_targets: np.ndarray | None = None,
            stop_on_divergence: bool = True, verbose: bool = False) -> History:
        """Train for ``epochs`` epochs, recording train/eval metrics per epoch."""
        for epoch in range(1, epochs + 1):
            train_metrics = self.train_epoch(train_loader)
            record = {
                "epoch": epoch,
                "train_loss": train_metrics["loss"],
                "train_accuracy": train_metrics["accuracy"],
                "diverged": self.diverged,
                "lr": self.optimizer.param_groups[0]["lr"],
            }
            if self.diverged and self.divergence_epoch is None:
                self.divergence_epoch = epoch
            if eval_inputs is not None and eval_targets is not None and not self.diverged:
                eval_metrics = self.evaluate(eval_inputs, eval_targets)
                record["eval_loss"] = eval_metrics["loss"]
                record["eval_accuracy"] = eval_metrics["accuracy"]
            self.history.append(**record)
            if verbose:
                print(f"epoch {epoch:3d}  " +
                      "  ".join(f"{key}={value:.4f}" for key, value in record.items()
                                if isinstance(value, float)))
            if self.scheduler is not None:
                self.scheduler.step()
            if self.diverged and stop_on_divergence:
                break
        return self.history
