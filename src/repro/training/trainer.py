"""Training loop for image classifiers.

The trainer reproduces the relevant aspects of the paper's recipe: SGD with a
multi-step learning-rate schedule, a separate learning rate for the quadratic
eigenvalue parameters (handled through optimizer parameter groups), optional
gradient clipping, and divergence detection — the latter is what the Fig. 6
training-stability study measures.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from ..data.dataloader import DataLoader
from ..io.bundle import bundle_section
from ..io.checkpoint import load_checkpoint, save_checkpoint
from ..metrics.accuracy import accuracy
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..tensor import Tensor, no_grad
from .history import History

__all__ = ["Trainer"]


def _atomic_copy(source: Path, destination: Path) -> None:
    """Publish a byte copy of ``source`` at ``destination`` atomically.

    Unique temp name + fsync + rename — the same discipline as
    :func:`repro.io.checkpoint.save_checkpoint` — so concurrent trainers
    sharing a checkpoint_dir never interleave into one file and a crash can
    never publish a torn copy.
    """
    descriptor, temp_name = tempfile.mkstemp(
        dir=destination.parent, prefix=destination.name + ".", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as stream, open(source, "rb") as origin:
            shutil.copyfileobj(origin, stream)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_name, destination)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class Trainer:
    """Supervised training loop for classification models.

    Parameters
    ----------
    model, optimizer, loss_fn:
        The usual triple; ``loss_fn(logits, integer_targets)`` must return a
        scalar :class:`Tensor`.
    scheduler:
        Optional :class:`repro.optim.LRScheduler`, stepped once per epoch.
    grad_clip:
        Optional global gradient-norm clip.
    divergence_threshold:
        A batch loss above this value (or any non-finite loss) marks the run
        as diverged; training stops early and the history records the event.
        This implements the "cross mark" divergence criterion of Fig. 6.
    """

    def __init__(self, model: Module, optimizer: Optimizer, loss_fn,
                 scheduler: LRScheduler | None = None, grad_clip: float | None = None,
                 divergence_threshold: float = 1e4):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.scheduler = scheduler
        self.grad_clip = grad_clip
        self.divergence_threshold = divergence_threshold
        self.history = History()
        self.diverged = False
        self.divergence_epoch: int | None = None
        self.best_metric: float | None = None
        self.best_epoch: int | None = None
        self.stopped_early = False
        #: Optimization steps taken across the whole run (survives resume).
        self.global_step = 0
        # Step-granular checkpointing, armed by fit(checkpoint_every_steps=).
        self._step_checkpoint_dir: Path | None = None
        self._step_checkpoint_every = 0
        # Mid-epoch resume state stashed by load_checkpoint for fit().
        self._pending_partial: dict | None = None
        #: Serving metadata embedded in every checkpoint's bundle section when
        #: the model carries a registry spec: normalization stats, class
        #: labels, input shape (see :func:`repro.io.bundle.bundle_section`).
        self.bundle_info: dict = {}

    # -- single step / epoch ----------------------------------------------------

    def _optimize_batch(self, batch_inputs, batch_targets):
        """One optimization step: forward, divergence guard, backward, clip, step.

        Returns ``(loss_value, logits, stepped)``; ``stepped`` is ``False``
        when the loss diverged, in which case no parameter update is applied.
        """
        self.optimizer.zero_grad()
        logits = self.model(Tensor(batch_inputs))
        loss = self.loss_fn(logits, batch_targets)
        loss_value = float(loss.data)
        if not math.isfinite(loss_value) or loss_value > self.divergence_threshold:
            return loss_value, logits, False
        loss.backward()
        if self.grad_clip is not None:
            self.optimizer.clip_grad_norm(self.grad_clip)
        self.optimizer.step()
        return loss_value, logits, True

    def _batch_accuracy(self, logits, batch_targets) -> float:
        """Per-batch training accuracy from whatever :meth:`_optimize_batch` returned.

        Subclasses that do not carry full-batch logits through the step (the
        data-parallel trainer returns rank-ordered predictions instead)
        override this alongside :meth:`_optimize_batch`.
        """
        return accuracy(logits, batch_targets)

    def train_epoch(self, loader: DataLoader, *, epoch: int | None = None,
                    start_totals: dict | None = None) -> dict:
        """Run one epoch of optimization; returns mean loss and accuracy.

        ``epoch`` (1-based, supplied by :meth:`fit`) and ``start_totals`` (the
        partial-epoch accumulators restored from a step checkpoint) exist for
        step-granular checkpoint/resume: a resumed epoch continues both the
        loader's batch cursor and these running sums, so its final metrics are
        bit-identical to the uninterrupted epoch's.
        """
        self.model.train()
        totals = {"loss": 0.0, "correct": 0.0, "examples": 0, "batches": 0}
        if start_totals:
            totals.update(start_totals)
        for batch_inputs, batch_targets in loader:
            loss_value, logits, stepped = self._optimize_batch(batch_inputs, batch_targets)
            if not stepped:
                self.diverged = True
                totals["loss"] += loss_value if math.isfinite(loss_value) else float("inf")
                totals["examples"] += len(batch_targets)
                break
            batch_size = len(batch_targets)
            totals["loss"] += loss_value * batch_size
            totals["correct"] += self._batch_accuracy(logits, batch_targets) * batch_size
            totals["examples"] += batch_size
            totals["batches"] += 1
            self.global_step += 1
            self._maybe_step_checkpoint(loader, epoch, totals)
        mean_loss = totals["loss"] / max(totals["examples"], 1)
        mean_accuracy = totals["correct"] / max(totals["examples"], 1)
        return {"loss": mean_loss, "accuracy": mean_accuracy, "diverged": self.diverged}

    def _maybe_step_checkpoint(self, loader: DataLoader, epoch: int | None,
                               totals: dict) -> None:
        """Write ``step_<k>.npz`` + rolling ``last_step.npz`` when the step counter says so.

        The checkpoint carries ``(epoch, batch_index)``, the loader's
        mid-epoch cursor (via ``loader.state_dict()``) and the partial-epoch
        metric sums, so :meth:`fit` can resume from it and replay the rest of
        the epoch bit-identically.
        """
        if not self._step_checkpoint_every or self._step_checkpoint_dir is None:
            return
        if self.global_step % self._step_checkpoint_every:
            return
        epoch = epoch if epoch is not None else len(self.history) + 1
        path = self.save_checkpoint(
            self._step_checkpoint_dir / f"step_{self.global_step:06d}.npz",
            loader, epoch=epoch - 1,
            extra={"batch_index": totals["batches"],
                   "epoch_in_progress": epoch,
                   "partial": dict(totals)})
        _atomic_copy(path, self._step_checkpoint_dir / "last_step.npz")

    # -- profiling ----------------------------------------------------------------

    def profile_ops(self, loader: DataLoader, num_batches: int = 1):
        """Time every autograd op over a few full training steps.

        Runs ``num_batches`` optimization steps — through the same
        :meth:`_optimize_batch` path as :meth:`train_epoch`, so gradient
        clipping and the divergence guard still apply — with the graph
        executor's per-op timing hooks enabled, and returns the aggregated
        :class:`repro.metrics.OpTimeTable` (forward entries under the op
        name, backward entries under ``"<name>:backward"``).  Useful for
        spotting which kernels dominate a model's step time.
        """
        from ..metrics.profiler import record_op_times

        self.model.train()
        with record_op_times() as table:
            for index, (batch_inputs, batch_targets) in enumerate(loader):
                if index >= num_batches:
                    break
                _, _, stepped = self._optimize_batch(batch_inputs, batch_targets)
                if not stepped:
                    break
        return table

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray, batch_size: int = 64) -> dict:
        """Loss and accuracy of the current model on held-out data."""
        self.model.eval()
        total_loss = 0.0
        total_correct = 0.0
        total_examples = 0
        with no_grad():
            for start in range(0, len(inputs), batch_size):
                batch_inputs = inputs[start:start + batch_size]
                batch_targets = targets[start:start + batch_size]
                logits = self.model(Tensor(batch_inputs))
                loss = self.loss_fn(logits, batch_targets)
                size = len(batch_targets)
                total_loss += float(loss.data) * size
                total_correct += accuracy(logits, batch_targets) * size
                total_examples += size
        return {"loss": total_loss / max(total_examples, 1),
                "accuracy": total_correct / max(total_examples, 1)}

    # -- checkpointing -------------------------------------------------------------

    def save_checkpoint(self, path, loader: DataLoader | None = None,
                        epoch: int | None = None, extra: dict | None = None) -> Path:
        """Write the full training state (model/optimizer/scheduler/loader/history).

        When the model was built through the registry, the checkpoint also
        embeds a self-describing bundle section (model spec +
        :attr:`bundle_info`), so ``best.npz``/``last.npz`` are directly
        loadable by :func:`repro.io.load_bundle` and servable without any
        knowledge of the producing experiment.  ``extra`` overlays the default
        bookkeeping section — the step-checkpoint path uses it to record
        ``(epoch_in_progress, batch_index)`` and the partial-epoch sums.
        """
        payload = {
            "epoch": epoch if epoch is not None else len(self.history),
            "step": self.global_step,
            "diverged": self.diverged,
            "divergence_epoch": self.divergence_epoch,
            "best_metric": self.best_metric,
            "best_epoch": self.best_epoch,
        }
        if extra:
            payload.update(extra)
        return save_checkpoint(
            path,
            model=self.model,
            optimizer=self.optimizer,
            scheduler=self.scheduler,
            loader=loader,
            history=self.history,
            bundle=bundle_section(self.model, self.bundle_info),
            extra=payload)

    def load_checkpoint(self, path, loader: DataLoader | None = None) -> int:
        """Restore training state saved by :meth:`save_checkpoint`.

        Returns the epoch the checkpoint was taken at, so training can
        continue from the next one.  The trainer must have been constructed
        over the same model/optimizer/scheduler structure as the saved run;
        pass the training ``loader`` to also restore its shuffle/augmentation
        RNG streams (required for bit-identical resume).
        """
        checkpoint = load_checkpoint(path)
        # Strict: a trainer with a scheduler (or a supplied loader) requires the
        # matching section — a silent partial restore would break the
        # bit-identical-resume guarantee without any signal.
        checkpoint.restore(model=self.model, optimizer=self.optimizer,
                           scheduler=self.scheduler, loader=loader)
        self.history = checkpoint.history()
        # Adopt the checkpoint's model spec as provenance: the restored
        # weights originate from *that* run (its init seed included), so
        # checkpoints written after resume must embed the same bundle section
        # as the uninterrupted run — byte-identity depends on it.
        bundle = checkpoint.get("bundle")
        if bundle is not None and hasattr(self.model, "model_spec"):
            self.model.model_spec = bundle["spec"]
        extra = checkpoint.extra
        self.diverged = bool(extra.get("diverged", False))
        self.divergence_epoch = extra.get("divergence_epoch")
        self.best_metric = extra.get("best_metric")
        self.best_epoch = extra.get("best_epoch")
        self.global_step = int(extra.get("step", 0))
        # A step checkpoint (mid-epoch) carries the in-progress epoch and the
        # partial metric sums; fit() consumes this to finish that epoch.
        if extra.get("batch_index") is not None:
            self._pending_partial = {
                "epoch": int(extra["epoch_in_progress"]),
                "totals": dict(extra.get("partial") or {}),
            }
        else:
            self._pending_partial = None
        return int(extra.get("epoch", len(self.history)))

    # -- full loop -----------------------------------------------------------------

    def fit(self, train_loader: DataLoader, epochs: int,
            eval_inputs: np.ndarray | None = None, eval_targets: np.ndarray | None = None,
            stop_on_divergence: bool = True, verbose: bool = False,
            checkpoint_dir: str | Path | None = None, checkpoint_every: int = 0,
            checkpoint_every_steps: int = 0,
            resume_from: str | Path | None = None, monitor: str | None = None,
            monitor_mode: str | None = None, early_stopping_patience: int | None = None,
            min_delta: float = 0.0) -> History:
        """Train for ``epochs`` epochs, recording train/eval metrics per epoch.

        Checkpoint/resume
        -----------------
        With ``checkpoint_dir`` set, ``checkpoint_every`` > 0 writes
        ``epoch_<k>.npz`` plus a rolling ``last.npz`` every N epochs, and the
        best epoch under the monitored metric is saved as ``best.npz``.
        ``checkpoint_every_steps`` > 0 additionally writes ``step_<k>.npz``
        plus a rolling ``last_step.npz`` every N optimization steps, carrying
        ``(epoch, batch_index)``, the loader's mid-epoch cursor and the
        partial-epoch metric sums.  ``resume_from`` restores either kind:
        an epoch checkpoint continues from the following epoch, a step
        checkpoint finishes the interrupted epoch from its recorded batch —
        in both cases the resumed run reproduces the uninterrupted run's
        history and final checkpoints *bit-identically* (a ``kill -9`` at any
        step loses at most ``checkpoint_every_steps`` batches of work and
        zero reproducibility).

        Best tracking / early stopping
        ------------------------------
        ``monitor`` names the history key to track (default: ``eval_accuracy``
        when eval data is given, else ``train_loss``); ``monitor_mode`` is
        ``"max"`` or ``"min"`` (inferred from the name by default).  With
        ``early_stopping_patience`` set, training stops after that many epochs
        without an improvement larger than ``min_delta``.
        """
        if checkpoint_every_steps and checkpoint_dir is None:
            raise ValueError("checkpoint_every_steps requires checkpoint_dir")
        self.stopped_early = False
        start_epoch = 0
        pending = None
        if resume_from is not None:
            start_epoch = self.load_checkpoint(resume_from, loader=train_loader)
            pending = self._pending_partial
            self._pending_partial = None
        else:
            # A fresh (non-resumed) fit must not inherit best-tracking state
            # from a previous stage on the same trainer.
            self.best_metric = None
            self.best_epoch = None
            self.global_step = 0
        has_eval = eval_inputs is not None and eval_targets is not None
        if monitor is None:
            monitor = "eval_accuracy" if has_eval else "train_loss"
        mode = monitor_mode or ("min" if monitor.endswith("loss") else "max")
        if checkpoint_dir is not None:
            checkpoint_dir = Path(checkpoint_dir)
            checkpoint_dir.mkdir(parents=True, exist_ok=True)
        if checkpoint_every_steps:
            self._step_checkpoint_dir = checkpoint_dir
            self._step_checkpoint_every = int(checkpoint_every_steps)

        try:
            return self._fit_loop(train_loader, epochs, start_epoch, pending,
                                  eval_inputs, eval_targets, has_eval,
                                  stop_on_divergence, verbose, checkpoint_dir,
                                  checkpoint_every, monitor, mode,
                                  early_stopping_patience, min_delta)
        finally:
            self._step_checkpoint_dir = None
            self._step_checkpoint_every = 0

    def _fit_loop(self, train_loader, epochs, start_epoch, pending,
                  eval_inputs, eval_targets, has_eval, stop_on_divergence,
                  verbose, checkpoint_dir, checkpoint_every, monitor, mode,
                  early_stopping_patience, min_delta) -> History:
        for epoch in range(start_epoch + 1, epochs + 1):
            start_totals = None
            if pending is not None and pending["epoch"] == epoch:
                start_totals = pending["totals"]
                pending = None
            train_metrics = self.train_epoch(train_loader, epoch=epoch,
                                             start_totals=start_totals)
            record = {
                "epoch": epoch,
                "train_loss": train_metrics["loss"],
                "train_accuracy": train_metrics["accuracy"],
                "diverged": self.diverged,
                "lr": self.optimizer.param_groups[0]["lr"],
            }
            if self.diverged and self.divergence_epoch is None:
                self.divergence_epoch = epoch
            if has_eval and not self.diverged:
                eval_metrics = self.evaluate(eval_inputs, eval_targets)
                record["eval_loss"] = eval_metrics["loss"]
                record["eval_accuracy"] = eval_metrics["accuracy"]
            self.history.append(**record)
            if verbose:
                print(f"epoch {epoch:3d}  " +
                      "  ".join(f"{key}={value:.4f}" for key, value in record.items()
                                if isinstance(value, float)))
            if self.scheduler is not None:
                self.scheduler.step()

            value = record.get(monitor)
            if value is not None and math.isfinite(value) and \
                    self._improved(value, mode, min_delta):
                self.best_metric = float(value)
                self.best_epoch = epoch
                if checkpoint_dir is not None:
                    self.save_checkpoint(checkpoint_dir / "best.npz", train_loader, epoch)
            if checkpoint_dir is not None and checkpoint_every and \
                    epoch % checkpoint_every == 0:
                epoch_path = self.save_checkpoint(
                    checkpoint_dir / f"epoch_{epoch:04d}.npz", train_loader, epoch)
                # last.npz is a byte copy, not a second (expensive) serialization.
                _atomic_copy(epoch_path, checkpoint_dir / "last.npz")

            if self.diverged and stop_on_divergence:
                break
            if early_stopping_patience is not None and self.best_epoch is not None \
                    and epoch - self.best_epoch >= early_stopping_patience:
                self.stopped_early = True
                break
        return self.history

    def _improved(self, value: float, mode: str, min_delta: float) -> bool:
        if self.best_metric is None:
            return True
        if mode == "min":
            return value < self.best_metric - min_delta
        return value > self.best_metric + min_delta
