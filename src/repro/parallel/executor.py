"""Map a batch of tasks over a process pool (or inline), with retries.

:func:`run_tasks` is the single entry point used both by the experiment
runner (one task per experiment) and by the per-model grids inside one
experiment (one task per model).  Guarantees:

* **Determinism** — results come back in submission order, and every task can
  be given a seed derived from a root seed plus its key, so ``jobs=1`` and
  ``jobs=N`` produce byte-identical outputs.
* **Isolation** — ``jobs <= 1`` runs tasks inline through the *same*
  :func:`~repro.parallel.worker.execute_task` code path; ``jobs > 1`` spawns
  fresh interpreter processes (no inherited RNG or registry state).
* **Failure containment** — a task that raises is retried up to ``retries``
  times and then reported as a failed :class:`TaskResult`; a worker process
  that dies outright (segfault, ``os._exit``) breaks the pool, which is
  rebuilt and the in-flight tasks retried.  One bad task never aborts the
  batch.
* **No nested pools** — tasks running inside a pool worker see
  ``parallel_depth() > 0`` and their own fan-outs clamp to ``jobs=1``.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context

from . import events as ev
from .events import TaskEvent
from .seeding import derive_seed
from .worker import DEPTH_ENV, execute_task, worker_initializer

__all__ = ["Task", "TaskResult", "ParallelTaskError", "run_tasks",
           "effective_jobs", "parallel_depth"]

#: Environment variable naming the default worker count (set by the CLI so
#: fan-outs deep inside experiment drivers inherit ``--jobs``).
JOBS_ENV = "REPRO_JOBS"

#: Environment variable selecting the multiprocessing start method.  The
#: default is ``spawn``: workers start from a clean interpreter, which forces
#: the re-resolve-by-name discipline and behaves identically on every
#: platform (``fork`` would leak the parent's dynamically registered specs
#: and global RNG state into the workers).
START_METHOD_ENV = "REPRO_MP_START"


@dataclass(frozen=True)
class Task:
    """One unit of work: a dotted callable reference plus primitive kwargs.

    ``key`` must be unique within a batch; it names the task in events and is
    mixed into the derived per-task seed.  ``kwargs`` must contain only
    picklable primitives (the callable is resolved worker-side, so live
    objects never cross the process boundary).
    """

    key: str
    fn: str
    kwargs: dict = field(default_factory=dict)


@dataclass
class TaskResult:
    """Outcome of one task after all attempts."""

    key: str
    index: int
    ok: bool
    value: object = None
    error: str | None = None
    traceback: str | None = None
    attempts: int = 1
    elapsed_seconds: float = 0.0
    pid: int | None = None


class ParallelTaskError(RuntimeError):
    """Raised by :func:`raise_on_failure` when a batch has failed tasks."""

    def __init__(self, failures: list[TaskResult]):
        self.failures = failures
        # Include the worker-side tracebacks: this exception is usually all
        # that survives to the sweep-level failure report, so the real failing
        # frame inside the task must travel with it.
        details = "\n".join(
            f"--- {result.key} (after {result.attempts} attempt(s)) ---\n"
            f"{(result.traceback or result.error or 'unknown failure').rstrip()}"
            for result in failures)
        super().__init__(f"{len(failures)} task(s) failed after retries:\n{details}")


def parallel_depth() -> int:
    """How many process-pool layers above this process (0 in the parent)."""
    try:
        return int(os.environ.get(DEPTH_ENV, "0"))
    except ValueError:
        return 0


def effective_jobs(jobs: int | str | None = None) -> int:
    """Resolve a requested worker count to a concrete, safe value.

    ``None`` falls back to ``$REPRO_JOBS`` (default 1); ``"auto"`` or any
    value ``<= 0`` means one worker per CPU.  Inside a pool worker the result
    is clamped to 1 so nested fan-outs run sequentially.
    """
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV) or 1
    if isinstance(jobs, str):
        jobs = -1 if jobs.strip().lower() == "auto" else int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    if parallel_depth() > 0:
        return 1
    return int(jobs)


def raise_on_failure(results: list[TaskResult]) -> list[TaskResult]:
    """Return ``results`` unchanged, raising :class:`ParallelTaskError` if any failed."""
    failures = [result for result in results if not result.ok]
    if failures:
        raise ParallelTaskError(failures)
    return results


def run_tasks(tasks: list[Task], jobs: int | str | None = 1, retries: int = 1,
              on_event=None, on_result=None, seed: int | None = None) -> list[TaskResult]:
    """Execute ``tasks`` and return one :class:`TaskResult` per task, in order.

    ``on_event`` receives :class:`~repro.parallel.events.TaskEvent` instances
    as the batch progresses; ``on_result`` receives each finalized
    :class:`TaskResult` in *completion* order (for live reporting — the
    returned list is always in submission order).  ``seed`` (when given)
    derives a per-task seed from ``(seed, task.key)`` that the worker
    installs into the global RNGs before running the task.
    """
    tasks = list(tasks)
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError(f"task keys must be unique within a batch: {keys}")
    emit = on_event if on_event is not None else (lambda event: None)
    deliver = on_result if on_result is not None else (lambda result: None)
    payloads = [{
        "key": task.key,
        "fn": task.fn,
        "kwargs": dict(task.kwargs),
        "seed": None if seed is None else derive_seed(seed, task.key),
    } for task in tasks]

    jobs = min(effective_jobs(jobs), max(len(tasks), 1))
    if jobs <= 1:
        return _run_inline(payloads, retries, emit, deliver)
    return _run_pool(payloads, jobs, retries, emit, deliver)


def _result_from_payload(raw: dict, index: int, attempts: int) -> TaskResult:
    return TaskResult(key=raw["key"], index=index, ok=raw["ok"],
                      value=raw.get("value"), error=raw.get("error"),
                      traceback=raw.get("traceback"), attempts=attempts,
                      elapsed_seconds=raw.get("elapsed_seconds", 0.0),
                      pid=raw.get("pid"))


def _run_inline(payloads: list[dict], retries: int, emit, deliver) -> list[TaskResult]:
    """Sequential execution through the same worker code path as the pool."""
    results = []
    for index, payload in enumerate(payloads):
        attempt = 1
        emit(TaskEvent(ev.SUBMITTED, payload["key"], attempt=attempt))
        while True:
            raw = execute_task(payload)
            if raw["ok"] or attempt > retries:
                break
            emit(TaskEvent(ev.RETRYING, payload["key"], attempt=attempt,
                           error=raw.get("error")))
            attempt += 1
        result = _result_from_payload(raw, index, attempt)
        emit(TaskEvent(ev.COMPLETED if result.ok else ev.FAILED, result.key,
                       attempt=attempt, elapsed_seconds=result.elapsed_seconds,
                       pid=result.pid, error=result.error))
        results.append(result)
        deliver(result)
    return results


def _run_pool(payloads: list[dict], jobs: int, retries: int, emit,
              deliver) -> list[TaskResult]:
    """Process-pool execution with per-task retry and broken-pool recovery.

    A ``BrokenProcessPool`` error cannot be attributed to a task: when one
    worker segfaults, *every* in-flight future fails with it.  So breakage in
    a shared pool requeues the affected tasks **without charging an
    attempt**, and the next round runs in *isolation mode* — one
    single-worker pool per task — where a crash is unambiguously the task's
    own fault and consumes its retry budget.  A repeatedly crashing task
    therefore fails alone; innocent bystanders always get re-run.
    """
    start_method = os.environ.get(START_METHOD_ENV, "spawn")
    context = get_context(start_method)
    results: dict[int, TaskResult] = {}
    #: (payload index, attempt number) still to run.
    pending: list[tuple[int, int]] = [(index, 1) for index in range(len(payloads))]
    isolate = False

    def record(result: TaskResult) -> None:
        results[result.index] = result
        deliver(result)

    while pending:
        retry_next: list[tuple[int, int]] = []
        requeue_uncharged: list[tuple[int, int]] = []
        groups = [[entry] for entry in pending] if isolate else [pending]
        for group in groups:
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(group)), mp_context=context,
                initializer=worker_initializer, initargs=(parallel_depth() + 1,))
            try:
                futures = {}
                for index, attempt in group:
                    futures[pool.submit(execute_task, payloads[index])] = (index, attempt)
                    emit(TaskEvent(ev.SUBMITTED, payloads[index]["key"], attempt=attempt))
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, attempt = futures[future]
                        key = payloads[index]["key"]
                        error = future.exception()
                        if error is None:
                            raw = future.result()
                            if not raw["ok"] and attempt <= retries:
                                emit(TaskEvent(ev.RETRYING, key, attempt=attempt,
                                               error=raw.get("error")))
                                retry_next.append((index, attempt + 1))
                            else:
                                result = _result_from_payload(raw, index, attempt)
                                emit(TaskEvent(
                                    ev.COMPLETED if result.ok else ev.FAILED,
                                    result.key, attempt=attempt,
                                    elapsed_seconds=result.elapsed_seconds,
                                    pid=result.pid, error=result.error))
                                record(result)
                            continue
                        # The worker died without returning a payload.
                        message = f"{type(error).__name__}: {error}"
                        if isinstance(error, BrokenProcessPool) and not isolate:
                            # Can't tell culprit from bystander in a shared
                            # pool — re-run everyone, attempt uncharged, in
                            # isolation next round.
                            requeue_uncharged.append((index, attempt))
                        elif attempt <= retries:
                            emit(TaskEvent(ev.RETRYING, key, attempt=attempt,
                                           error=message))
                            retry_next.append((index, attempt + 1))
                        else:
                            result = TaskResult(
                                key=key, index=index, ok=False,
                                error=f"worker process crashed: {message}",
                                attempts=attempt)
                            emit(TaskEvent(ev.FAILED, key, attempt=attempt,
                                           error=result.error))
                            record(result)
            finally:
                pool.shutdown(wait=True, cancel_futures=True)

        if requeue_uncharged:
            isolate = True
        pending = sorted(retry_next + requeue_uncharged)

    return [results[index] for index in range(len(payloads))]
