"""Structured progress events emitted while a task batch executes.

Events flow to the parent-side reporter (a plain callable) as the executor
observes task lifecycle transitions, so a sweep can show live per-task
progress without the workers ever talking to the terminal themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TaskEvent", "SUBMITTED", "COMPLETED", "FAILED", "RETRYING"]

SUBMITTED = "submitted"
COMPLETED = "completed"
FAILED = "failed"
RETRYING = "retrying"


@dataclass(frozen=True)
class TaskEvent:
    """One lifecycle transition of one task.

    ``kind`` is one of ``submitted`` / ``completed`` / ``failed`` /
    ``retrying``; ``attempt`` counts from 1.  ``pid`` and
    ``elapsed_seconds`` are filled from the worker's result payload for
    ``completed`` / ``failed`` events; ``error`` carries the formatted
    exception for ``failed`` / ``retrying``.
    """

    kind: str
    key: str
    attempt: int = 1
    elapsed_seconds: float = 0.0
    pid: int | None = None
    error: str | None = None

    def __str__(self) -> str:
        suffix = f": {self.error}" if self.error else ""
        return f"[{self.kind}] {self.key} (attempt {self.attempt}){suffix}"
