"""Worker-side task execution.

A :class:`~repro.parallel.executor.Task` never carries live objects — only a
dotted ``"module:function"`` reference plus primitive kwargs — so the payload
pickles trivially under any start method and the worker re-imports and
re-resolves everything by name (the same way the experiment runner re-resolves
an :class:`~repro.experiments.registry.ExperimentSpec` from the registry).

:func:`execute_task` converts *all* task exceptions into a structured failure
payload (with the formatted traceback) instead of letting them propagate: a
raising worker function must surface as a per-task failure the parent can
retry or report, never as an unpicklable exception that poisons the pool.
"""

from __future__ import annotations

import os
import time
import traceback
from importlib import import_module

from .seeding import seed_task_globals

__all__ = ["resolve_callable", "execute_task", "worker_initializer"]

#: Environment variable tracking how many process-pool layers deep we are.
DEPTH_ENV = "REPRO_PARALLEL_DEPTH"


def resolve_callable(reference: str):
    """Import and return the callable named by ``"package.module:attribute"``.

    The attribute part may be dotted (``"pkg.mod:Class.method"``).
    """
    module_name, separator, attribute_path = reference.partition(":")
    if not separator or not module_name or not attribute_path:
        raise ValueError(f"task reference {reference!r} is not of the form "
                         f"'package.module:attribute'")
    target = import_module(module_name)
    for attribute in attribute_path.split("."):
        target = getattr(target, attribute)
    if not callable(target):
        raise TypeError(f"task reference {reference!r} resolved to "
                        f"non-callable {target!r}")
    return target


def execute_task(payload: dict) -> dict:
    """Run one task payload; always return a structured result dictionary.

    ``payload`` is ``{"key": str, "fn": "module:function", "kwargs": dict,
    "seed": int | None}``.  The result is ``{"key", "ok", "value" | "error" +
    "traceback", "elapsed_seconds", "pid"}``.
    """
    key = payload["key"]
    started = time.perf_counter()
    try:
        seed = payload.get("seed")
        if seed is not None:
            seed_task_globals(seed)
        function = resolve_callable(payload["fn"])
        value = function(**payload.get("kwargs", {}))
        return {"key": key, "ok": True, "value": value,
                "elapsed_seconds": time.perf_counter() - started,
                "pid": os.getpid()}
    except Exception as error:
        return {"key": key, "ok": False,
                "error": f"{type(error).__name__}: {error}",
                "traceback": traceback.format_exc(),
                "elapsed_seconds": time.perf_counter() - started,
                "pid": os.getpid()}


def worker_initializer(depth: int) -> None:
    """Pool-process initializer: record the nesting depth.

    :func:`~repro.parallel.executor.effective_jobs` reads the depth to clamp
    nested fan-outs to 1 — an experiment already running inside a pool worker
    executes its per-model grid sequentially instead of oversubscribing the
    machine with a pool of pools.
    """
    os.environ[DEPTH_ENV] = str(depth)
