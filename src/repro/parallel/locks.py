"""Inter-process file locks guarding the artifact cache.

The primary implementation uses ``fcntl.flock`` — advisory, automatically
released when the holding process dies (so a crashed worker never wedges the
sweep).  On platforms without ``fcntl`` a portable ``O_CREAT | O_EXCL``
spin-lock is used instead; it is good enough for tests but, unlike ``flock``,
leaves a stale lock file behind if the holder is killed, so the fallback
treats lock files older than ``stale_seconds`` as abandoned.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

try:  # pragma: no cover - exercised indirectly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None

__all__ = ["FileLock", "LockTimeout", "HAVE_FCNTL"]

HAVE_FCNTL = fcntl is not None


class LockTimeout(TimeoutError):
    """Raised when a lock cannot be acquired within the caller's timeout."""


class FileLock:
    """Exclusive inter-process lock bound to a filesystem path.

    Usage::

        with FileLock(cache_dir / "fig4-smoke-abc.json.lock"):
            ...  # critical section: check cache, train, write artifact

    ``timeout=None`` blocks until acquired; a number bounds the wait and
    raises :class:`LockTimeout` on expiry.  The lock is not reentrant.
    """

    def __init__(self, path: str | Path, timeout: float | None = None,
                 poll_interval: float = 0.05, stale_seconds: float = 3600.0):
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_seconds = stale_seconds
        self._fd: int | None = None

    @property
    def locked(self) -> bool:
        return self._fd is not None

    def acquire(self, timeout: float | None = None) -> "FileLock":
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is already held (not reentrant)")
        timeout = self.timeout if timeout is None else timeout
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = None if timeout is None else time.monotonic() + timeout
        if fcntl is not None:
            self._acquire_flock(deadline)
        else:  # pragma: no cover - non-POSIX fallback
            self._acquire_exclusive_create(deadline)
        return self

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(fd)
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def _acquire_flock(self, deadline: float | None) -> None:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except (BlockingIOError, PermissionError):
                    if deadline is not None and time.monotonic() >= deadline:
                        raise LockTimeout(f"timed out waiting for lock {self.path}")
                    time.sleep(self.poll_interval)
        except LockTimeout:
            os.close(fd)
            raise
        except BaseException:
            os.close(fd)
            raise

    def _acquire_exclusive_create(self, deadline: float | None) -> None:  # pragma: no cover
        while True:
            try:
                self._fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
                return
            except FileExistsError:
                try:
                    if time.time() - self.path.stat().st_mtime > self.stale_seconds:
                        self.path.unlink(missing_ok=True)
                        continue
                except OSError:
                    pass
                if deadline is not None and time.monotonic() >= deadline:
                    raise LockTimeout(f"timed out waiting for lock {self.path}")
                time.sleep(self.poll_interval)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __del__(self):
        self.release()
