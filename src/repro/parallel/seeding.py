"""Deterministic per-task seed derivation.

Parallel sweeps must produce artifacts byte-identical to the sequential path
regardless of how tasks land on worker processes, so no task may depend on
inherited global RNG state.  Every task derives its own seed from a stable
root seed plus its identity components (experiment name, grid coordinates,
task key) by hashing the canonical JSON of those components — order-sensitive,
collision-resistant, and identical in every process.
"""

from __future__ import annotations

import hashlib
import json
import random

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "seed_task_globals"]


def derive_seed(root_seed: int, *components, bits: int = 32) -> int:
    """Derive a deterministic ``bits``-bit seed from a root seed and identity parts.

    Components may be any JSON-serializable primitives (strings, ints,
    floats, nested lists); distinct component tuples give independent seeds
    (``derive_seed(0, "fig4", 20)`` ≠ ``derive_seed(0, "fig4", 32)``), and the
    derivation never collides the way additive schemes (``seed + depth``) can.
    """
    canonical = json.dumps([int(root_seed), *components], sort_keys=True,
                           separators=(",", ":"), default=str)
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    return int.from_bytes(digest[: bits // 8], "big")


def spawn_rng(root_seed: int, *components) -> np.random.Generator:
    """A NumPy ``Generator`` seeded with :func:`derive_seed` of the arguments."""
    return np.random.default_rng(derive_seed(root_seed, *components))


def seed_task_globals(seed: int) -> None:
    """Reset the *global* RNGs (``random``, legacy ``np.random``) for one task.

    Well-behaved task code threads explicit seeds everywhere, but this
    guarantees that any stray use of the global streams is reproducible and
    independent of whether the task runs inline, forked or spawned.
    """
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))
