"""Process-pool execution layer for experiment sweeps.

The subsystem has four small parts, composed by the experiment runner and the
per-model grids inside individual experiments:

* :mod:`~repro.parallel.executor` — :func:`run_tasks` maps a list of
  :class:`Task` descriptions over a ``ProcessPoolExecutor`` (or inline when
  ``jobs <= 1``), retrying crashed tasks once and reporting per-task failures
  instead of aborting the batch.
* :mod:`~repro.parallel.worker` — the picklable worker entry point.  Tasks
  carry a dotted ``"module:function"`` reference plus primitive kwargs, so
  nothing stateful (specs, models, closures) ever crosses the process
  boundary; the worker re-imports and re-resolves everything by name.
* :mod:`~repro.parallel.locks` — ``fcntl``-based advisory file locks (with a
  portable ``O_EXCL`` fallback) so concurrent workers coordinate through the
  artifact cache without double-training or torn writes.
* :mod:`~repro.parallel.seeding` — deterministic per-task seed derivation, so
  results are byte-identical whatever the process placement or completion
  order.
"""

from .events import TaskEvent
from .executor import (
    ParallelTaskError,
    Task,
    TaskResult,
    effective_jobs,
    parallel_depth,
    run_tasks,
)
from .locks import FileLock, LockTimeout
from .seeding import derive_seed, spawn_rng
from .worker import execute_task, resolve_callable

__all__ = [
    "Task",
    "TaskResult",
    "TaskEvent",
    "ParallelTaskError",
    "run_tasks",
    "effective_jobs",
    "parallel_depth",
    "FileLock",
    "LockTimeout",
    "derive_seed",
    "spawn_rng",
    "execute_task",
    "resolve_callable",
]
