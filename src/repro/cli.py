"""Command-line interface: ``python -m repro {list,run,bench}``.

* ``list``  — show every registered experiment and its cached artifacts.
* ``run``   — execute one or more experiments (or ``all``) through the shared
  caching runner; unchanged configurations are cache hits, so an interrupted
  sweep resumes where it stopped.
* ``bench`` — time experiments (cache bypassed) and print a wall-clock table.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .experiments import get_scale
from .experiments.registry import all_specs, experiment_names, get_spec
from .experiments.reporting import format_table
from .experiments.runner import default_cache_dir, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures through the "
                    "declarative experiment registry.")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_cache_dir(subparser):
        subparser.add_argument("--cache-dir", default=None,
                               help="artifact cache directory (default: "
                                    "$REPRO_ARTIFACTS or ./artifacts)")

    list_parser = commands.add_parser(
        "list", help="list registered experiments and cached artifacts")
    add_cache_dir(list_parser)
    list_parser.set_defaults(handler=_command_list)

    run_parser = commands.add_parser(
        "run", help="run experiments through the caching runner")
    add_cache_dir(run_parser)
    run_parser.add_argument("experiments", nargs="+",
                            help="experiment names, or 'all'")
    run_parser.add_argument("--scale", default="bench",
                            help="scale preset: smoke, bench or paper (default: bench)")
    run_parser.add_argument("--resume", dest="resume", action="store_true", default=True,
                            help="reuse cached artifacts so an interrupted sweep "
                                 "continues where it left off (default)")
    run_parser.add_argument("--no-resume", dest="resume", action="store_false",
                            help="ignore cached artifacts for this invocation")
    run_parser.add_argument("--force", action="store_true",
                            help="recompute and overwrite cached artifacts")
    run_parser.add_argument("--quiet", action="store_true",
                            help="suppress per-experiment reports")
    run_parser.set_defaults(handler=_command_run)

    bench_parser = commands.add_parser(
        "bench", help="time experiments end-to-end (bypasses the cache)")
    add_cache_dir(bench_parser)
    bench_parser.add_argument("experiments", nargs="*",
                              help="experiment names (default: all)")
    bench_parser.add_argument("--scale", default="smoke",
                              help="scale preset to time at (default: smoke)")
    bench_parser.add_argument("--json", dest="json_path", default=None,
                              help="also write the timing table to this JSON file")
    bench_parser.set_defaults(handler=_command_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cache_dir(args) -> Path:
    return Path(args.cache_dir) if args.cache_dir else default_cache_dir()


def _resolve_names(requested: list[str]) -> list[str]:
    if requested == ["all"] or requested == []:
        return experiment_names()
    for name in requested:
        get_spec(name)  # raises with the available names on a typo
    return requested


def _command_list(args) -> int:
    cache_dir = _cache_dir(args)
    rows = []
    for spec in all_specs():
        cached = sorted(cache_dir.glob(f"{spec.name}-*.json"))
        rows.append({
            "name": spec.name,
            "artifact": spec.artifact,
            "scaled": "yes" if spec.uses_scale else "no",
            "cached": len(cached),
            "title": spec.title,
        })
    print(format_table(rows, columns=["name", "artifact", "scaled", "cached", "title"]))
    print(f"\n{len(rows)} experiments registered; artifact cache: {cache_dir}")
    return 0


def _print_reports(spec, result: dict) -> None:
    for key in spec.report_keys:
        section = result.get(key)
        if isinstance(section, str):
            print(section)
        elif isinstance(section, dict) and isinstance(section.get("report"), str):
            print(f"[{key}]")
            print(section["report"])


def _command_run(args) -> int:
    names = _resolve_names(args.experiments)
    scale = get_scale(args.scale)
    cache_dir = _cache_dir(args)
    for name in names:
        spec = get_spec(name)
        outcome = run_experiment(name, scale=scale, cache_dir=cache_dir,
                                 force=args.force, use_cache=args.resume)
        status = "cached" if outcome.cache_hit else f"ran in {outcome.elapsed_seconds:.1f}s"
        print(f"== {spec.artifact} ({name}) @ {outcome.scale}: {status} "
              f"-> {outcome.path}")
        if not args.quiet:
            _print_reports(spec, outcome.result)
    return 0


def _command_bench(args) -> int:
    names = _resolve_names(args.experiments)
    scale = get_scale(args.scale)
    cache_dir = _cache_dir(args)
    rows = []
    for name in names:
        outcome = run_experiment(name, scale=scale, cache_dir=cache_dir, force=True)
        rows.append({"experiment": name, "scale": outcome.scale,
                     "seconds": outcome.elapsed_seconds})
        print(f"{name}: {outcome.elapsed_seconds:.2f}s")
    table = format_table(rows, columns=["experiment", "scale", "seconds"])
    print()
    print(table)
    if args.json_path:
        Path(args.json_path).write_text(json.dumps(rows, indent=2))
        print(f"wrote {args.json_path}")
    return 0
