"""Command-line interface: ``python -m repro {list,run,sweep,bench,predict,serve}``.

* ``list``    — show every registered experiment and its cached artifacts.
* ``run``     — execute one or more experiments (or ``--all``) through the
  shared caching runner, optionally fanned out over a process pool with
  ``--jobs N``; unchanged configurations are cache hits, so an interrupted
  sweep resumes where it stopped.  Trained models land next to the artifacts
  as servable bundles.
* ``sweep``   — run every experiment across one or more scales with a parallel
  worker pool by default (``--jobs auto``); per-experiment failures are
  reported at the end instead of aborting the sweep.
* ``bench``   — regenerate the perf trajectory (``BENCH_autograd.json``):
  experiment wall times through the same cached runner (cache bypassed), the
  fused-kernel micro-benchmarks, the batched-inference micro-benchmark, and
  the concurrent-load serving micro-benchmark (batched vs direct engine at 8
  client threads), and the traced-replay-vs-dispatch micro-benchmark, with
  optional ``--min-fused-speedup`` / ``--min-inference-speedup`` /
  ``--min-serving-speedup`` / ``--min-trace-speedup`` CI gates.
* ``train``   — train one registered classifier directly (outside the
  experiment registry), optionally sharding every batch across
  ``--world-size`` gradient shards computed by ``--train-jobs`` worker
  processes (worker count never changes the bytes; shard count does),
  with step-granular checkpoints (``--checkpoint-every-steps``) that make
  the run preemptible: ``kill -9`` it, then ``--resume-from
  DIR/last_step.npz`` replays the epoch's remaining batches
  bit-identically.
* ``predict`` — batched, no-grad inference on a saved model bundle (from
  a ``.npy`` file or seeded random inputs), JSON out.
* ``generate`` — autoregressive decoding on a saved *generation* bundle
  (a seq2seq Transformer saved with its vocabularies, e.g. by the table2
  experiment): token ids or whitespace-tokenized ``--text`` in, generated
  tokens with per-step log-probabilities out, through the KV-cached
  continuous-batching engine (``--strategy``, ``--temperature``,
  ``--top-k``, ``--seed``).
* ``serve``   — expose one or more bundles over HTTP through the v1
  multi-model API (``GET /v1/models``, ``POST /v1/models/<name>/predict``,
  ``GET /v1/stats``, plus legacy ``/healthz`` and ``/predict`` shims),
  with cross-request dynamic batching by default (``--engine batched``,
  tuned by ``--max-batch`` / ``--max-wait-ms`` / ``--queue-size``),
  trace-and-replay compilation per model (disable with ``--no-compile``),
  per-model admission control (``--max-inflight``), the ``/v1/admin``
  control plane (disable with ``--no-admin``), and graceful SIGINT/SIGTERM
  draining.
* ``promote`` — swap a trained bundle (a path, or a sweep artifact's best
  checkpoint via its ``meta.bundles``) into a *running* server through the
  admin API: an immediate hot reload, or a staged canary/shadow
  (``--canary`` / ``--shadow``) finalized later with ``--finalize``.
* ``reload``  — hot-reload a mounted model on a running server (re-load its
  current bundle, or ``--bundle`` to swap paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .experiments import get_scale
from .experiments.registry import all_specs, experiment_names, get_spec
from .experiments.reporting import SweepReporter, format_table
from .experiments.runner import default_cache_dir, run_many

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures through the "
                    "declarative experiment registry.")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_cache_dir(subparser):
        subparser.add_argument("--cache-dir", default=None,
                               help="artifact cache directory (default: "
                                    "$REPRO_ARTIFACTS or ./artifacts)")

    def add_jobs(subparser, default=None):
        subparser.add_argument("--jobs", "-j", default=default, metavar="N",
                               help="worker processes for the sweep: an integer, "
                                    "or 'auto' for one per CPU (default: "
                                    "$REPRO_JOBS or 1)")

    list_parser = commands.add_parser(
        "list", help="list registered experiments and cached artifacts")
    add_cache_dir(list_parser)
    list_parser.set_defaults(handler=_command_list)

    run_parser = commands.add_parser(
        "run", help="run experiments through the caching runner")
    add_cache_dir(run_parser)
    run_parser.add_argument("experiments", nargs="*",
                            help="experiment names, or 'all'")
    run_parser.add_argument("--all", dest="run_all", action="store_true",
                            help="run every registered experiment")
    run_parser.add_argument("--scale", default="bench",
                            help="scale preset: smoke, bench or paper (default: bench)")
    add_jobs(run_parser)
    run_parser.add_argument("--resume", dest="resume", action="store_true", default=True,
                            help="reuse cached artifacts so an interrupted sweep "
                                 "continues where it left off (default)")
    run_parser.add_argument("--no-resume", dest="resume", action="store_false",
                            help="ignore cached artifacts for this invocation")
    run_parser.add_argument("--force", action="store_true",
                            help="recompute and overwrite cached artifacts")
    run_parser.add_argument("--quiet", action="store_true",
                            help="suppress per-experiment reports")
    run_parser.set_defaults(handler=_command_run)

    sweep_parser = commands.add_parser(
        "sweep", help="run every experiment across scales on a worker pool")
    add_cache_dir(sweep_parser)
    sweep_parser.add_argument("experiments", nargs="*",
                              help="experiment names (default: all registered)")
    sweep_parser.add_argument("--scales", nargs="+", default=["smoke"],
                              metavar="SCALE",
                              help="scale presets to sweep (default: smoke)")
    add_jobs(sweep_parser, default="auto")
    sweep_parser.add_argument("--force", action="store_true",
                              help="recompute and overwrite cached artifacts")
    sweep_parser.set_defaults(handler=_command_sweep)

    bench_parser = commands.add_parser(
        "bench", help="regenerate the perf trajectory (cache bypassed)")
    add_cache_dir(bench_parser)
    bench_parser.add_argument("experiments", nargs="*",
                              help="experiment names (default: all)")
    bench_parser.add_argument("--scale", default="smoke",
                              help="scale preset to time at (default: smoke; "
                                   "timing is always sequential so the "
                                   "trajectory is contention-free)")
    bench_parser.add_argument("--output", "--json", dest="output",
                              default="BENCH_autograd.json",
                              help="summary JSON path (default: BENCH_autograd.json)")
    bench_parser.add_argument("--rounds", type=int, default=30,
                              help="rounds per fused-kernel micro-benchmark "
                                   "(default: 30)")
    bench_parser.add_argument("--skip-fused", action="store_true",
                              help="skip the fused-kernel micro-benchmarks")
    bench_parser.add_argument("--min-fused-speedup", type=float, default=None,
                              metavar="RATIO",
                              help="fail when any fused-kernel speedup falls "
                                   "below RATIO (CI perf gate)")
    bench_parser.add_argument("--skip-inference", action="store_true",
                              help="skip the batched-inference micro-benchmark")
    bench_parser.add_argument("--min-inference-speedup", type=float, default=None,
                              metavar="RATIO",
                              help="fail when batched inference is less than "
                                   "RATIO times faster than the per-sample "
                                   "loop (CI perf gate)")
    bench_parser.add_argument("--skip-serving", action="store_true",
                              help="skip the concurrent-load serving-engine "
                                   "micro-benchmark")
    bench_parser.add_argument("--min-serving-speedup", type=float, default=None,
                              metavar="RATIO",
                              help="fail when the batched engine sustains less "
                                   "than RATIO times the direct engine's "
                                   "requests/sec under concurrent load "
                                   "(CI perf gate)")
    bench_parser.add_argument("--skip-pool", action="store_true",
                              help="skip the process-pool worker-scaling "
                                   "micro-benchmark (spawns up to 4 worker "
                                   "processes)")
    bench_parser.add_argument("--min-pool-speedup", type=float, default=None,
                              metavar="RATIO",
                              help="fail when the largest process pool "
                                   "sustains less than RATIO times the "
                                   "single-process batched engine's rows/sec "
                                   "on the multi-row micro (CI perf gate; "
                                   "needs a multi-core machine)")
    bench_parser.add_argument("--skip-generate", action="store_true",
                              help="skip the incremental-generation "
                                   "micro-benchmark")
    bench_parser.add_argument("--min-generate-speedup", type=float, default=None,
                              metavar="RATIO",
                              help="fail when KV-cached incremental decoding "
                                   "is less than RATIO times faster than the "
                                   "full-prefix recompute decoder "
                                   "(CI perf gate)")
    bench_parser.add_argument("--skip-train", action="store_true",
                              help="skip the data-parallel training "
                                   "worker-scaling micro-benchmark (spawns up "
                                   "to 4 gradient-worker processes)")
    bench_parser.add_argument("--min-train-speedup", type=float, default=None,
                              metavar="RATIO",
                              help="fail when the largest data-parallel "
                                   "worker fleet sustains less than RATIO "
                                   "times the single-worker samples/sec at a "
                                   "fixed shard count (CI perf gate; needs a "
                                   "multi-core machine)")
    bench_parser.add_argument("--skip-trace", action="store_true",
                              help="skip the traced-replay-vs-dispatch "
                                   "micro-benchmark")
    bench_parser.add_argument("--min-trace-speedup", type=float, default=None,
                              metavar="RATIO",
                              help="fail when traced-plan replay is less than "
                                   "RATIO times faster than dispatched "
                                   "no-grad forwards at any benched batch "
                                   "size (CI perf gate)")
    bench_parser.set_defaults(handler=_command_bench)

    train_parser = commands.add_parser(
        "train", help="train one classifier with optional data-parallel "
                      "workers and step-granular checkpoints")
    train_parser.add_argument("--model", default="simple_cnn",
                              help="registered model name (default: simple_cnn)")
    train_parser.add_argument("--model-arg", action="append", default=[],
                              metavar="KEY=VALUE", dest="model_args",
                              help="model constructor override, JSON-decoded "
                                   "(repeatable), e.g. --model-arg base_width=8")
    train_parser.add_argument("--scale", default="smoke",
                              help="scale preset for dataset/optimizer defaults "
                                   "(default: smoke)")
    train_parser.add_argument("--epochs", type=int, default=None,
                              help="training epochs (default: the scale's)")
    train_parser.add_argument("--batch-size", type=int, default=None,
                              help="global batch size (default: the scale's)")
    train_parser.add_argument("--seed", type=int, default=None,
                              help="seed for data, shuffling and model init "
                                   "(default: the scale's)")
    train_parser.add_argument("--world-size", type=int, default=1,
                              help="gradient shards per batch; the shard "
                                   "count fixes the arithmetic, so results "
                                   "are byte-identical across any "
                                   "--train-jobs at the same --world-size "
                                   "(default: 1 = plain sequential trainer)")
    train_parser.add_argument("--train-jobs", type=int, default=None,
                              metavar="N",
                              help="gradient worker processes, capped at "
                                   "--world-size; never changes the bytes "
                                   "(default: one per CPU)")
    train_parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                              help="write epoch checkpoints (and step "
                                   "checkpoints with "
                                   "--checkpoint-every-steps) under DIR")
    train_parser.add_argument("--checkpoint-every-steps", type=int, default=0,
                              metavar="K",
                              help="also checkpoint every K optimizer steps "
                                   "(step_NNNNNN.npz + rolling "
                                   "last_step.npz); resume replays the "
                                   "epoch's remaining batches bit-identically")
    train_parser.add_argument("--resume-from", default=None, metavar="CKPT",
                              help="resume from a checkpoint .npz (e.g. "
                                   "DIR/last_step.npz after a kill -9)")
    train_parser.add_argument("--no-augment", dest="augment",
                              action="store_false",
                              help="disable train-time augmentation")
    train_parser.add_argument("--output", default=None, metavar="NPZ",
                              help="final checkpoint path (default: "
                                   "CHECKPOINT_DIR/final.npz when "
                                   "--checkpoint-dir is given)")
    train_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-epoch progress lines")
    train_parser.set_defaults(handler=_command_train)

    predict_parser = commands.add_parser(
        "predict", help="batched no-grad inference on a saved model bundle")
    predict_parser.add_argument("bundle", help="path to a bundle .npz "
                                               "(e.g. best.npz from a training run, or an "
                                               "entry of an artifact's meta.bundles)")
    source = predict_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", metavar="NPY",
                        help=".npy file holding one sample or a batch")
    source.add_argument("--random", type=int, metavar="N",
                        help="predict on N seeded random inputs (requires the "
                             "bundle to record its input_shape)")
    predict_parser.add_argument("--seed", type=int, default=0,
                                help="seed for --random inputs (default: 0)")
    predict_parser.add_argument("--top-k", type=int, default=1,
                                help="classes per prediction record (default: 1)")
    predict_parser.add_argument("--max-batch", type=int, default=64,
                                help="micro-batch size (default: 64)")
    predict_parser.add_argument("--no-normalize", dest="normalize",
                                action="store_false",
                                help="skip the bundle's input normalization "
                                     "(inputs are already preprocessed)")
    predict_parser.add_argument("--output", metavar="JSON", default=None,
                                help="also write the predictions to this file")
    predict_parser.set_defaults(handler=_command_predict)

    generate_parser = commands.add_parser(
        "generate", help="autoregressive decoding on a saved generation bundle")
    generate_parser.add_argument("bundle",
                                 help="path to a generation bundle .npz (a "
                                      "seq2seq model saved with vocabularies, "
                                      "e.g. by the table2 experiment)")
    generate_source = generate_parser.add_mutually_exclusive_group(required=True)
    generate_source.add_argument("--input", metavar="JSON",
                                 help="JSON file (or inline JSON) holding one "
                                      "source-token-id sequence or a list of "
                                      "sequences")
    generate_source.add_argument("--text", action="append", default=None,
                                 metavar="SENTENCE",
                                 help="whitespace-tokenized source sentence, "
                                      "encoded through the bundle's source "
                                      "vocabulary (repeatable)")
    generate_parser.add_argument("--max-new-tokens", type=int, default=None,
                                 help="cap on generated tokens per sequence "
                                      "(default: the bundle's position budget)")
    generate_parser.add_argument("--strategy", choices=["greedy", "sample"],
                                 default=None,
                                 help="decoding strategy (default: greedy, or "
                                      "'sample' when --temperature/--top-k "
                                      "is given)")
    generate_parser.add_argument("--temperature", type=float, default=None,
                                 help="sampling temperature (> 0; implies "
                                      "--strategy sample)")
    generate_parser.add_argument("--top-k", type=int, default=None,
                                 help="sample from the k most likely tokens "
                                      "(implies --strategy sample)")
    generate_parser.add_argument("--seed", type=int, default=None,
                                 help="pin the sampling seed for reproducible "
                                      "output (default: derived per request)")
    generate_parser.add_argument("--max-batch", type=int, default=8,
                                 help="decode slots batched per step "
                                      "(default: 8)")
    generate_parser.add_argument("--output", metavar="JSON", default=None,
                                 help="also write the generations to this file")
    generate_parser.set_defaults(handler=_command_generate)

    serve_parser = commands.add_parser(
        "serve", help="serve one or more model bundles over HTTP")
    serve_parser.add_argument("bundle", nargs="?", default=None,
                              help="path to a bundle .npz, mounted as model "
                                   "'default' (or use --model)")
    serve_parser.add_argument("--model", action="append", default=[],
                              metavar="NAME=BUNDLE", dest="models",
                              help="mount BUNDLE under /v1/models/NAME "
                                   "(repeatable; first model named becomes "
                                   "the default unless --default is given)")
    serve_parser.add_argument("--default", dest="default_model", default=None,
                              metavar="NAME",
                              help="model answering the legacy /predict and "
                                   "/healthz shims (default: first mounted)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8000,
                              help="bind port, 0 for ephemeral (default: 8000)")
    serve_parser.add_argument("--engine", choices=["batched", "direct", "pool"],
                              default="batched",
                              help="serving engine: 'batched' fuses concurrent "
                                   "requests into one forward, 'direct' runs "
                                   "each request inline, 'pool' shards fused "
                                   "batches across --workers warm processes "
                                   "(default: batched)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="pool engine: worker processes per "
                                   "pool-served model (default: 2)")
    serve_parser.add_argument("--model-engine", action="append", default=[],
                              metavar="NAME=ENGINE", dest="model_engines",
                              help="override the engine for one mounted model "
                                   "(repeatable), e.g. --model-engine hot=pool")
    serve_parser.add_argument("--model-workers", action="append", default=[],
                              metavar="NAME=N", dest="model_workers",
                              help="override the pool worker count for one "
                                   "mounted model (repeatable)")
    serve_parser.add_argument("--max-batch", type=int, default=64,
                              help="rows per fused forward (default: 64)")
    serve_parser.add_argument("--max-wait-ms", type=float, default=2.0,
                              help="batched engine: how long an open batch "
                                   "waits for more requests (default: 2.0)")
    serve_parser.add_argument("--queue-size", type=int, default=256,
                              help="batched engine: queued requests beyond "
                                   "which clients get 429 (default: 256)")
    serve_parser.add_argument("--request-timeout", type=float, default=30.0,
                              help="batched engine: per-request queue-wait "
                                   "bound in seconds before a 504 (default: "
                                   "30; direct forwards run inline and "
                                   "cannot time out)")
    serve_parser.add_argument("--no-compile", action="store_true",
                              help="disable trace-and-replay compilation and "
                                   "dispatch every forward through the "
                                   "autograd engine")
    serve_parser.add_argument("--max-inflight", type=int, default=None,
                              metavar="N",
                              help="per-model admission cap: shed requests "
                                   "with 429 once a model has N in flight, "
                                   "so one saturated model cannot take the "
                                   "process down (default: unlimited)")
    serve_parser.add_argument("--no-admin", action="store_true",
                              help="disable the /v1/admin control-plane "
                                   "routes (reload/canary/promote)")
    serve_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-request access logs")
    serve_parser.set_defaults(handler=_command_serve)

    promote_parser = commands.add_parser(
        "promote", help="swap a bundle into a running server via the admin API")
    promote_parser.add_argument("target", nargs="?", default=None,
                                help="bundle .npz path, or a sweep-artifact "
                                     ".json whose meta.bundles names the "
                                     "trained bundles (omit with --finalize/"
                                     "--clear)")
    promote_parser.add_argument("--server", default="http://127.0.0.1:8000",
                                help="base URL of the running server "
                                     "(default: http://127.0.0.1:8000)")
    promote_parser.add_argument("--model", default=None, metavar="NAME",
                                help="mounted model to operate on (default: "
                                     "the server's default model)")
    promote_parser.add_argument("--bundle-index", type=int, default=0,
                                metavar="I",
                                help="which meta.bundles entry to use when "
                                     "TARGET is an artifact (default: 0; "
                                     "negative indices count from the end)")
    promote_parser.add_argument("--canary", type=float, default=None,
                                metavar="PERCENT",
                                help="stage TARGET as a canary answering "
                                     "PERCENT%% of traffic instead of "
                                     "swapping immediately")
    promote_parser.add_argument("--shadow", action="store_true",
                                help="stage TARGET as a shadow: mirror "
                                     "traffic to it and count agreement, "
                                     "never answer from it")
    promote_parser.add_argument("--finalize", action="store_true",
                                help="promote the already-staged canary to "
                                     "primary (no TARGET)")
    promote_parser.add_argument("--clear", action="store_true",
                                help="retire the staged canary without "
                                     "touching the primary (no TARGET)")
    promote_parser.set_defaults(handler=_command_promote)

    reload_parser = commands.add_parser(
        "reload", help="hot-reload a mounted model on a running server")
    reload_parser.add_argument("--server", default="http://127.0.0.1:8000",
                               help="base URL of the running server "
                                    "(default: http://127.0.0.1:8000)")
    reload_parser.add_argument("--model", default=None, metavar="NAME",
                               help="mounted model to reload (default: the "
                                    "server's default model)")
    reload_parser.add_argument("--bundle", default=None, metavar="PATH",
                               help="swap to this bundle (default: re-load "
                                    "the currently mounted bundle path)")
    reload_parser.set_defaults(handler=_command_reload)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cache_dir(args) -> Path:
    return Path(args.cache_dir) if args.cache_dir else default_cache_dir()


def _resolve_names(requested: list[str], run_all: bool = False) -> list[str]:
    if run_all or requested == ["all"] or requested == []:
        return experiment_names()
    for name in requested:
        get_spec(name)  # raises with the available names on a typo
    return requested


def _command_list(args) -> int:
    cache_dir = _cache_dir(args)
    rows = []
    for spec in all_specs():
        cached = sorted(cache_dir.glob(f"{spec.name}-*.json"))
        rows.append({
            "name": spec.name,
            "artifact": spec.artifact,
            "scaled": "yes" if spec.uses_scale else "no",
            "cached": len(cached),
            "title": spec.title,
        })
    print(format_table(rows, columns=["name", "artifact", "scaled", "cached", "title"]))
    print(f"\n{len(rows)} experiments registered; artifact cache: {cache_dir}")
    return 0


def _print_reports(spec, result: dict) -> None:
    for key in spec.report_keys:
        section = result.get(key)
        if isinstance(section, str):
            print(section)
        elif isinstance(section, dict) and isinstance(section.get("report"), str):
            print(f"[{key}]")
            print(section["report"])


def _command_run(args) -> int:
    if not args.experiments and not args.run_all:
        print("error: name experiments to run, or pass --all for the full sweep",
              file=sys.stderr)
        return 2
    names = _resolve_names(args.experiments, run_all=args.run_all)
    scale = get_scale(args.scale)
    cache_dir = _cache_dir(args)
    reporter = SweepReporter(total=len(names))
    outcomes = run_many(names, scale=scale, cache_dir=cache_dir, force=args.force,
                        use_cache=args.resume, jobs=args.jobs,
                        progress=reporter.on_outcome, on_event=reporter.on_event)
    if not args.quiet:
        for outcome in outcomes:
            if outcome.ok:
                _print_reports(get_spec(outcome.name), outcome.result)
                for bundle in outcome.artifact.get("meta", {}).get("bundles", []):
                    # A cached artifact may list bundles that were cleaned up
                    # since the run; only advertise files that still exist.
                    if (cache_dir / bundle).exists():
                        print(f"bundle: {cache_dir / bundle}")
    reporter.print_summary()
    return 1 if reporter.failed else 0


def _command_sweep(args) -> int:
    names = _resolve_names(args.experiments)
    cache_dir = _cache_dir(args)
    scales = [get_scale(name) for name in args.scales]  # validate before starting
    failures = 0
    for scale in scales:
        print(f"--- sweep @ {scale.name} (jobs={args.jobs}) ---")
        reporter = SweepReporter(total=len(names))
        run_many(names, scale=scale, cache_dir=cache_dir, force=args.force,
                 jobs=args.jobs, progress=reporter.on_outcome,
                 on_event=reporter.on_event)
        reporter.print_summary()
        failures += len(reporter.failed)
    return 1 if failures else 0


def _command_bench(args) -> int:
    import time as _time

    from . import bench as bench_module

    if args.skip_fused and args.min_fused_speedup is not None:
        print("error: --skip-fused would make --min-fused-speedup a vacuous "
              "pass; drop one of the two", file=sys.stderr)
        return 2
    if args.skip_inference and args.min_inference_speedup is not None:
        print("error: --skip-inference would make --min-inference-speedup a "
              "vacuous pass; drop one of the two", file=sys.stderr)
        return 2
    if args.skip_serving and args.min_serving_speedup is not None:
        print("error: --skip-serving would make --min-serving-speedup a "
              "vacuous pass; drop one of the two", file=sys.stderr)
        return 2
    if args.skip_pool and args.min_pool_speedup is not None:
        print("error: --skip-pool would make --min-pool-speedup a vacuous "
              "pass; drop one of the two", file=sys.stderr)
        return 2
    if args.skip_generate and args.min_generate_speedup is not None:
        print("error: --skip-generate would make --min-generate-speedup a "
              "vacuous pass; drop one of the two", file=sys.stderr)
        return 2
    if args.skip_trace and args.min_trace_speedup is not None:
        print("error: --skip-trace would make --min-trace-speedup a vacuous "
              "pass; drop one of the two", file=sys.stderr)
        return 2
    if args.skip_train and args.min_train_speedup is not None:
        print("error: --skip-train would make --min-train-speedup a vacuous "
              "pass; drop one of the two", file=sys.stderr)
        return 2
    names = _resolve_names(args.experiments)
    scale = get_scale(args.scale)
    cache_dir = _cache_dir(args)
    started = _time.time()

    try:
        figure_repros = bench_module.benchmark_experiments(
            names, scale=scale, cache_dir=cache_dir,
            progress=lambda outcome: print(
                f"{outcome.name}: {outcome.elapsed_seconds:.2f}s"))
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.skip_fused:
        fused_ops, fused_speedups = {}, {}
    else:
        fused_ops, fused_speedups = bench_module.fused_kernel_benchmarks(
            rounds=args.rounds)
    inference = {} if args.skip_inference else \
        bench_module.inference_benchmarks(rounds=max(3, args.rounds // 6))
    serving = {} if args.skip_serving else \
        bench_module.serving_benchmarks(rounds=max(3, args.rounds // 10))
    pool = {} if args.skip_pool else \
        bench_module.pool_benchmarks(rounds=max(2, args.rounds // 15))
    trace = {} if args.skip_trace else \
        bench_module.trace_benchmarks(rounds=max(10, args.rounds * 3))
    generation = {} if args.skip_generate else \
        bench_module.generation_benchmarks(rounds=max(3, args.rounds // 10))
    training = {} if args.skip_train else \
        bench_module.training_benchmarks(rounds=max(2, args.rounds // 15))

    summary = bench_module.build_summary(figure_repros, fused_ops, fused_speedups,
                                         scale=scale.name, started=started,
                                         inference=inference, serving=serving,
                                         trace=trace, pool=pool,
                                         generation=generation, training=training)
    rows = [{"experiment": name, "scale": scale.name,
             "seconds": stats["mean_seconds"]}
            for name, stats in figure_repros.items()]
    print()
    print(format_table(rows, columns=["experiment", "scale", "seconds"]))
    for name, stats in sorted(fused_ops.items()):
        print(f"  {name:<45s} {stats['mean_seconds'] * 1e6:>12.1f} us")
    for name, ratio in sorted(fused_speedups.items()):
        print(f"  {name:<45s} {ratio:>11.2f}x")
    if inference:
        batch = inference["batch_size"]
        print(f"  {'inference batched (batch ' + str(batch) + ')':<45s} "
              f"{inference['batched']['mean_seconds'] * 1e6:>12.1f} us")
        print(f"  {'inference per-sample loop':<45s} "
              f"{inference['per_sample']['mean_seconds'] * 1e6:>12.1f} us")
        print(f"  {'inference batch speedup':<45s} {inference['speedup']:>11.2f}x")
    if serving:
        clients = serving["clients"]
        print(f"  {'serving direct (' + str(clients) + ' clients)':<45s} "
              f"{serving['direct_rps']:>10.1f} r/s")
        print(f"  {'serving batched (' + str(clients) + ' clients)':<45s} "
              f"{serving['batched_rps']:>10.1f} r/s")
        print(f"  {'serving batched-engine speedup':<45s} "
              f"{serving['speedup']:>11.2f}x")
        latency = serving.get("batched_latency")
        if latency:
            label = "serving batched p50/p95/p99"
            print(f"  {label:<45s} {latency['p50_ms']:>7.2f} / "
                  f"{latency['p95_ms']:.2f} / {latency['p99_ms']:.2f} ms")
    if pool:
        base = pool["batched"]["rows_per_second"]
        print(f"  {'pool baseline: batched engine':<45s} {base:>10.1f} rows/s")
        for workers in pool["worker_counts"]:
            rps = pool["workers"][str(workers)]["rows_per_second"]
            label = f"pool({workers}) rows/sec"
            print(f"  {label:<45s} {rps:>10.1f} rows/s")
        print(f"  {'pool(' + str(max(pool['worker_counts'])) + ') vs batched':<45s} "
              f"{pool['speedup']:>11.2f}x")
    if trace:
        for batch, entry in sorted(trace["batches"].items(),
                                   key=lambda kv: int(kv[0])):
            label = f"traced replay speedup (batch {batch})"
            print(f"  {label:<45s} {entry['speedup']:>11.2f}x")
    if generation:
        label = (f"generation incremental (batch {generation['batch']}, "
                 f"{generation['steps']} steps)")
        print(f"  {label:<45s} "
              f"{generation['incremental_tokens_per_second']:>8.1f} tok/s")
        print(f"  {'generation full-prefix recompute':<45s} "
              f"{generation['reference_tokens_per_second']:>8.1f} tok/s")
        print(f"  {'generation incremental speedup':<45s} "
              f"{generation['speedup']:>11.2f}x")
    if training:
        for workers in training["worker_counts"]:
            rate = training["workers"][str(workers)]["samples_per_second"]
            label = (f"train dp({workers}) samples/sec "
                     f"(world {training['world_size']})")
            print(f"  {label:<45s} {rate:>8.1f} smp/s")
        label = (f"train dp({max(training['worker_counts'])}) vs "
                 f"dp({min(training['worker_counts'])})")
        print(f"  {label:<45s} {training['speedup']:>11.2f}x")

    if args.output:
        bench_module.write_summary(summary, args.output)
        print(f"wrote {args.output}")

    if args.min_fused_speedup is not None:
        violations = bench_module.check_fused_speedups(summary, args.min_fused_speedup)
        if violations:
            for violation in violations:
                print(f"PERF REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(f"fused speedups all >= {args.min_fused_speedup:.2f}x")
    if args.min_inference_speedup is not None:
        violations = bench_module.check_inference_speedup(
            summary, args.min_inference_speedup)
        if violations:
            for violation in violations:
                print(f"PERF REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(f"batched inference >= {args.min_inference_speedup:.2f}x "
              f"the per-sample loop")
    if args.min_serving_speedup is not None:
        violations = bench_module.check_serving_speedup(
            summary, args.min_serving_speedup)
        if violations:
            for violation in violations:
                print(f"PERF REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(f"batched serving engine >= {args.min_serving_speedup:.2f}x "
              f"the direct engine under concurrent load")
    if args.min_pool_speedup is not None:
        violations = bench_module.check_pool_speedup(
            summary, args.min_pool_speedup)
        if violations:
            for violation in violations:
                print(f"PERF REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(f"process-pool engine >= {args.min_pool_speedup:.2f}x "
              f"the single-process batched engine on multi-row requests")
    if args.min_trace_speedup is not None:
        violations = bench_module.check_trace_speedup(
            summary, args.min_trace_speedup)
        if violations:
            for violation in violations:
                print(f"PERF REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(f"traced-plan replay >= {args.min_trace_speedup:.2f}x "
              f"dispatched no-grad forwards at every benched batch size")
    if args.min_generate_speedup is not None:
        violations = bench_module.check_generate_speedup(
            summary, args.min_generate_speedup)
        if violations:
            for violation in violations:
                print(f"PERF REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(f"KV-cached incremental decoding >= "
              f"{args.min_generate_speedup:.2f}x the full-prefix recompute")
    if args.min_train_speedup is not None:
        violations = bench_module.check_train_speedup(
            summary, args.min_train_speedup)
        if violations:
            for violation in violations:
                print(f"PERF REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(f"data-parallel worker fleet >= {args.min_train_speedup:.2f}x "
              f"the single-worker trainer at a fixed shard count")
    return 0


def _parse_model_args(pairs: list[str]) -> dict:
    kwargs = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ValueError(f"--model-arg needs KEY=VALUE, got {pair!r}")
        try:
            kwargs[key] = json.loads(raw)
        except json.JSONDecodeError:
            kwargs[key] = raw  # bare strings may be passed unquoted
    return kwargs


def _command_train(args) -> int:
    import hashlib

    from . import models as _models  # noqa: F401 — populates the registry
    from .data import DataLoader, standard_cifar_augmentation
    from .experiments.common import (build_image_dataset, classifier_bundle_info,
                                     make_trainer)
    from .models.registry import build_model

    scale = get_scale(args.scale)
    seed = args.seed if args.seed is not None else scale.seed
    epochs = args.epochs if args.epochs is not None else scale.epochs
    batch_size = args.batch_size if args.batch_size is not None else scale.batch_size
    dataset = build_image_dataset(scale, seed=seed)

    # Scale-derived constructor defaults so `repro train` works bare; every
    # entry is overridable (and extendable) through repeated --model-arg.
    model_kwargs = {"num_classes": dataset.num_classes}
    if args.model == "simple_cnn":
        model_kwargs.update(in_channels=dataset.channels,
                            image_size=dataset.image_size, seed=seed)
    model_kwargs.update(_parse_model_args(args.model_args))
    model = build_model(args.model, **model_kwargs)

    augmentation = standard_cifar_augmentation(scale.augmentation_padding) \
        if args.augment else None
    loader = DataLoader(dataset.train_images, dataset.train_labels,
                        batch_size=batch_size, shuffle=True,
                        augmentation=augmentation, seed=seed)
    trainer = make_trainer(model, scale, epochs=epochs,
                           world_size=args.world_size,
                           train_jobs=args.train_jobs, train_seed=seed)
    trainer.bundle_info = classifier_bundle_info(dataset)

    output = Path(args.output) if args.output else \
        (Path(args.checkpoint_dir) / "final.npz" if args.checkpoint_dir else None)
    try:
        trainer.fit(loader, epochs,
                    eval_inputs=dataset.test_images,
                    eval_targets=dataset.test_labels,
                    verbose=not args.quiet,
                    checkpoint_dir=args.checkpoint_dir,
                    checkpoint_every_steps=args.checkpoint_every_steps,
                    resume_from=args.resume_from)
        if output is not None:
            output.parent.mkdir(parents=True, exist_ok=True)
            trainer.save_checkpoint(output, loader=loader)
        summary = {
            "model": args.model,
            "scale": scale.name,
            "seed": seed,
            "epochs": len(trainer.history),
            "global_step": trainer.global_step,
            "world_size": args.world_size,
            "diverged": trainer.diverged,
            "final": trainer.history.records[-1] if len(trainer.history) else None,
        }
        describe = getattr(trainer, "describe", None)
        if describe is not None:
            summary["distributed"] = describe()
        if output is not None:
            summary["checkpoint"] = str(output)
            summary["checkpoint_sha256"] = hashlib.sha256(
                output.read_bytes()).hexdigest()
    finally:
        close = getattr(trainer, "close", None)
        if close is not None:
            close()
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _command_predict(args) -> int:
    import numpy as np

    from .serve import load

    predictor = load(args.bundle, max_batch=args.max_batch, warm=False)
    if args.input is not None:
        inputs = np.load(args.input)
    else:
        if predictor.input_shape is None:
            print("error: --random needs the bundle to record input_shape; "
                  "pass --input instead", file=sys.stderr)
            return 2
        if args.random < 1:
            print("error: --random needs at least one sample", file=sys.stderr)
            return 2
        inputs = np.random.default_rng(args.seed).standard_normal(
            (args.random, *predictor.input_shape)).astype(np.float32)

    predictions = predictor.predict_topk(inputs, k=args.top_k,
                                         normalize=args.normalize)
    document = {
        "bundle": str(args.bundle),
        "model": predictor.describe()["model"],
        "count": len(predictions),
        "predictions": predictions,
    }
    rendered = json.dumps(document, indent=2)
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
    return 0


def _command_generate(args) -> int:
    from .serve import load
    from .serve.generate import GenerationPredictor

    predictor = load(args.bundle, max_batch=args.max_batch, warm=False)
    if not isinstance(predictor, GenerationPredictor):
        print("error: this bundle is a classifier, not a generation model; "
              "use 'repro predict' instead", file=sys.stderr)
        return 2
    with predictor:
        if args.text is not None:
            inputs: object = list(args.text)
        else:
            source = Path(args.input)
            raw = source.read_text() if source.exists() else args.input
            try:
                inputs = json.loads(raw)
            except json.JSONDecodeError as error:
                print(f"error: --input is neither a readable JSON file nor "
                      f"inline JSON ({error})", file=sys.stderr)
                return 2
        outputs = predictor.generate(
            inputs, max_new_tokens=args.max_new_tokens, strategy=args.strategy,
            temperature=args.temperature, top_k=args.top_k, seed=args.seed)
        document = {
            "bundle": str(args.bundle),
            "model": predictor.describe()["model"],
            "count": len(outputs),
            "outputs": outputs,
        }
    rendered = json.dumps(document, indent=2)
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
    return 0


def _parse_model_specs(specs: list[str], flag: str = "--model",
                       value_name: str = "BUNDLE") -> dict[str, str]:
    """``NAME=VALUE`` pairs → ordered mapping, with helpful errors."""
    models: dict[str, str] = {}
    for spec in specs:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            raise ValueError(f"{flag} expects NAME={value_name}, got {spec!r}")
        if name in models:
            raise ValueError(f"{flag} name {name!r} given twice")
        models[name] = path
    return models


def _http_json(method: str, url: str, payload: dict | None = None) -> dict:
    """One JSON request against the serving/admin API, with readable errors."""
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=120.0) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        try:
            detail = json.loads(error.read().decode("utf-8")).get("error", "")
        except Exception:  # noqa: BLE001 — the status alone is still useful
            detail = ""
        suffix = f": {detail}" if detail else ""
        raise ValueError(f"{method} {url} failed with "
                         f"HTTP {error.code}{suffix}") from error
    except urllib.error.URLError as error:
        raise ValueError(f"cannot reach the server at {url} "
                         f"({error.reason}); is it running?") from error


def _resolve_bundle_target(target: str, index: int = 0) -> str:
    """A bundle path, or a sweep artifact's ``meta.bundles[index]``, absolute.

    Artifacts record bundle paths relative to the cache directory they live
    in, so ``artifact.parent / entry`` is the on-disk bundle; the result is
    absolute because the running server may have a different working
    directory than this CLI invocation.
    """
    path = Path(target)
    if path.suffix == ".json":
        artifact = json.loads(path.read_text())
        bundles = artifact.get("meta", {}).get("bundles") or []
        if not bundles:
            raise ValueError(f"artifact {target} records no bundles in "
                             f"meta.bundles — was its experiment trained with "
                             f"a servable model?")
        if not -len(bundles) <= index < len(bundles):
            raise ValueError(f"--bundle-index {index} is out of range; "
                             f"artifact records {len(bundles)} bundle(s): "
                             f"{bundles}")
        return str((path.parent / bundles[index]).resolve())
    return str(path.resolve())


def _target_model(server: str, model: str | None) -> str:
    """``--model`` when given, else the server's default model name."""
    if model is not None:
        return model
    payload = _http_json("GET", f"{server}/v1/models")
    name = payload.get("default")
    if not name:
        raise ValueError(f"server at {server} reports no mounted models; "
                         f"pass --model explicitly")
    return name


def _command_promote(args) -> int:
    server = args.server.rstrip("/")
    if args.finalize or args.clear:
        if args.finalize and args.clear:
            raise ValueError("--finalize and --clear are mutually exclusive")
        if args.target is not None:
            raise ValueError("--finalize/--clear operate on the already-"
                             "staged canary; drop the TARGET argument")
        model = _target_model(server, args.model)
        if args.finalize:
            result = _http_json(
                "POST", f"{server}/v1/admin/models/{model}/promote")
        else:
            result = _http_json(
                "DELETE", f"{server}/v1/admin/models/{model}/canary")
    else:
        if args.target is None:
            raise ValueError("name a bundle or sweep artifact to promote "
                             "(or pass --finalize / --clear)")
        bundle = _resolve_bundle_target(args.target, args.bundle_index)
        model = _target_model(server, args.model)
        if args.canary is not None or args.shadow:
            payload: dict = {"bundle": bundle, "shadow": args.shadow}
            if args.canary is not None:
                payload["percent"] = args.canary
            result = _http_json(
                "POST", f"{server}/v1/admin/models/{model}/canary", payload)
        else:
            result = _http_json(
                "POST", f"{server}/v1/admin/models/{model}/reload",
                {"bundle": bundle})
    print(json.dumps(result, indent=2))
    return 0


def _command_reload(args) -> int:
    server = args.server.rstrip("/")
    model = _target_model(server, args.model)
    payload = {"bundle": args.bundle} if args.bundle else {}
    result = _http_json(
        "POST", f"{server}/v1/admin/models/{model}/reload", payload)
    print(json.dumps(result, indent=2))
    return 0


def _command_serve(args) -> int:
    from .serve.http import serve

    models: dict[str, object] = _parse_model_specs(args.models)
    if args.bundle is None and not models:
        print("error: name a bundle to serve, or mount one with "
              "--model NAME=BUNDLE", file=sys.stderr)
        return 2
    # Per-model engine/worker overrides turn the plain path specs into dict
    # specs ({"path": ..., "engine": ..., "workers": ...}); an override
    # naming 'default' applies to the positional bundle.
    engine_overrides = _parse_model_specs(args.model_engines, "--model-engine",
                                          "ENGINE")
    worker_overrides = {name: int(count) for name, count in
                        _parse_model_specs(args.model_workers, "--model-workers",
                                           "N").items()}
    bundle = args.bundle
    default_model = args.default_model
    for name in {*engine_overrides, *worker_overrides}:
        if name == "default" and bundle is not None and name not in models:
            models[name], bundle = {"path": bundle}, None
            if default_model is None:  # keep the positional bundle default
                default_model = "default"
        if name not in models:
            raise ValueError(f"engine/worker override names unmounted model "
                             f"{name!r}; mount it with --model first")
        if not isinstance(models[name], dict):
            models[name] = {"path": models[name]}
        if name in engine_overrides:
            models[name]["engine"] = engine_overrides[name]
        if name in worker_overrides:
            models[name]["workers"] = worker_overrides[name]
    serve(bundle, host=args.host, port=args.port,
          max_batch=args.max_batch, quiet=args.quiet, models=models,
          engine=args.engine, max_wait_ms=args.max_wait_ms,
          queue_size=args.queue_size, request_timeout=args.request_timeout,
          default_model=default_model, compile=not args.no_compile,
          workers=args.workers, max_inflight=args.max_inflight,
          admin=not args.no_admin)
    return 0
