"""repro — reproduction of "Computational and Storage Efficient Quadratic Neurons
for Deep Neural Networks" (Chen et al., DATE 2024).

The package is organised bottom-up:

* :mod:`repro.tensor`      — NumPy autograd engine (the substrate).
* :mod:`repro.nn`          — layers, containers, losses, initializers.
* :mod:`repro.optim`       — SGD/Adam and learning-rate schedules.
* :mod:`repro.quadratic`   — the paper's efficient quadratic neuron, every
  prior-work baseline neuron, decomposition utilities and the Table I cost model.
* :mod:`repro.models`      — ResNets, CNNs, MLPs and Transformers with
  switchable neuron types.
* :mod:`repro.data`        — synthetic CIFAR/ImageNet/WMT14 stand-ins,
  augmentation and loaders.
* :mod:`repro.metrics`     — accuracy, BLEU, parameter/MAC profiler.
* :mod:`repro.io`          — versioned checkpoints and JSON serialization.
* :mod:`repro.training`    — classification and seq2seq training loops,
  checkpoint/resume, best-model tracking and early stopping.
* :mod:`repro.analysis`    — parameter-distribution, response and stability analyses.
* :mod:`repro.experiments` — declarative registry of paper artifacts plus a
  caching runner (one spec per table/figure).
* :mod:`repro.serve`       — the stable inference API: self-describing model
  bundles in, batched no-grad predictions out (:func:`repro.load` /
  :class:`repro.Predictor`), scheduled through pluggable serving engines
  (direct lock-and-forward, or cross-request dynamic batching) and served
  over a versioned multi-model HTTP API.
* :mod:`repro.cli`         — ``python -m repro {list,run,sweep,bench,predict,serve}``.
"""

from . import analysis, data, experiments, io, metrics, models, nn, optim, quadratic, tensor
from . import serve, training
from .io import load_bundle, save_bundle
from .quadratic import (
    EfficientQuadraticConv2d,
    EfficientQuadraticLinear,
    QuadraticDecomposition,
    neuron_complexity,
    table_i_rows,
)
from .serve import Predictor, load
from .tensor import Tensor

__version__ = "1.4.0"

__all__ = [
    "analysis",
    "data",
    "experiments",
    "io",
    "metrics",
    "models",
    "nn",
    "optim",
    "quadratic",
    "serve",
    "tensor",
    "training",
    "Tensor",
    "Predictor",
    "load",
    "load_bundle",
    "save_bundle",
    "EfficientQuadraticConv2d",
    "EfficientQuadraticLinear",
    "QuadraticDecomposition",
    "neuron_complexity",
    "table_i_rows",
    "__version__",
]
