"""Unified benchmark harness behind ``python -m repro bench``.

Produces the repository's perf trajectory (``BENCH_autograd.json``) from the
same machinery the sweeps use:

* **Figure/table timings** come from the cached experiment runner
  (:func:`repro.experiments.runner.run_many` with ``force=True``), so the
  numbers measure exactly what ``python -m repro run`` executes — no separate
  pytest harness with its own import and fixture overhead.
* **Fused-kernel micro-benchmarks** time a forward+backward training step
  through the fused ``quadratic_response`` / ``quadratic_conv2d`` registry
  ops against the node-by-node unfused reference path, preserving the
  workloads (and result keys) of ``benchmarks/test_bench_fused_ops.py`` so
  the speedup trajectory stays comparable across PRs.

:func:`check_fused_speedups` is the CI gate: it fails the run when any fused
kernel's speedup over its unfused reference regresses below a threshold.

``benchmarks/run_bench.py`` is a thin compatibility wrapper around this
module; the pytest-benchmark suite under ``benchmarks/`` remains for
interactive profiling.
"""

from __future__ import annotations

import platform
import statistics
import time

import numpy as np

from .experiments.runner import default_cache_dir, run_many
from .io.serialization import atomic_write_json

__all__ = ["time_callable", "fused_kernel_benchmarks", "inference_benchmarks",
           "serving_benchmarks", "pool_benchmarks", "trace_benchmarks",
           "generation_benchmarks", "training_benchmarks",
           "benchmark_experiments", "build_summary",
           "check_fused_speedups", "check_inference_speedup",
           "check_serving_speedup", "check_pool_speedup",
           "check_trace_speedup", "check_generate_speedup",
           "check_train_speedup", "write_summary"]

#: Fused micro-benchmark result keys, kept identical to the historical
#: pytest-benchmark test names so BENCH_autograd.json stays a trajectory.
FUSED_BENCH_KEYS = {
    ("linear", True): "test_bench_fused_quadratic_linear",
    ("linear", False): "test_bench_unfused_quadratic_linear",
    ("conv", True): "test_bench_fused_quadratic_conv",
    ("conv", False): "test_bench_unfused_quadratic_conv",
}


def time_callable(function, rounds: int = 10, warmup: int = 1) -> dict:
    """Wall-clock statistics for ``rounds`` calls of ``function()``."""
    for _ in range(warmup):
        function()
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        function()
        samples.append(time.perf_counter() - started)
    return {
        "mean_seconds": statistics.fmean(samples),
        "min_seconds": min(samples),
        "stddev_seconds": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "rounds": rounds,
    }


def _fused_workloads():
    """The fused-vs-unfused training-step pairs (same shapes as the pytest suite)."""
    from .quadratic import EfficientQuadraticConv2d, EfficientQuadraticLinear
    from .tensor import Tensor

    dense_layer = EfficientQuadraticLinear(256, 32, rank=9, lambda_init=0.1,
                                           rng=np.random.default_rng(0))
    dense_x = Tensor(np.random.default_rng(1).standard_normal((128, 256))
                     .astype(np.float32), requires_grad=True)
    conv_layer = EfficientQuadraticConv2d(16, 4, 3, padding=1, rank=9, lambda_init=0.1,
                                          rng=np.random.default_rng(0))
    conv_x = Tensor(np.random.default_rng(1).standard_normal((8, 16, 16, 16))
                    .astype(np.float32), requires_grad=True)

    def train_step(layer, x, forward):
        for parameter in layer.parameters():
            parameter.zero_grad()
        x.zero_grad()
        forward(x).sum().backward()

    return {
        "linear": (dense_layer, dense_x),
        "conv": (conv_layer, conv_x),
    }, train_step


def fused_kernel_benchmarks(rounds: int = 30, warmup: int = 3) -> tuple[dict, dict]:
    """Time fused vs unfused kernels; return ``(fused_ops, fused_speedups)``.

    ``fused_speedups`` carries the legacy mean-based ratios (the trajectory
    numbers) plus ``*_speedup_best`` best-of-rounds ratios, which are far less
    sensitive to scheduler noise and are what the CI gate prefers.
    """
    workloads, train_step = _fused_workloads()
    fused_ops: dict[str, dict] = {}
    speedups: dict[str, float] = {}
    for kind, (layer, x) in workloads.items():
        for fused in (True, False):
            forward = layer if fused else layer._forward_unfused
            fused_ops[FUSED_BENCH_KEYS[kind, fused]] = time_callable(
                lambda layer=layer, x=x, forward=forward: train_step(layer, x, forward),
                rounds=rounds, warmup=warmup)
        fused_stats = fused_ops[FUSED_BENCH_KEYS[kind, True]]
        unfused_stats = fused_ops[FUSED_BENCH_KEYS[kind, False]]
        if fused_stats["mean_seconds"] > 0 and fused_stats["min_seconds"] > 0:
            speedups[f"quadratic_{kind}_speedup"] = (
                unfused_stats["mean_seconds"] / fused_stats["mean_seconds"])
            speedups[f"quadratic_{kind}_speedup_best"] = (
                unfused_stats["min_seconds"] / fused_stats["min_seconds"])
    return fused_ops, speedups


def inference_benchmarks(rounds: int = 5, warmup: int = 2,
                         batch_size: int = 64) -> dict:
    """Time batched :class:`~repro.serve.InferenceSession.predict` against a
    naive per-sample loop over the same session.

    This is the serving layer's headline number: one warm session answers the
    same ``batch_size`` samples either as a single micro-batched forward or
    as ``batch_size`` one-sample forwards.  The batched path amortizes the
    im2col expansion and the BLAS dispatch across the whole batch, which is
    exactly the inference-efficiency claim ``repro serve`` exists to exploit.
    """
    from .models import SimpleCNN
    from .serve import InferenceSession

    model = SimpleCNN(num_classes=10, neuron_type="proposed", rank=3,
                      base_width=8, image_size=16, seed=0)
    # compile=False: this micro isolates micro-batching amortization, so both
    # paths run classic dispatch (trace-and-replay has its own section).
    session = InferenceSession(model, max_batch=batch_size, compile=False)
    inputs = np.random.default_rng(1).standard_normal(
        (batch_size, 3, 16, 16)).astype(np.float32)
    session.warm(input_shape=inputs.shape[1:], batch_sizes=(batch_size, 1))

    batched = time_callable(lambda: session.predict(inputs),
                            rounds=rounds, warmup=warmup)
    per_sample = time_callable(
        lambda: [session.predict(inputs[index:index + 1])
                 for index in range(batch_size)],
        rounds=rounds, warmup=warmup)
    result = {
        "model": "simple_cnn/proposed",
        "batch_size": batch_size,
        "batched": batched,
        "per_sample": per_sample,
    }
    if batched["mean_seconds"] > 0 and batched["min_seconds"] > 0:
        result["speedup"] = per_sample["mean_seconds"] / batched["mean_seconds"]
        result["speedup_best"] = per_sample["min_seconds"] / batched["min_seconds"]
    return result


def serving_benchmarks(rounds: int = 3, warmup: int = 1, clients: int = 8,
                       requests_per_client: int = 25) -> dict:
    """Throughput of the batched vs the direct serving engine under
    concurrent load: ``clients`` threads each fire ``requests_per_client``
    single-sample requests (submitted as futures, then awaited).

    This is the cross-request story the engine layer exists for: the direct
    engine answers 8 threads as 8×R serialized one-row forwards, each paying
    the full im2col/BLAS-dispatch overhead, while the batched engine's
    scheduler coalesces the queue into fused forwards.  Requests/sec for both
    engines and their ratio land in ``BENCH_autograd.json`` under
    ``serving`` (CI floor: 2x at 8 clients).
    """
    import threading

    from .models import SimpleCNN
    from .serve import BatchedEngine, DirectEngine, InferenceSession
    from .serve.metrics import LatencyHistogram

    model = SimpleCNN(num_classes=10, neuron_type="proposed", rank=3,
                      base_width=8, image_size=16, seed=0)
    sample = np.random.default_rng(1).standard_normal((1, 3, 16, 16)) \
        .astype(np.float32)
    total_requests = clients * requests_per_client

    def storm(engine, histogram):
        barrier = threading.Barrier(clients)
        errors: list[Exception] = []

        def client():
            try:
                barrier.wait()
                futures = []
                for _ in range(requests_per_client):
                    submitted = time.perf_counter()
                    future = engine.submit(sample)
                    # Completion callback, not result(): per-request latency
                    # is submit → done, independent of await order.
                    future.add_done_callback(
                        lambda f, t0=submitted: histogram.record(
                            time.perf_counter() - t0))
                    futures.append(future)
                for future in futures:
                    future.result(timeout=120)
            except Exception as error:  # noqa: BLE001 — re-raised below
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    # compile=False on both sides: this micro isolates the scheduling layer
    # (queue/coalesce/demux vs serialized one-row forwards); plan compilation
    # is measured separately by :func:`trace_benchmarks`.
    session_direct = InferenceSession(model, max_batch=64, compile=False)
    session_direct.warm(input_shape=sample.shape[1:], batch_sizes=(1,))
    session_batched = InferenceSession(model, max_batch=64, compile=False)
    session_batched.warm(input_shape=sample.shape[1:],
                         batch_sizes=(64, clients, 1))

    direct_engine = DirectEngine(session_direct)
    batched_engine = BatchedEngine(session_batched, max_batch=64,
                                   max_wait_ms=2.0,
                                   queue_size=total_requests + clients)
    direct_latency = LatencyHistogram()
    batched_latency = LatencyHistogram()
    try:
        direct = time_callable(lambda: storm(direct_engine, direct_latency),
                               rounds=rounds, warmup=warmup)
        batched = time_callable(lambda: storm(batched_engine, batched_latency),
                                rounds=rounds, warmup=warmup)
        batched_stats = batched_engine.stats()
    finally:
        batched_engine.close()
        direct_engine.close()

    def _percentiles(histogram):
        summary = histogram.summary()
        return {key: summary[key]
                for key in ("count", "mean_ms", "p50_ms", "p95_ms", "p99_ms")}

    result = {
        "model": "simple_cnn/proposed",
        "clients": clients,
        "requests_per_client": requests_per_client,
        "rows_per_request": 1,
        "direct": direct,
        "batched": batched,
        "direct_rps": total_requests / direct["mean_seconds"],
        "batched_rps": total_requests / batched["mean_seconds"],
        "direct_latency": _percentiles(direct_latency),
        "batched_latency": _percentiles(batched_latency),
        "mean_batch_rows": batched_stats["mean_batch_rows"],
    }
    if batched["mean_seconds"] > 0 and batched["min_seconds"] > 0:
        result["speedup"] = direct["mean_seconds"] / batched["mean_seconds"]
        result["speedup_best"] = direct["min_seconds"] / batched["min_seconds"]
    return result


def pool_benchmarks(rounds: int = 2, warmup: int = 1, clients: int = 4,
                    requests_per_client: int = 6, rows_per_request: int = 16,
                    worker_counts: tuple[int, ...] = (1, 2, 4)) -> dict:
    """Worker-count scaling curve of the process-pool serving engine.

    The workload is deliberately *compute-bound* — multi-row requests, so
    each fused forward carries real convolution work — because that is the
    regime the pool exists for: :func:`serving_benchmarks` already shows the
    batched engine winning the scheduling game at single-row requests, and
    this micro shows what no single-process engine can do — put more than
    one core behind the forwards.  ``clients`` threads each fire
    ``requests_per_client`` requests of ``rows_per_request`` rows at a
    single-process :class:`~repro.serve.BatchedEngine` baseline and at a
    :class:`~repro.serve.ProcessPoolEngine` for each worker count; rows/sec
    per configuration lands under ``serving.pool`` in
    ``BENCH_autograd.json`` as the scaling curve.

    ``speedup`` compares the *largest* pool against the batched baseline —
    that ratio is CI-gated (``--min-pool-speedup``) on multi-core runners.
    On a single-core box the pool cannot win (same arithmetic plus IPC), and
    the recorded curve will honestly say so.
    """
    import tempfile
    import threading
    from pathlib import Path

    from .io.bundle import save_bundle
    from .models import SimpleCNN
    from .serve import BatchedEngine, InferenceSession, ProcessPoolEngine

    model = SimpleCNN(num_classes=10, neuron_type="proposed", rank=3,
                      base_width=8, image_size=16, seed=0)
    request = np.random.default_rng(1).standard_normal(
        (rows_per_request, 3, 16, 16)).astype(np.float32)
    total_requests = clients * requests_per_client
    total_rows = total_requests * rows_per_request

    def storm(engine):
        barrier = threading.Barrier(clients)
        errors: list[Exception] = []

        def client():
            try:
                barrier.wait()
                futures = [engine.submit(request)
                           for _ in range(requests_per_client)]
                for future in futures:
                    future.result(timeout=300)
            except Exception as error:  # noqa: BLE001 — re-raised below
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    def measure(engine) -> dict:
        try:
            timing = time_callable(lambda: storm(engine),
                                   rounds=rounds, warmup=warmup)
        finally:
            engine.close()
        timing["rows_per_second"] = total_rows / timing["mean_seconds"]
        timing["rows_per_second_best"] = total_rows / timing["min_seconds"]
        return timing

    # compile=False everywhere, matching serving_benchmarks: this micro
    # isolates scheduling + parallel execution, not plan compilation.
    engine_kwargs = {"max_batch": rows_per_request * 2, "max_wait_ms": 2.0,
                     "queue_size": total_requests + clients}
    with tempfile.TemporaryDirectory(prefix="repro-bench-pool-") as tmp:
        bundle_path = save_bundle(Path(tmp) / "bench_pool.npz", model,
                                  info={"input_shape": [3, 16, 16]})

        def session():
            return InferenceSession(bundle_path, max_batch=rows_per_request * 2,
                                    compile=False)

        batched = measure(BatchedEngine(session(), **engine_kwargs))
        pools: dict[str, dict] = {}
        for workers in worker_counts:
            engine = ProcessPoolEngine(session(), workers=workers,
                                       **engine_kwargs)
            engine.warm((3, 16, 16))
            pools[str(workers)] = measure(engine)

    result = {
        "model": "simple_cnn/proposed",
        "clients": clients,
        "requests_per_client": requests_per_client,
        "rows_per_request": rows_per_request,
        "worker_counts": list(worker_counts),
        "batched": batched,
        "workers": pools,
    }
    top = pools[str(max(worker_counts))]
    if batched["mean_seconds"] > 0 and batched["min_seconds"] > 0:
        result["speedup"] = batched["mean_seconds"] / top["mean_seconds"]
        result["speedup_best"] = batched["min_seconds"] / top["min_seconds"]
    return result


def trace_benchmarks(rounds: int = 100, warmup: int = 10,
                     batch_sizes: tuple[int, ...] = (1, 8)) -> dict:
    """Traced-replay vs dispatched no-grad forward through a warm session.

    Both paths run the same weights on the same arrays; the only difference
    is dispatched op-by-op execution vs replaying the compiled
    :class:`~repro.tensor.plan.ExecutionPlan`, so the ratio isolates what the
    compiler saves: per-op registry lookup, Tensor/OpContext construction,
    and per-op output allocation (fused chains + arena buffers).

    The gated micro uses ``mlp_classifier`` — small dense matmuls, so the
    forward is dispatch-overhead-dominated and the ratio directly measures
    interpreter cost (the thing the compiler removes).  ``simple_cnn`` is
    recorded alongside for reference but not gated: its quadratic convolutions
    dominate the forward, bounding the achievable ratio (Amdahl).
    """
    from .models import MLPClassifier, SimpleCNN
    from .tensor import Tensor, no_grad
    from .tensor.plan import compile_forward

    def measure(model, sample_shape):
        model = model.eval()
        batches = {}
        plan_info = {}
        for batch in batch_sizes:
            inputs = np.random.default_rng(2).standard_normal(
                (batch, *sample_shape)).astype(np.float32)
            plan, _ = compile_forward(model, inputs)
            entry = {}
            if plan is None:  # untraceable model: record the miss, don't crash
                entry["fallback"] = True
            else:
                with no_grad():
                    dispatched = time_callable(
                        lambda: model(Tensor(inputs)).data,
                        rounds=rounds, warmup=warmup)
                    traced = time_callable(lambda: plan.replay(inputs),
                                           rounds=rounds, warmup=warmup)
                entry = {"dispatched": dispatched, "traced": traced}
                if traced["mean_seconds"] > 0 and traced["min_seconds"] > 0:
                    entry["speedup"] = (dispatched["mean_seconds"]
                                        / traced["mean_seconds"])
                    entry["speedup_best"] = (dispatched["min_seconds"]
                                             / traced["min_seconds"])
                plan_info = {k: v for k, v in plan.describe().items()
                             if k != "replays"}
            batches[str(batch)] = entry
        return batches, plan_info

    mlp = MLPClassifier(in_features=3 * 16 * 16, num_classes=10,
                        neuron_type="proposed", seed=0)
    cnn = SimpleCNN(num_classes=10, neuron_type="proposed", rank=3,
                    base_width=8, image_size=16, seed=0)
    mlp_batches, mlp_plan = measure(mlp, (3, 16, 16))
    cnn_batches, cnn_plan = measure(cnn, (3, 16, 16))
    return {
        "model": "mlp_classifier/proposed",
        "batches": mlp_batches,
        "plan": mlp_plan,
        "reference": {
            "simple_cnn/proposed": {"batches": cnn_batches, "plan": cnn_plan},
        },
    }


def generation_benchmarks(rounds: int = 3, warmup: int = 1, batch: int = 16,
                          max_len: int = 32) -> dict:
    """Incremental KV-cached decoding vs the full-prefix recompute.

    Both paths drive the same Transformer through ``max_len - 1`` forced
    decode steps (termination disabled, so the measured work is identical
    and independent of what an untrained model happens to emit): the
    incremental path feeds one token per step through
    :meth:`~repro.models.transformer.Transformer.decode_step`, the reference
    re-runs :meth:`~repro.models.transformer.Transformer.decode` over the
    whole growing prefix — O(T) versus O(T²) in decoder forwards.  Tokens/sec
    for both and their ratio land under ``generation`` in
    ``BENCH_autograd.json`` (CI floor: 2x at ``max_len`` 32).
    """
    from .models import Transformer
    from .tensor import no_grad

    model = Transformer(src_vocab_size=101, tgt_vocab_size=97, model_dim=64,
                        num_heads=4, num_layers=2, hidden_dim=128,
                        neuron_type="proposed", rank=4, max_len=max_len,
                        seed=0).eval()
    rng = np.random.default_rng(3)
    src_ids = rng.integers(4, 101, size=(batch, 12), dtype=np.int64)
    steps = max_len - 1
    bos = 1

    def incremental():
        with no_grad():
            state = model.start_decode(src_ids, max_len=max_len)
            tokens = np.full(batch, bos, dtype=np.int64)
            for _ in range(steps):
                logits = model.decode_step(state, tokens)
                tokens = logits.argmax(axis=-1)
                tokens = np.where(tokens == model.pad_id, bos, tokens)

    def reference():
        with no_grad():
            memory, src_mask = model.encode(src_ids)
            generated = np.full((batch, 1), bos, dtype=np.int64)
            for _ in range(steps):
                logits = model.decode(generated, memory, src_mask)
                tokens = logits.data[:, -1, :].argmax(axis=-1)
                tokens = np.where(tokens == model.pad_id, bos, tokens)
                generated = np.concatenate([generated, tokens[:, None]], axis=1)

    incremental_stats = time_callable(incremental, rounds=rounds, warmup=warmup)
    reference_stats = time_callable(reference, rounds=rounds, warmup=warmup)
    tokens_per_round = batch * steps
    result = {
        "model": "transformer/proposed",
        "batch": batch,
        "max_len": max_len,
        "steps": steps,
        "incremental": incremental_stats,
        "reference": reference_stats,
        "incremental_tokens_per_second":
            tokens_per_round / incremental_stats["mean_seconds"],
        "reference_tokens_per_second":
            tokens_per_round / reference_stats["mean_seconds"],
    }
    if incremental_stats["mean_seconds"] > 0 and \
            incremental_stats["min_seconds"] > 0:
        result["speedup"] = (reference_stats["mean_seconds"]
                             / incremental_stats["mean_seconds"])
        result["speedup_best"] = (reference_stats["min_seconds"]
                                  / incremental_stats["min_seconds"])
    return result


def training_benchmarks(rounds: int = 2, warmup: int = 1, world_size: int = 4,
                        worker_counts: tuple[int, ...] = (1, 2, 4),
                        batches: int = 4, batch_size: int = 64) -> dict:
    """Worker-count scaling curve of data-parallel training.

    One epoch of :class:`~repro.training.DataParallelTrainer` over a fixed
    synthetic workload, at a **fixed** ``world_size`` and varying worker
    counts — so every configuration computes byte-identical parameters (the
    shard arithmetic never changes) and the curve measures pure execution
    scaling: shards running concurrently in worker processes versus
    sequentially inline.  Samples/sec per worker count lands under
    ``training`` in ``BENCH_autograd.json``.

    The warmup round spawns the worker fleet, so process startup is excluded
    from the timed rounds (steady-state training amortizes spawn over the
    whole run).  ``speedup`` compares the largest fleet against inline
    execution; that ratio is CI-gated (``--min-train-speedup``) on
    multi-core runners — on one core the workers pay IPC for the same
    arithmetic and the recorded curve will honestly say so.
    """
    from .data import DataLoader
    from .models import build_model
    from .nn import CrossEntropyLoss
    from .optim import SGD
    from .training import DataParallelTrainer

    rng = np.random.default_rng(7)
    inputs = rng.standard_normal(
        (batches * batch_size, 3, 16, 16)).astype(np.float32)
    targets = rng.integers(0, 10, size=batches * batch_size)
    total_samples = batches * batch_size

    def measure(workers: int) -> dict:
        model = build_model("simple_cnn", num_classes=10, neuron_type="proposed",
                            rank=3, base_width=8, image_size=16, seed=0)
        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
        trainer = DataParallelTrainer(model, optimizer, CrossEntropyLoss(),
                                      world_size=world_size, workers=workers,
                                      seed=0)
        loader = DataLoader(inputs, targets, batch_size=batch_size,
                            shuffle=False, seed=0)
        try:
            timing = time_callable(lambda: trainer.train_epoch(loader),
                                   rounds=rounds, warmup=warmup)
        finally:
            trainer.close()
        timing["samples_per_second"] = total_samples / timing["mean_seconds"]
        timing["samples_per_second_best"] = total_samples / timing["min_seconds"]
        return timing

    results = {str(workers): measure(workers) for workers in worker_counts}
    result = {
        "model": "simple_cnn/proposed",
        "world_size": world_size,
        "batch_size": batch_size,
        "batches": batches,
        "worker_counts": list(worker_counts),
        "workers": results,
    }
    base = results[str(min(worker_counts))]
    top = results[str(max(worker_counts))]
    if top["mean_seconds"] > 0 and top["min_seconds"] > 0:
        result["speedup"] = base["mean_seconds"] / top["mean_seconds"]
        result["speedup_best"] = base["min_seconds"] / top["min_seconds"]
    return result


def benchmark_experiments(names: list[str], scale: str = "smoke",
                          cache_dir=None, progress=None) -> dict:
    """End-to-end wall time per experiment via the cached runner (cache bypassed).

    Always runs sequentially (``jobs=1``): concurrent experiments contend for
    cores and would inflate each other's wall times, corrupting the trajectory
    that successive PRs compare against.  The fresh artifacts still land in
    the cache, so a later ``repro run`` of the same configuration is a cache
    hit — benching warms the sweep.
    """
    cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
    outcomes = run_many(names, scale=scale, cache_dir=cache_dir, force=True,
                        jobs=1, progress=progress)
    timings: dict[str, dict] = {}
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(f"benchmark run of '{outcome.name}' failed: "
                               f"{outcome.error}")
        timings[outcome.name] = {
            "mean_seconds": outcome.elapsed_seconds,
            "min_seconds": outcome.elapsed_seconds,
            "stddev_seconds": 0.0,
            "rounds": 1,
        }
    return timings


def build_summary(figure_repros: dict, fused_ops: dict, fused_speedups: dict,
                  scale: str, started: float, inference: dict | None = None,
                  serving: dict | None = None, trace: dict | None = None,
                  pool: dict | None = None,
                  generation: dict | None = None,
                  training: dict | None = None) -> dict:
    serving_section = dict(serving or {})
    if pool:  # the pool scaling curve rides inside the serving section
        serving_section["pool"] = pool
    return {
        "figure_repros": figure_repros,
        "fused_ops": fused_ops,
        "fused_speedups": fused_speedups,
        "inference": inference or {},
        "serving": serving_section,
        "trace": trace or {},
        "generation": generation or {},
        "training": training or {},
        "scale": scale,
        "targets": sorted(figure_repros),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(started)),
        "harness_seconds": time.time() - started,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def check_fused_speedups(summary: dict, minimum: float) -> list[str]:
    """Return regression messages for fused speedups below ``minimum`` (CI gate).

    Each kernel passes if *either* its mean-based or its best-of-rounds ratio
    clears the floor — a genuine fusion regression drags both down, while a
    noisy-neighbor scheduling blip rarely corrupts the best-of-rounds number.
    """
    speedups = summary.get("fused_speedups", {})
    violations = []
    for name, ratio in sorted(speedups.items()):
        if name.endswith("_best"):
            continue
        best = speedups.get(f"{name}_best", ratio)
        if max(ratio, best) < minimum:
            violations.append(f"{name} = {ratio:.3f}x (best-of-rounds "
                              f"{best:.3f}x) is below the {minimum:.2f}x floor")
    return violations


def check_inference_speedup(summary: dict, minimum: float) -> list[str]:
    """Regression messages when batched inference falls below ``minimum``×.

    Like :func:`check_fused_speedups`, passes when *either* the mean-based or
    the best-of-rounds ratio clears the floor.
    """
    inference = summary.get("inference", {})
    ratio = inference.get("speedup")
    if ratio is None:
        return ["inference benchmark missing from the summary"]
    best = inference.get("speedup_best", ratio)
    if max(ratio, best) < minimum:
        return [f"batched inference speedup = {ratio:.3f}x (best-of-rounds "
                f"{best:.3f}x) is below the {minimum:.2f}x floor at "
                f"batch {inference.get('batch_size')}"]
    return []


def check_serving_speedup(summary: dict, minimum: float) -> list[str]:
    """Regression messages when the batched engine's concurrent-load
    throughput falls below ``minimum``× the direct engine's.

    Like the other gates, passes when *either* the mean-based or the
    best-of-rounds ratio clears the floor.
    """
    serving = summary.get("serving", {})
    ratio = serving.get("speedup")
    if ratio is None:
        return ["serving benchmark missing from the summary"]
    best = serving.get("speedup_best", ratio)
    if max(ratio, best) < minimum:
        return [f"batched-engine serving speedup = {ratio:.3f}x "
                f"(best-of-rounds {best:.3f}x) is below the {minimum:.2f}x "
                f"floor at {serving.get('clients')} concurrent clients"]
    return []


def check_pool_speedup(summary: dict, minimum: float) -> list[str]:
    """Regression messages when the largest pool's throughput falls below
    ``minimum``× the single-process batched engine on the multi-row micro.

    This gate only makes sense on a multi-core machine (CI runners): with
    one core the pool pays IPC for the same arithmetic and cannot win.  Like
    the other gates, passes when *either* the mean-based or the
    best-of-rounds ratio clears the floor.
    """
    pool = summary.get("serving", {}).get("pool", {})
    ratio = pool.get("speedup")
    if ratio is None:
        return ["pool benchmark missing from the summary"]
    best = pool.get("speedup_best", ratio)
    if max(ratio, best) < minimum:
        workers = max(pool.get("worker_counts", [0]))
        return [f"pool({workers}) serving speedup = {ratio:.3f}x "
                f"(best-of-rounds {best:.3f}x) over the batched engine is "
                f"below the {minimum:.2f}x floor at "
                f"{pool.get('rows_per_request')} rows/request"]
    return []


def check_trace_speedup(summary: dict, minimum: float) -> list[str]:
    """Regression messages when traced replay falls below ``minimum``× the
    dispatched forward at any benched batch size.

    Gates the ``mlp_classifier`` micro only (dispatch-overhead-dominated, so
    the ratio is stable); the ``simple_cnn`` reference numbers are recorded
    but compute-bound and therefore not gated.  Like the other gates, a batch
    size passes when *either* the mean-based or the best-of-rounds ratio
    clears the floor.
    """
    trace = summary.get("trace", {})
    batches = trace.get("batches")
    if not batches:
        return ["trace benchmark missing from the summary"]
    violations = []
    for batch, entry in sorted(batches.items(), key=lambda kv: int(kv[0])):
        ratio = entry.get("speedup")
        if ratio is None:
            violations.append(f"trace speedup missing at batch {batch}")
            continue
        best = entry.get("speedup_best", ratio)
        if max(ratio, best) < minimum:
            violations.append(
                f"traced-replay speedup = {ratio:.3f}x (best-of-rounds "
                f"{best:.3f}x) is below the {minimum:.2f}x floor at batch "
                f"{batch} ({trace.get('model')})")
    return violations


def check_generate_speedup(summary: dict, minimum: float) -> list[str]:
    """Regression messages when incremental decoding falls below ``minimum``×
    the full-prefix recompute at the benched ``max_len``.

    Like the other gates, passes when *either* the mean-based or the
    best-of-rounds ratio clears the floor.
    """
    generation = summary.get("generation", {})
    ratio = generation.get("speedup")
    if ratio is None:
        return ["generation benchmark missing from the summary"]
    best = generation.get("speedup_best", ratio)
    if max(ratio, best) < minimum:
        return [f"incremental-decode speedup = {ratio:.3f}x (best-of-rounds "
                f"{best:.3f}x) is below the {minimum:.2f}x floor at "
                f"max_len {generation.get('max_len')}"]
    return []


def check_train_speedup(summary: dict, minimum: float) -> list[str]:
    """Regression messages when the largest worker fleet's training
    throughput falls below ``minimum``× inline execution at the benched
    ``world_size``.

    Only meaningful on a multi-core machine (CI runners): with one core the
    workers pay IPC for the same arithmetic and cannot win.  Like the other
    gates, passes when *either* the mean-based or the best-of-rounds ratio
    clears the floor.
    """
    training = summary.get("training", {})
    ratio = training.get("speedup")
    if ratio is None:
        return ["training benchmark missing from the summary"]
    best = training.get("speedup_best", ratio)
    if max(ratio, best) < minimum:
        workers = max(training.get("worker_counts", [0]))
        return [f"data-parallel training speedup = {ratio:.3f}x "
                f"(best-of-rounds {best:.3f}x) at {workers} workers over "
                f"inline is below the {minimum:.2f}x floor at world_size "
                f"{training.get('world_size')}"]
    return []


def write_summary(summary: dict, output) -> None:
    atomic_write_json(output, {key: summary[key] for key in sorted(summary)})
