"""Versioned ``.npz`` training checkpoints.

A checkpoint is a single ``.npz`` file holding every piece of training state
needed to continue a run *bit-identically*:

* model parameters and buffers (``Module.state_dict``),
* optimizer per-parameter state and group hyperparameters
  (``Optimizer.state_dict`` — momentum buffers, Adam moments, step counts,
  scheduler-modified learning rates),
* learning-rate scheduler state (``LRScheduler.state_dict``),
* data-loader RNG state (``DataLoader.state_dict`` — shuffle order and
  augmentation draws resume exactly where they stopped),
* the training :class:`~repro.training.History` and arbitrary ``extra``
  scalars (epoch counter, divergence flags, best-model tracking).

Layout: every NumPy array in the state tree is stored as its own ``.npz``
entry (``array_<n>``, preserving dtype and shape exactly); the remaining
structure is JSON-encoded with ``{"__ndarray__": n}`` placeholders and stored
as a UTF-8 byte entry under ``__checkpoint__``.  No pickling is involved, so
checkpoints are portable and safe to load.

The format is versioned through :data:`CHECKPOINT_VERSION`; loading a file
written by a *newer* format raises so stale readers fail loudly instead of
mis-restoring state.

Checkpoint files are **byte-deterministic**: the ``.npz`` container is written
with pinned zip metadata (fixed timestamps, no compression), so saving the
same training state twice — or reaching it twice through different execution
paths, e.g. an N-worker data-parallel run versus its sequential twin, or a
killed-and-resumed run versus an uninterrupted one — produces files with
identical sha256.  CI compares checkpoints exactly this way.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

__all__ = ["CHECKPOINT_VERSION", "Checkpoint", "save_checkpoint", "load_checkpoint"]

#: Current checkpoint format version.  Bump when the layout changes.
#: v1: epoch-boundary loader state only (shuffle/augment RNG streams).
#: v2: the loader section may carry a mid-epoch ``cursor`` (batch index +
#:     pre-epoch shuffle RNG) and ``extra`` carries the step-granular fields
#:     (``step``, ``batch_index``, ``epoch_in_progress``, ``partial``).  A v2
#:     reader loads v1 files unchanged (the new fields are simply absent).
CHECKPOINT_VERSION = 2

#: Pinned timestamp for every zip entry (the DOS-epoch floor): entry bytes
#: depend only on the stored state, never on the wall clock.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)

_META_KEY = "__checkpoint__"
_ARRAY_MARKER = "__ndarray__"


def _flatten(value, arrays: list[np.ndarray]):
    """Replace every ndarray in a nested structure by an index placeholder."""
    if isinstance(value, np.ndarray):
        arrays.append(value)
        return {_ARRAY_MARKER: len(arrays) - 1}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(key): _flatten(item, arrays) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_flatten(item, arrays) for item in value]
    return value


def _resolve(value, arrays: dict[int, np.ndarray]):
    """Inverse of :func:`_flatten`: substitute placeholders with real arrays."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_MARKER}:
            return arrays[int(value[_ARRAY_MARKER])]
        return {key: _resolve(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_resolve(item, arrays) for item in value]
    return value


def _write_npz(stream, payload: dict[str, np.ndarray]) -> None:
    """Write ``payload`` as a deterministic uncompressed ``.npz``.

    ``np.savez`` stamps every zip entry with the current time, which would
    make two byte-identical states hash differently.  This writer produces
    the same container format (``<key>.npy`` entries readable by
    ``np.load``) with the timestamp pinned to the DOS epoch, so checkpoint
    bytes are a pure function of the stored state.
    """
    with zipfile.ZipFile(stream, "w", zipfile.ZIP_STORED) as archive:
        for key, array in payload.items():
            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, np.asarray(array),
                                      allow_pickle=False)
            info = zipfile.ZipInfo(f"{key}.npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_STORED
            info.external_attr = 0o600 << 16
            archive.writestr(info, buffer.getvalue())


def save_checkpoint(path, *, model=None, optimizer=None, scheduler=None,
                    loader=None, history=None, rng=None, extra: dict | None = None,
                    bundle: dict | None = None,
                    version: int = CHECKPOINT_VERSION) -> Path:
    """Write a checkpoint; every component is optional.

    ``model``/``optimizer``/``scheduler``/``loader`` must expose
    ``state_dict()``; ``history`` must expose ``to_list()``; ``rng`` is a
    :class:`numpy.random.Generator` whose bit-generator state is stored;
    ``extra`` is a JSON-serializable dictionary for caller bookkeeping;
    ``bundle`` is the self-describing model section written by
    :mod:`repro.io.bundle` (model spec + serving metadata), which makes the
    checkpoint loadable by :func:`repro.io.load_bundle` without knowing the
    architecture in advance.
    The write is atomic (unique temp file + fsync + rename) so an interrupted
    save never corrupts an existing checkpoint, and the bytes are
    deterministic (see :func:`_write_npz`) so identical states hash
    identically.
    """
    sections: dict = {}
    if model is not None:
        sections["model"] = model.state_dict()
    if optimizer is not None:
        sections["optimizer"] = optimizer.state_dict()
    if scheduler is not None:
        sections["scheduler"] = scheduler.state_dict()
    if loader is not None:
        sections["loader"] = loader.state_dict()
    if history is not None:
        sections["history"] = history.to_list()
    if rng is not None:
        sections["rng"] = rng.bit_generator.state
    if extra is not None:
        sections["extra"] = dict(extra)
    if bundle is not None:
        sections["bundle"] = dict(bundle)

    arrays: list[np.ndarray] = []
    meta = {"version": version, "sections": _flatten(sections, arrays)}
    payload = {f"array_{index}": array for index, array in enumerate(arrays)}
    payload[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Unique temp name + fsync + rename: concurrent savers (e.g. two workers
    # sharing a checkpoint_dir) can never interleave into one temp file, and
    # a crash can never publish a torn .npz at the final path.
    descriptor, temp_name = tempfile.mkstemp(dir=path.parent,
                                             prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as stream:
            _write_npz(stream, payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


class Checkpoint:
    """Loaded checkpoint: a version plus named state sections.

    ``sections`` maps section names (``"model"``, ``"optimizer"``, ...) to
    fully resolved state structures (NumPy arrays restored with their exact
    dtype and shape).  :meth:`restore` pushes the state back into live
    objects; individual sections remain accessible for inspection.
    """

    def __init__(self, version: int, sections: dict, path: Path | None = None):
        self.version = version
        self.sections = sections
        self.path = path

    def __contains__(self, section: str) -> bool:
        return section in self.sections

    def get(self, section: str, default=None):
        return self.sections.get(section, default)

    def restore(self, *, model=None, optimizer=None, scheduler=None,
                loader=None, rng=None) -> "Checkpoint":
        """Load the matching sections into the given live objects.

        Passing an object whose section is absent from the checkpoint raises
        ``KeyError`` — a silent partial restore would defeat the purpose of
        checkpointing.  Returns ``self`` for chaining.
        """
        targets = {"model": model, "optimizer": optimizer,
                   "scheduler": scheduler, "loader": loader}
        requested = {section: target for section, target in targets.items()
                     if target is not None}
        if rng is not None:
            requested["rng"] = rng
        # Validate every requested section up front so a missing one never
        # leaves the caller's objects partially restored.
        absent = [section for section in requested if section not in self.sections]
        if absent:
            raise KeyError(f"checkpoint {self.path or ''} has no {absent} section(s); "
                           f"available: {sorted(self.sections)}")
        for section, target in requested.items():
            if section == "rng":
                target.bit_generator.state = self.sections["rng"]
            else:
                target.load_state_dict(self.sections[section])
        return self

    def history(self):
        """Rebuild the stored :class:`~repro.training.History` (empty if absent)."""
        from ..training.history import History

        return History.from_records(self.sections.get("history", []))

    @property
    def extra(self) -> dict:
        return self.sections.get("extra", {})


def load_checkpoint(path) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    with np.load(path) as data:
        if _META_KEY not in data:
            raise ValueError(f"{path} is not a repro checkpoint (missing {_META_KEY!r})")
        meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
        version = int(meta.get("version", -1))
        if version > CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {path} has format version {version}, but this build "
                f"only supports up to {CHECKPOINT_VERSION}; refusing to load")
        arrays = {int(key.split("_", 1)[1]): np.array(data[key])
                  for key in data.files if key.startswith("array_")}
    sections = _resolve(meta["sections"], arrays)
    return Checkpoint(version=version, sections=sections, path=path)
