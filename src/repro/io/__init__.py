"""Serialization substrate: versioned checkpoints and JSON-safe conversion.

* :mod:`repro.io.checkpoint`     — ``.npz``-based training checkpoints covering
  model parameters/buffers, optimizer state, scheduler state, data-loader RNG
  state and training history.
* :mod:`repro.io.serialization`  — lossy-but-safe conversion of arbitrary
  experiment results into JSON-serializable structures (used by the artifact
  cache and by :class:`repro.training.History`).
"""

from .checkpoint import CHECKPOINT_VERSION, Checkpoint, load_checkpoint, save_checkpoint
from .serialization import atomic_write_json, to_jsonable

__all__ = [
    "atomic_write_json",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "to_jsonable",
]
