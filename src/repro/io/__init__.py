"""Serialization substrate: versioned checkpoints, model bundles, JSON conversion.

* :mod:`repro.io.checkpoint`     — ``.npz``-based training checkpoints covering
  model parameters/buffers, optimizer state, scheduler state, data-loader RNG
  state and training history.
* :mod:`repro.io.bundle`         — self-describing model bundles: a checkpoint
  plus an embedded model spec and serving metadata, so
  :func:`load_bundle` rebuilds architecture + weights + normalization without
  knowing which experiment produced the file.
* :mod:`repro.io.serialization`  — lossy-but-safe conversion of arbitrary
  experiment results into JSON-serializable structures (used by the artifact
  cache and by :class:`repro.training.History`).
"""

from .bundle import (
    BUNDLE_FORMAT_VERSION,
    Bundle,
    bundle_section,
    default_bundle_name,
    load_bundle,
    save_bundle,
)
from .checkpoint import CHECKPOINT_VERSION, Checkpoint, load_checkpoint, save_checkpoint
from .serialization import atomic_write_json, to_jsonable

__all__ = [
    "atomic_write_json",
    "BUNDLE_FORMAT_VERSION",
    "Bundle",
    "bundle_section",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "default_bundle_name",
    "load_bundle",
    "load_checkpoint",
    "save_bundle",
    "save_checkpoint",
    "to_jsonable",
]
