"""Conversion of arbitrary result structures into JSON-serializable form.

Experiment drivers return nested dictionaries that freely mix Python scalars,
NumPy scalars and arrays, tuples (including tuple *keys* such as the
``(tokenization, cased)`` BLEU settings of Table II) and small helper objects.
:func:`to_jsonable` normalizes all of that so artifacts can be cached as JSON:

* NumPy scalars become Python scalars, arrays become nested lists;
* tuples/sets become lists, non-string dictionary keys become strings;
* dataclasses and objects exposing ``as_dict``/``to_list``/``__dict__`` are
  converted recursively;
* anything else falls back to ``repr`` (lossy by design — artifacts are for
  inspection and cache hits, not for reconstructing live objects).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["to_jsonable", "atomic_write_json"]

_ATOMIC = (bool, int, float, str, type(None))


def to_jsonable(value):
    """Recursively convert ``value`` into JSON-serializable primitives."""
    if isinstance(value, _ATOMIC):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {_key(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    for attribute in ("as_dict", "to_list"):
        method = getattr(value, attribute, None)
        if callable(method):
            return to_jsonable(method())
    if hasattr(value, "__dict__"):
        return to_jsonable(vars(value))
    return repr(value)


def atomic_write_json(path: str | Path, payload, indent: int = 2) -> Path:
    """Write ``payload`` as JSON to ``path`` atomically.

    The bytes land in a uniquely named temporary file in the destination
    directory (so concurrent writers can never collide on the temp name),
    are fsynced, and only then renamed over ``path`` with ``os.replace``.
    A reader — or a crash — can therefore observe the old artifact or the new
    one, but never a torn, half-written JSON document.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(payload, handle, indent=indent)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def _key(key) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (bool, int, float)):
        return str(key)
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)
