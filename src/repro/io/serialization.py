"""Conversion of arbitrary result structures into JSON-serializable form.

Experiment drivers return nested dictionaries that freely mix Python scalars,
NumPy scalars and arrays, tuples (including tuple *keys* such as the
``(tokenization, cased)`` BLEU settings of Table II) and small helper objects.
:func:`to_jsonable` normalizes all of that so artifacts can be cached as JSON:

* NumPy scalars become Python scalars, arrays become nested lists;
* tuples/sets become lists, non-string dictionary keys become strings;
* dataclasses and objects exposing ``as_dict``/``to_list``/``__dict__`` are
  converted recursively;
* anything else falls back to ``repr`` (lossy by design — artifacts are for
  inspection and cache hits, not for reconstructing live objects).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["to_jsonable"]

_ATOMIC = (bool, int, float, str, type(None))


def to_jsonable(value):
    """Recursively convert ``value`` into JSON-serializable primitives."""
    if isinstance(value, _ATOMIC):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {_key(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    for attribute in ("as_dict", "to_list"):
        method = getattr(value, attribute, None)
        if callable(method):
            return to_jsonable(method())
    if hasattr(value, "__dict__"):
        return to_jsonable(vars(value))
    return repr(value)


def _key(key) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (bool, int, float)):
        return str(key)
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)
