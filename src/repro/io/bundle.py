"""Self-describing model bundles.

A *bundle* is a regular repro ``.npz`` checkpoint that additionally carries a
``bundle`` section: the model's registry spec (``{"name": ..., "kwargs":
{...}}``, see :mod:`repro.models.registry`) plus serving metadata —
input-normalization statistics, class labels, the expected input shape and
arbitrary info the producer wants to ship with the weights.  That one section
is what makes the file *self-describing*: :func:`load_bundle` reconstructs
architecture **and** weights **and** preprocessing without knowing which
experiment (or which model class) produced the file.

Because the section rides inside the ordinary checkpoint format, every
checkpoint written by :class:`repro.training.Trainer` for a registered model
(``best.npz``, ``last.npz``, ``epoch_k.npz``) is automatically a loadable
bundle — there is no separate export step between training and serving.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from .serialization import to_jsonable

__all__ = ["BUNDLE_FORMAT_VERSION", "Bundle", "bundle_section", "save_bundle",
           "load_bundle", "default_bundle_name"]

#: Version of the ``bundle`` section layout (independent of the checkpoint
#: format version).  Bump when the section's schema changes.
BUNDLE_FORMAT_VERSION = 1


def bundle_section(model, info: dict | None = None) -> dict | None:
    """Build the ``bundle`` checkpoint section for ``model``.

    Returns ``None`` when the model carries no registry spec (such models
    cannot be reconstructed by name, so their checkpoints stay plain
    checkpoints).  ``info`` holds JSON-safe serving metadata; the conventional
    keys consumed by :mod:`repro.serve` are ``normalization`` (``{"mean": ...,
    "std": ...}``), ``classes`` (label strings) and ``input_shape``
    (per-sample shape, e.g. ``[3, 32, 32]``).
    """
    spec = getattr(model, "model_spec", None)
    if spec is None:
        return None
    section = {"format_version": BUNDLE_FORMAT_VERSION, "spec": to_jsonable(spec)}
    if info:
        reserved = {"format_version", "spec"} & set(info)
        if reserved:
            raise ValueError(f"bundle info may not override {sorted(reserved)}")
        section.update(to_jsonable(dict(info)))
    return section


def save_bundle(path, model, info: dict | None = None,
                extra: dict | None = None) -> Path:
    """Write ``model`` (weights + spec + serving metadata) as a bundle.

    Raises ``ValueError`` for models without a registry spec — register the
    model class with :func:`repro.models.register_model` to make it servable.
    """
    section = bundle_section(model, info)
    if section is None:
        raise ValueError(
            f"{type(model).__name__} has no model_spec and cannot be bundled; "
            f"register its builder with repro.models.register_model so the "
            f"architecture can be reconstructed by name")
    return save_checkpoint(path, model=model, bundle=section, extra=extra)


def default_bundle_name(model, discriminator: dict | None = None) -> str:
    """Deterministic filename for a model's bundle: ``<spec name>-<digest8>.npz``.

    The digest covers the full spec, so two differently-configured models of
    the same family never collide, while re-running a deterministic training
    job reproduces the same name (parallel and sequential sweeps emit
    byte-comparable artifact listings).  When two models share an identical
    spec but are *trained* differently (epochs, learning rate, data seed —
    knobs that never reach the constructor), pass those knobs as
    ``discriminator`` so their bundles don't overwrite each other.
    """
    spec = getattr(model, "model_spec", None)
    if spec is None:
        raise ValueError(f"{type(model).__name__} has no model_spec")
    identity = {"spec": to_jsonable(spec)}
    if discriminator:
        identity["discriminator"] = to_jsonable(dict(discriminator))
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]
    return f"{spec['name']}-{digest}.npz"


class Bundle:
    """A loaded bundle: the reconstructed model plus its serving metadata.

    The model arrives in eval mode with weights restored; ``checkpoint``
    keeps the underlying :class:`~repro.io.checkpoint.Checkpoint` so callers
    can reach any other section (history, optimizer state) when present.
    """

    def __init__(self, model, section: dict, checkpoint: Checkpoint,
                 path: Path | None = None):
        self.model = model
        self.section = section
        self.checkpoint = checkpoint
        self.path = path

    @property
    def spec(self) -> dict:
        return self.section["spec"]

    @property
    def normalization(self) -> dict | None:
        return self.section.get("normalization")

    @property
    def classes(self) -> list[str] | None:
        return self.section.get("classes")

    @property
    def input_shape(self) -> tuple | None:
        shape = self.section.get("input_shape")
        return tuple(int(dim) for dim in shape) if shape is not None else None

    def info(self) -> dict:
        """Serving metadata minus the structural keys."""
        return {key: value for key, value in self.section.items()
                if key not in ("format_version", "spec")}

    def __repr__(self) -> str:
        return (f"Bundle(model={self.spec['name']!r}, "
                f"path={str(self.path) if self.path else None!r})")


def load_bundle(path) -> Bundle:
    """Load a bundle: rebuild the architecture from its spec, restore weights.

    Works on any checkpoint whose producer embedded a ``bundle`` section —
    ``Trainer.fit``'s ``best.npz``, files written by :func:`save_bundle`, and
    the per-experiment bundles recorded by the sweep runner — regardless of
    which experiment or model family it came from.  The returned model is in
    eval mode, ready for :class:`repro.serve.InferenceSession`.
    """
    path = Path(path)
    checkpoint = load_checkpoint(path)
    section = checkpoint.get("bundle")
    if section is None:
        raise ValueError(
            f"{path} is a checkpoint but not a model bundle (no 'bundle' "
            f"section); it was saved for a model without a registry spec")
    declared = int(section.get("format_version", -1))
    if declared > BUNDLE_FORMAT_VERSION:
        raise ValueError(
            f"bundle {path} has section format {declared}, but this build only "
            f"supports up to {BUNDLE_FORMAT_VERSION}; refusing to load")
    if "model" not in checkpoint:
        raise ValueError(f"bundle {path} has no model weights section")

    # Importing the zoo populates the model registry before spec resolution.
    import repro.models  # noqa: F401
    from ..models.registry import build_from_spec

    model = build_from_spec(section["spec"])
    model.load_state_dict(checkpoint.sections["model"])
    model.eval()
    return Bundle(model=model, section=section, checkpoint=checkpoint, path=path)
