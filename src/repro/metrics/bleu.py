"""BLEU score with the evaluation settings used in Table II.

Table II reports BLEU for four configurations: 13a-style tokenization vs
"international" tokenization, each cased and uncased.  This module implements
corpus-level BLEU (n-grams up to 4, brevity penalty, optional add-one
smoothing for the higher orders) plus the two tokenizers, all from scratch.
"""

from __future__ import annotations

import math
import re
from collections import Counter

__all__ = ["tokenize_13a", "tokenize_international", "corpus_bleu", "bleu_score",
           "EVALUATION_SETTINGS"]

#: The four evaluation settings of Table II: (tokenization, cased).
EVALUATION_SETTINGS = [
    ("13a", True),
    ("13a", False),
    ("international", True),
    ("international", False),
]

_13A_PUNCT = re.compile(r"([\.\,\!\?\;\:\(\)\"])")
_13A_SPACE = re.compile(r"\s+")
_INTL_SPLIT = re.compile(r"[^\w]+", flags=re.UNICODE)


def tokenize_13a(text: str) -> list[str]:
    """Simplified mteval-v13a tokenization: split punctuation into separate tokens."""
    text = _13A_PUNCT.sub(r" \1 ", text)
    text = _13A_SPACE.sub(" ", text).strip()
    return text.split(" ") if text else []


def tokenize_international(text: str) -> list[str]:
    """International tokenization: split on every non-word character."""
    tokens = [token for token in _INTL_SPLIT.split(text) if token]
    return tokens


_TOKENIZERS = {
    "13a": tokenize_13a,
    "international": tokenize_international,
}


def _ngram_counts(tokens: list[str], order: int) -> Counter:
    return Counter(tuple(tokens[i:i + order]) for i in range(len(tokens) - order + 1))


def corpus_bleu(hypotheses: list[list[str]], references: list[list[str]], max_order: int = 4,
                smooth: bool = True) -> float:
    """Corpus-level BLEU over pre-tokenized hypotheses and single references.

    Returns a value in ``[0, 100]``.
    """
    if len(hypotheses) != len(references):
        raise ValueError(f"got {len(hypotheses)} hypotheses but {len(references)} references")
    if not hypotheses:
        return 0.0

    matches = [0] * max_order
    possible = [0] * max_order
    hypothesis_length = 0
    reference_length = 0

    for hypothesis, reference in zip(hypotheses, references):
        hypothesis_length += len(hypothesis)
        reference_length += len(reference)
        for order in range(1, max_order + 1):
            hyp_ngrams = _ngram_counts(hypothesis, order)
            ref_ngrams = _ngram_counts(reference, order)
            overlap = sum((hyp_ngrams & ref_ngrams).values())
            matches[order - 1] += overlap
            possible[order - 1] += max(len(hypothesis) - order + 1, 0)

    precisions = []
    for order in range(max_order):
        if possible[order] == 0:
            # No n-grams of this order exist (hypotheses shorter than the
            # order); exclude it from the geometric mean rather than zeroing
            # the whole score, matching the common mteval behaviour.
            continue
        if matches[order] == 0 and smooth and order > 0:
            # Add-one style (Lin & Och) smoothing for empty higher-order matches.
            precisions.append(1.0 / (2.0 * possible[order]))
        else:
            precisions.append(matches[order] / possible[order])

    if not precisions or min(precisions) <= 0.0:
        return 0.0

    log_precision = sum(math.log(p) for p in precisions) / len(precisions)
    if hypothesis_length == 0:
        return 0.0
    brevity_penalty = 1.0 if hypothesis_length > reference_length else \
        math.exp(1.0 - reference_length / hypothesis_length)
    return 100.0 * brevity_penalty * math.exp(log_precision)


def bleu_score(hypotheses: list[str], references: list[str], tokenization: str = "13a",
               cased: bool = True, max_order: int = 4) -> float:
    """BLEU between surface strings under one of the Table II evaluation settings."""
    if tokenization not in _TOKENIZERS:
        raise KeyError(f"unknown tokenization '{tokenization}'; options: {sorted(_TOKENIZERS)}")
    tokenizer = _TOKENIZERS[tokenization]
    if not cased:
        hypotheses = [text.lower() for text in hypotheses]
        references = [text.lower() for text in references]
    hypothesis_tokens = [tokenizer(text) for text in hypotheses]
    reference_tokens = [tokenizer(text) for text in references]
    return corpus_bleu(hypothesis_tokens, reference_tokens, max_order=max_order)
