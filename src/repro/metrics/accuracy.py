"""Classification accuracy metrics."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor

__all__ = ["accuracy", "top_k_accuracy"]


def _logits_to_array(logits) -> np.ndarray:
    return logits.data if isinstance(logits, Tensor) else np.asarray(logits)


def accuracy(logits, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1] from raw logits and integer targets."""
    scores = _logits_to_array(logits)
    predictions = scores.argmax(axis=-1)
    targets = np.asarray(targets)
    return float((predictions == targets).mean())


def top_k_accuracy(logits, targets: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy in [0, 1]."""
    scores = _logits_to_array(logits)
    targets = np.asarray(targets)
    k = min(k, scores.shape[-1])
    top_k = np.argsort(-scores, axis=-1)[..., :k]
    hits = (top_k == targets[..., None]).any(axis=-1)
    return float(hits.mean())
