"""Metrics: accuracy, BLEU, and the parameter/MAC profiler."""

from .accuracy import accuracy, top_k_accuracy
from .bleu import (
    bleu_score,
    corpus_bleu,
    tokenize_13a,
    tokenize_international,
    EVALUATION_SETTINGS,
)
from .profiler import (
    LayerProfile,
    ModelProfile,
    OpTimeTable,
    profile_model,
    record_op_times,
)

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "bleu_score",
    "corpus_bleu",
    "tokenize_13a",
    "tokenize_international",
    "EVALUATION_SETTINGS",
    "LayerProfile",
    "ModelProfile",
    "OpTimeTable",
    "profile_model",
    "record_op_times",
]
