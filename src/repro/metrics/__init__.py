"""Metrics: accuracy, BLEU, and the parameter/MAC profiler."""

from .accuracy import accuracy, top_k_accuracy
from .bleu import (
    bleu_score,
    corpus_bleu,
    tokenize_13a,
    tokenize_international,
    EVALUATION_SETTINGS,
)
from .profiler import LayerProfile, ModelProfile, profile_model

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "bleu_score",
    "corpus_bleu",
    "tokenize_13a",
    "tokenize_international",
    "EVALUATION_SETTINGS",
    "LayerProfile",
    "ModelProfile",
    "profile_model",
]
