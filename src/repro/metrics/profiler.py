"""Whole-model parameter and MAC profiler, plus per-op wall-time profiling.

The Fig. 4 / Fig. 5 sweeps plot accuracy against the number of parameters and
the number of multiply-accumulate operations (MACs, reported by the paper as
"FLOPs/MMacs").  This profiler runs a single forward pass, records every
neuron layer's output shape through forward hooks, and computes MACs from the
analytic per-neuron costs of Table I so the counts are exact and consistent
with :mod:`repro.quadratic.complexity`.

As in the paper, only the neuron layers (convolutions and dense projections)
are counted; normalization, activation, pooling and embedding costs are
ignored.

:func:`record_op_times` is the wall-time counterpart: it subscribes to the
graph executor's timing hooks (:func:`repro.tensor.engine.add_op_timing_hook`)
and aggregates the measured seconds per registered op — forward passes under
the op name, backward passes under ``"<name>:backward"``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from ..quadratic.baselines import (
    FactorizedQuadraticConv2d,
    FactorizedQuadraticLinear,
    GeneralQuadraticConv2d,
    GeneralQuadraticLinear,
    PureQuadraticConv2d,
    Quad1Conv2d,
    Quad1Linear,
    Quad2Conv2d,
    Quad2Linear,
    QuadraticResidualConv2d,
    QuadraticResidualLinear,
)
from ..quadratic.complexity import neuron_complexity, proposed_mac_count
from ..quadratic.efficient import EfficientQuadraticConv2d, EfficientQuadraticLinear
from ..quadratic.kervolution import KervolutionConv2d, KervolutionLinear
from ..tensor import Tensor, no_grad
from ..tensor import engine as tensor_engine

__all__ = ["LayerProfile", "ModelProfile", "profile_model",
           "OpTimeTable", "record_op_times"]


@dataclass
class LayerProfile:
    """Cost record of a single neuron layer."""

    name: str
    layer_type: str
    parameters: int
    macs: int
    output_shape: tuple


@dataclass
class ModelProfile:
    """Aggregated cost of a model for one input geometry."""

    layers: list[LayerProfile] = field(default_factory=list)
    total_parameters: int = 0
    total_macs: int = 0

    @property
    def parameters_millions(self) -> float:
        return self.total_parameters / 1e6

    @property
    def macs_millions(self) -> float:
        return self.total_macs / 1e6

    def as_rows(self) -> list[dict]:
        return [{
            "name": layer.name,
            "type": layer.layer_type,
            "parameters": layer.parameters,
            "macs": layer.macs,
            "output_shape": layer.output_shape,
        } for layer in self.layers]

    def summary(self) -> str:
        return (f"{self.total_parameters:,} parameters "
                f"({self.parameters_millions:.3f} M), "
                f"{self.total_macs:,} MACs ({self.macs_millions:.3f} MMac)")


def _spatial_positions(output: Tensor) -> int:
    shape = output.shape
    if len(shape) == 4:
        return int(shape[2] * shape[3])
    if len(shape) == 3:
        return int(shape[1])
    return 1


def _macs_linear_like(module, output: Tensor, fan_in: int, outputs: int, per_output: int) -> int:
    return _spatial_positions(output) * outputs * per_output


def _macs_conv2d(module: Conv2d, output: Tensor) -> int:
    fan_in = module.in_channels * module.kernel_size ** 2
    return _spatial_positions(output) * module.out_channels * fan_in


def _macs_dense_linear(module: Linear, output: Tensor) -> int:
    return _spatial_positions(output) * module.out_features * module.in_features


def _macs_proposed_conv(module: EfficientQuadraticConv2d, output: Tensor) -> int:
    per_filter = proposed_mac_count(module.fan_in, module.rank)
    return _spatial_positions(output) * module.num_filters * per_filter


def _macs_proposed_dense(module: EfficientQuadraticLinear, output: Tensor) -> int:
    per_neuron = proposed_mac_count(module.in_features, module.rank)
    return _spatial_positions(output) * module.num_neurons * per_neuron


def _macs_baseline_conv(neuron_type: str):
    def compute(module, output: Tensor) -> int:
        fan_in = module.in_channels * module.kernel_size ** 2
        rank = getattr(module, "rank", 1)
        cost = neuron_complexity(neuron_type, fan_in, rank)
        return _spatial_positions(output) * module.out_channels * cost.macs
    return compute


def _macs_baseline_dense(neuron_type: str):
    def compute(module, output: Tensor) -> int:
        rank = getattr(module, "rank", 1)
        cost = neuron_complexity(neuron_type, module.in_features, rank)
        return _spatial_positions(output) * module.out_features * cost.macs
    return compute


def _macs_kervolution_conv(module: KervolutionConv2d, output: Tensor) -> int:
    fan_in = module.in_channels * module.kernel_size ** 2
    return _spatial_positions(output) * module.out_channels * fan_in


def _macs_kervolution_dense(module: KervolutionLinear, output: Tensor) -> int:
    return _spatial_positions(output) * module.out_features * module.in_features


_MAC_RULES = [
    (EfficientQuadraticConv2d, _macs_proposed_conv),
    (EfficientQuadraticLinear, _macs_proposed_dense),
    (FactorizedQuadraticConv2d, _macs_baseline_conv("factorized")),
    (FactorizedQuadraticLinear, _macs_baseline_dense("factorized")),
    (GeneralQuadraticConv2d, _macs_baseline_conv("general")),
    (GeneralQuadraticLinear, _macs_baseline_dense("general")),
    (PureQuadraticConv2d, _macs_baseline_conv("pure")),
    (Quad1Conv2d, _macs_baseline_conv("quad1")),
    (Quad1Linear, _macs_baseline_dense("quad1")),
    (Quad2Conv2d, _macs_baseline_conv("quad2")),
    (Quad2Linear, _macs_baseline_dense("quad2")),
    (QuadraticResidualConv2d, _macs_baseline_conv("quad_residual")),
    (QuadraticResidualLinear, _macs_baseline_dense("quad_residual")),
    (KervolutionConv2d, _macs_kervolution_conv),
    (KervolutionLinear, _macs_kervolution_dense),
    (Conv2d, _macs_conv2d),
    (Linear, _macs_dense_linear),
]


def _rule_specificity(layer_class) -> int:
    """Number of other rule classes ``layer_class`` derives from."""
    return sum(1 for other, _ in _MAC_RULES
               if other is not layer_class and issubclass(layer_class, other))


# Most-derived-first ordering so that PureQuadraticConv2d matches its own
# "pure" rule before the GeneralQuadraticConv2d base-class rule, and user
# subclasses of Conv2d/Linear are still profiled via isinstance.
_ORDERED_MAC_RULES = sorted(_MAC_RULES,
                            key=lambda item: -_rule_specificity(item[0]))


def _find_rule(module: Module):
    for layer_class, rule in _ORDERED_MAC_RULES:
        if isinstance(module, layer_class):
            return rule
    return None


def profile_model(model: Module, *example_inputs, forward_fn=None) -> ModelProfile:
    """Profile ``model`` by running one forward pass on ``example_inputs``.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`.
    example_inputs:
        Arguments passed to the model (a single batch; batch size 1 is enough).
    forward_fn:
        Optional callable ``forward_fn(model, *example_inputs)`` when the model
        is not invoked as ``model(*example_inputs)``.

    Returns
    -------
    :class:`ModelProfile` with per-layer and total parameter / MAC counts.
    """
    records: list[tuple[str, Module, tuple]] = []
    hooked: list[Module] = []

    for name, module in model.named_modules():
        if _find_rule(module) is None:
            continue

        def hook(mod, inputs, output, _name=name):
            records.append((_name, mod, output.shape))

        module.register_forward_hook(hook)
        hooked.append(module)

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            if forward_fn is not None:
                forward_fn(model, *example_inputs)
            else:
                model(*example_inputs)
    finally:
        for module in hooked:
            module.clear_forward_hooks()
        model.train(was_training)

    profile = ModelProfile()
    for name, module, output_shape in records:
        rule = _find_rule(module)
        dummy_output = Tensor(np.empty(output_shape, dtype=np.float32))
        macs = int(rule(module, dummy_output))
        layer = LayerProfile(
            name=name,
            layer_type=type(module).__name__,
            parameters=module.num_parameters(),
            macs=macs,
            output_shape=tuple(output_shape))
        profile.layers.append(layer)
        profile.total_macs += macs
    profile.total_parameters = model.num_parameters()
    return profile


# ---------------------------------------------------------------------------
# Per-op wall-time profiling (fed by the graph executor's timing hooks)
# ---------------------------------------------------------------------------

@dataclass
class OpTimeTable:
    """Aggregated wall time per autograd op.

    Keys are op names as emitted by the executor: plain names for forward
    passes (``"matmul"``) and ``"<name>:backward"`` for VJP executions.
    """

    total_seconds: dict = field(default_factory=dict)
    calls: dict = field(default_factory=dict)

    def record(self, op_name: str, seconds: float) -> None:
        self.total_seconds[op_name] = self.total_seconds.get(op_name, 0.0) + seconds
        self.calls[op_name] = self.calls.get(op_name, 0) + 1

    @property
    def grand_total(self) -> float:
        return sum(self.total_seconds.values())

    def as_rows(self, sort_by_time: bool = True) -> list[dict]:
        names = sorted(self.total_seconds,
                       key=(lambda n: -self.total_seconds[n]) if sort_by_time else None)
        return [{
            "op": name,
            "seconds": self.total_seconds[name],
            "calls": self.calls[name],
            "mean_microseconds": 1e6 * self.total_seconds[name] / max(self.calls[name], 1),
        } for name in names]

    def summary(self, top: int = 10) -> str:
        lines = [f"{'op':<28s} {'calls':>7s} {'total ms':>10s} {'mean us':>9s}"]
        for row in self.as_rows()[:top]:
            lines.append(f"{row['op']:<28s} {row['calls']:>7d} "
                         f"{1e3 * row['seconds']:>10.3f} {row['mean_microseconds']:>9.1f}")
        return "\n".join(lines)


@contextmanager
def record_op_times():
    """Context manager that times every op executed inside the block.

    Yields an :class:`OpTimeTable`; the executor's timing hook is removed
    again on exit, so the zero-overhead fast path is restored.

    >>> with record_op_times() as table:
    ...     loss = model(batch); loss.backward()
    >>> print(table.summary())
    """
    table = OpTimeTable()
    tensor_engine.add_op_timing_hook(table.record)
    try:
        yield table
    finally:
        tensor_engine.remove_op_timing_hook(table.record)
