"""Whole-model parameter and MAC profiler.

The Fig. 4 / Fig. 5 sweeps plot accuracy against the number of parameters and
the number of multiply-accumulate operations (MACs, reported by the paper as
"FLOPs/MMacs").  This profiler runs a single forward pass, records every
neuron layer's output shape through forward hooks, and computes MACs from the
analytic per-neuron costs of Table I so the counts are exact and consistent
with :mod:`repro.quadratic.complexity`.

As in the paper, only the neuron layers (convolutions and dense projections)
are counted; normalization, activation, pooling and embedding costs are
ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from ..quadratic.baselines import (
    FactorizedQuadraticConv2d,
    FactorizedQuadraticLinear,
    GeneralQuadraticConv2d,
    GeneralQuadraticLinear,
    Quad1Conv2d,
    Quad1Linear,
    Quad2Conv2d,
    Quad2Linear,
    QuadraticResidualConv2d,
    QuadraticResidualLinear,
)
from ..quadratic.complexity import neuron_complexity, proposed_mac_count
from ..quadratic.efficient import EfficientQuadraticConv2d, EfficientQuadraticLinear
from ..quadratic.kervolution import KervolutionConv2d, KervolutionLinear
from ..tensor import Tensor, no_grad

__all__ = ["LayerProfile", "ModelProfile", "profile_model"]


@dataclass
class LayerProfile:
    """Cost record of a single neuron layer."""

    name: str
    layer_type: str
    parameters: int
    macs: int
    output_shape: tuple


@dataclass
class ModelProfile:
    """Aggregated cost of a model for one input geometry."""

    layers: list[LayerProfile] = field(default_factory=list)
    total_parameters: int = 0
    total_macs: int = 0

    @property
    def parameters_millions(self) -> float:
        return self.total_parameters / 1e6

    @property
    def macs_millions(self) -> float:
        return self.total_macs / 1e6

    def as_rows(self) -> list[dict]:
        return [{
            "name": layer.name,
            "type": layer.layer_type,
            "parameters": layer.parameters,
            "macs": layer.macs,
            "output_shape": layer.output_shape,
        } for layer in self.layers]

    def summary(self) -> str:
        return (f"{self.total_parameters:,} parameters "
                f"({self.parameters_millions:.3f} M), "
                f"{self.total_macs:,} MACs ({self.macs_millions:.3f} MMac)")


def _spatial_positions(output: Tensor) -> int:
    shape = output.shape
    if len(shape) == 4:
        return int(shape[2] * shape[3])
    if len(shape) == 3:
        return int(shape[1])
    return 1


def _macs_linear_like(module, output: Tensor, fan_in: int, outputs: int, per_output: int) -> int:
    return _spatial_positions(output) * outputs * per_output


def _macs_conv2d(module: Conv2d, output: Tensor) -> int:
    fan_in = module.in_channels * module.kernel_size ** 2
    return _spatial_positions(output) * module.out_channels * fan_in


def _macs_dense_linear(module: Linear, output: Tensor) -> int:
    return _spatial_positions(output) * module.out_features * module.in_features


def _macs_proposed_conv(module: EfficientQuadraticConv2d, output: Tensor) -> int:
    per_filter = proposed_mac_count(module.fan_in, module.rank)
    return _spatial_positions(output) * module.num_filters * per_filter


def _macs_proposed_dense(module: EfficientQuadraticLinear, output: Tensor) -> int:
    per_neuron = proposed_mac_count(module.in_features, module.rank)
    return _spatial_positions(output) * module.num_neurons * per_neuron


def _macs_baseline_conv(neuron_type: str):
    def compute(module, output: Tensor) -> int:
        fan_in = module.in_channels * module.kernel_size ** 2
        rank = getattr(module, "rank", 1)
        cost = neuron_complexity(neuron_type, fan_in, rank)
        return _spatial_positions(output) * module.out_channels * cost.macs
    return compute


def _macs_baseline_dense(neuron_type: str):
    def compute(module, output: Tensor) -> int:
        rank = getattr(module, "rank", 1)
        cost = neuron_complexity(neuron_type, module.in_features, rank)
        return _spatial_positions(output) * module.out_features * cost.macs
    return compute


def _macs_kervolution_conv(module: KervolutionConv2d, output: Tensor) -> int:
    fan_in = module.in_channels * module.kernel_size ** 2
    return _spatial_positions(output) * module.out_channels * fan_in


def _macs_kervolution_dense(module: KervolutionLinear, output: Tensor) -> int:
    return _spatial_positions(output) * module.out_features * module.in_features


_MAC_RULES = [
    (EfficientQuadraticConv2d, _macs_proposed_conv),
    (EfficientQuadraticLinear, _macs_proposed_dense),
    (FactorizedQuadraticConv2d, _macs_baseline_conv("factorized")),
    (FactorizedQuadraticLinear, _macs_baseline_dense("factorized")),
    (GeneralQuadraticConv2d, _macs_baseline_conv("general")),
    (GeneralQuadraticLinear, _macs_baseline_dense("general")),
    (Quad1Conv2d, _macs_baseline_conv("quad1")),
    (Quad1Linear, _macs_baseline_dense("quad1")),
    (Quad2Conv2d, _macs_baseline_conv("quad2")),
    (Quad2Linear, _macs_baseline_dense("quad2")),
    (QuadraticResidualConv2d, _macs_baseline_conv("quad_residual")),
    (QuadraticResidualLinear, _macs_baseline_dense("quad_residual")),
    (KervolutionConv2d, _macs_kervolution_conv),
    (KervolutionLinear, _macs_kervolution_dense),
    (Conv2d, _macs_conv2d),
    (Linear, _macs_dense_linear),
]


def _find_rule(module: Module):
    for layer_class, rule in _MAC_RULES:
        if type(module) is layer_class:
            return rule
    return None


def profile_model(model: Module, *example_inputs, forward_fn=None) -> ModelProfile:
    """Profile ``model`` by running one forward pass on ``example_inputs``.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`.
    example_inputs:
        Arguments passed to the model (a single batch; batch size 1 is enough).
    forward_fn:
        Optional callable ``forward_fn(model, *example_inputs)`` when the model
        is not invoked as ``model(*example_inputs)``.

    Returns
    -------
    :class:`ModelProfile` with per-layer and total parameter / MAC counts.
    """
    records: list[tuple[str, Module, tuple]] = []
    hooked: list[Module] = []

    for name, module in model.named_modules():
        if _find_rule(module) is None:
            continue

        def hook(mod, inputs, output, _name=name):
            records.append((_name, mod, output.shape))

        module.register_forward_hook(hook)
        hooked.append(module)

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            if forward_fn is not None:
                forward_fn(model, *example_inputs)
            else:
                model(*example_inputs)
    finally:
        for module in hooked:
            module.clear_forward_hooks()
        model.train(was_training)

    profile = ModelProfile()
    for name, module, output_shape in records:
        rule = _find_rule(module)
        dummy_output = Tensor(np.empty(output_shape, dtype=np.float32))
        macs = int(rule(module, dummy_output))
        layer = LayerProfile(
            name=name,
            layer_type=type(module).__name__,
            parameters=module.num_parameters(),
            macs=macs,
            output_shape=tuple(output_shape))
        profile.layers.append(layer)
        profile.total_macs += macs
    profile.total_parameters = model.num_parameters()
    return profile
