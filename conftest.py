"""Pytest bootstrap: make ``src/`` importable without an installed package.

The package is normally installed with ``pip install -e .``; this fallback
keeps the test and benchmark suites runnable in offline environments where the
editable-install machinery (PEP 660 / wheel) is unavailable.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
