"""Train two tiny classifiers, bundle them, and serve both over the v1 API.

Demonstrates the full serving path added on top of the experiment stack:

1. ``Trainer.fit`` writes ``best.npz`` — because the models were built
   through the registered model zoo, the checkpoints embed a model spec and
   serving metadata, making them *bundles*.
2. ``repro.load`` reconstructs architecture + weights + normalization from a
   bundle alone and returns a :class:`repro.Predictor`.  ``engine="batched"``
   routes every forward through a :class:`~repro.serve.BatchedEngine`, whose
   scheduler coalesces concurrent requests into fused no-grad forwards.
   Loading also compiles by default (``compile=True``): the first forward
   per input shape is traced into a fused, arena-allocated execution plan
   that later same-shape forwards replay without per-op dispatch — pass
   ``compile=False`` to force op-by-op dispatch.
3. A :class:`~repro.serve.ModelRouter` mounts both predictors behind the
   stdlib HTTP server's versioned multi-model API — ``GET /v1/models``,
   ``POST /v1/models/<name>/predict``, ``GET /v1/stats`` — while the legacy
   ``POST /predict`` shim keeps answering for the default model (now with a
   ``Deprecation`` header naming its v1 successor).
4. The router wraps each predictor in a
   :class:`~repro.serve.ManagedModel`, so the mounted models are *operable*
   while serving: the ``/v1/admin`` routes hot-reload a bundle with zero
   dropped requests, stage a canary taking a deterministic slice of
   traffic, and promote it — and ``/v1/stats`` (schema v2) reports real
   latency percentiles per model.  The ``repro promote`` / ``repro
   reload`` CLI verbs drive the same API from a shell.

Run as ``python examples/serve_predictions.py``; everything happens in a
temporary directory and finishes in under a minute on a laptop CPU.
"""

import _bootstrap  # noqa: F401  (puts src/ on sys.path)

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

import repro
from repro.data import DataLoader, SyntheticImageClassification
from repro.experiments.common import classifier_bundle_info
from repro.models import SimpleCNN
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.serve import ModelRouter, make_server
from repro.training import Trainer


def train_bundle(checkpoint_dir: Path, neuron_type: str) -> Path:
    """Train a small CNN and return the path of the bundle ``fit`` wrote."""
    dataset = SyntheticImageClassification(num_classes=4, image_size=10,
                                           train_size=96, test_size=32, seed=0)
    kwargs = {"rank": 3} if neuron_type == "proposed" else {}
    model = SimpleCNN(num_classes=4, neuron_type=neuron_type, base_width=4,
                      image_size=10, seed=0, **kwargs)
    trainer = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9),
                      CrossEntropyLoss())
    trainer.bundle_info = classifier_bundle_info(dataset)
    loader = DataLoader(dataset.train_images, dataset.train_labels,
                        batch_size=32, shuffle=True, seed=0)
    trainer.fit(loader, epochs=3, eval_inputs=dataset.test_images,
                eval_targets=dataset.test_labels,
                checkpoint_dir=checkpoint_dir, checkpoint_every=1)
    print(f"trained {neuron_type}: best eval accuracy {trainer.best_metric:.3f} "
          f"(epoch {trainer.best_epoch})")
    return checkpoint_dir / "best.npz"


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        quad_path = train_bundle(Path(workdir) / "quad", "proposed")
        linear_path = train_bundle(Path(workdir) / "linear", "linear")

        # -- the one-liner inference API ------------------------------------
        quad = repro.load(quad_path, engine="batched", max_wait_ms=1.0)
        linear = repro.load(linear_path)  # direct engine: inline forwards
        # For compute-bound multi-core serving, shard fused batches across
        # warm worker processes instead (CLI: --engine pool --workers 4):
        #   quad = repro.load(quad_path, engine="pool", workers=4)
        print(f"loaded {quad.describe()['model']} (engine: "
              f"{quad.engine.name}); input shape {quad.input_shape}")
        batch = np.random.default_rng(1).standard_normal(
            (8, *quad.input_shape)).astype(np.float32)
        print("predicted classes:", quad.predict(batch).tolist())
        top = quad.predict_topk(batch[:2], k=2)
        print("top-2 of first sample:",
              [(entry["label"], round(entry["probability"], 3))
               for entry in top[0]["top_k"]])

        # -- both predictors behind the v1 multi-model HTTP API -------------
        # Passing source/load_options makes the mounts hot-reloadable: the
        # control plane re-loads the bundle path through the same options.
        router = ModelRouter()
        router.add("quad", quad, source=str(quad_path),
                   load_options={"engine": "batched", "max_wait_ms": 1.0})
        router.add("linear", linear, source=str(linear_path))
        server = make_server(router, port=0, quiet=True)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://{host}:{port}"

        models = json.load(urllib.request.urlopen(f"{base}/v1/models"))
        print("mounted models:",
              [(entry["name"], entry["engine"]) for entry in models["models"]],
              "default:", models["default"])

        def post(path: str) -> dict:
            request = urllib.request.Request(
                f"{base}{path}",
                data=json.dumps({"inputs": batch.tolist(), "top_k": 1}).encode(),
                headers={"Content-Type": "application/json"})
            return json.load(urllib.request.urlopen(request))

        for name, predictor in router.items():
            response = post(f"/v1/models/{name}/predict")
            http_classes = [record["class_index"]
                            for record in response["predictions"]]
            assert http_classes == predictor.predict(batch).tolist()
            print(f"/v1/models/{name}/predict matches in-process:", http_classes)

        legacy = post("/predict")  # shim → default model ("quad")
        assert legacy["model"] == "quad"
        print("legacy /predict shim answered for:", legacy["model"])

        stats = json.load(urllib.request.urlopen(f"{base}/v1/stats"))
        entry = stats["models"]["quad"]
        print("quad scheduler stats:", entry["scheduler"])
        # compile=True (the default) traced each model on first forward;
        # every same-shape request after that was a plan-cache replay.
        print("quad plan cache:", entry["plan_cache"])
        latency = entry["latency"]
        print(f"quad latency over {latency['count']} requests: "
              f"p50={latency['p50_ms']}ms p95={latency['p95_ms']}ms "
              f"p99={latency['p99_ms']}ms")

        # -- zero-downtime operations: the /v1/admin control plane ----------
        def admin(method: str, path: str, payload: dict | None = None) -> dict:
            request = urllib.request.Request(
                f"{base}{path}", method=method,
                data=json.dumps(payload).encode() if payload else None,
                headers={"Content-Type": "application/json"})
            return json.load(urllib.request.urlopen(request))

        # Stage the linear bundle as a 50% canary on "quad", split traffic,
        # then promote it — all while the server keeps answering.
        staged = admin("POST", "/v1/admin/models/quad/canary",
                       {"bundle": str(linear_path), "percent": 50})
        print("staged canary:", staged["bundle"], f"at {staged['percent']}%")
        for _ in range(6):
            post("/v1/models/quad/predict")
        split = json.load(urllib.request.urlopen(f"{base}/v1/models/quad/stats"))
        print("deterministic 50% split:", split["requests_routed"])
        promoted = admin("POST", "/v1/admin/models/quad/promote")
        print("promoted:", promoted["status"], "— quad now serves",
              promoted["bundle"], f"(drained={promoted['drained']})")

        # Hot reload swaps a bundle in place: load + warm off-path, atomic
        # swap, drain + close the old engine; zero dropped requests.
        reloaded = admin("POST", "/v1/admin/models/quad/reload",
                         {"bundle": str(quad_path)})
        print("hot reload:", reloaded["previous_bundle"], "→",
              reloaded["bundle"], f"(reload #{reloaded['reloads']})")
        # From a shell the CLI drives the same API:
        #   python -m repro promote <bundle-or-artifact.json> --server <base>
        #   python -m repro reload --server <base>

        server.shutdown()
        router.close()  # drains engines; queued clients would get EngineClosed
        server.server_close()


if __name__ == "__main__":
    main()
