"""Train a tiny classifier, save it as a self-describing bundle, and serve it.

Demonstrates the full serving path added on top of the experiment stack:

1. ``Trainer.fit`` writes ``best.npz`` — because the model was built through
   the registered model zoo, the checkpoint embeds a model spec and serving
   metadata, making it a *bundle*.
2. ``repro.load`` reconstructs architecture + weights + normalization from
   the bundle alone and returns a :class:`repro.Predictor` (batched, no-grad,
   warm caches).
3. The same predictor is mounted behind the stdlib HTTP server and queried
   over ``POST /predict``, matching the in-process answer.

Run as ``python examples/serve_predictions.py``; everything happens in a
temporary directory and finishes in under a minute on a laptop CPU.
"""

import _bootstrap  # noqa: F401  (puts src/ on sys.path)

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

import repro
from repro.data import DataLoader, SyntheticImageClassification
from repro.experiments.common import classifier_bundle_info
from repro.models import SimpleCNN
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.serve import make_server
from repro.training import Trainer


def train_bundle(checkpoint_dir: Path) -> Path:
    """Train a small CNN and return the path of the bundle ``fit`` wrote."""
    dataset = SyntheticImageClassification(num_classes=4, image_size=10,
                                           train_size=96, test_size=32, seed=0)
    model = SimpleCNN(num_classes=4, neuron_type="proposed", rank=3,
                      base_width=4, image_size=10, seed=0)
    trainer = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9),
                      CrossEntropyLoss())
    trainer.bundle_info = classifier_bundle_info(dataset)
    loader = DataLoader(dataset.train_images, dataset.train_labels,
                        batch_size=32, shuffle=True, seed=0)
    trainer.fit(loader, epochs=3, eval_inputs=dataset.test_images,
                eval_targets=dataset.test_labels,
                checkpoint_dir=checkpoint_dir, checkpoint_every=1)
    print(f"trained: best eval accuracy {trainer.best_metric:.3f} "
          f"(epoch {trainer.best_epoch})")
    return checkpoint_dir / "best.npz"


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        bundle_path = train_bundle(Path(workdir))

        # -- the one-liner inference API ------------------------------------
        predictor = repro.load(bundle_path)
        print(f"loaded {predictor.describe()['model']} from {bundle_path.name}; "
              f"input shape {predictor.input_shape}")
        batch = np.random.default_rng(1).standard_normal(
            (8, *predictor.input_shape)).astype(np.float32)
        print("predicted classes:", predictor.predict(batch).tolist())
        top = predictor.predict_topk(batch[:2], k=2)
        print("top-2 of first sample:",
              [(entry["label"], round(entry["probability"], 3))
               for entry in top[0]["top_k"]])

        # -- the same predictor over HTTP -----------------------------------
        server = make_server(predictor, port=0, quiet=True)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        health = json.load(urllib.request.urlopen(f"http://{host}:{port}/healthz"))
        print("healthz:", health)
        request = urllib.request.Request(
            f"http://{host}:{port}/predict",
            data=json.dumps({"inputs": batch.tolist(), "top_k": 1}).encode(),
            headers={"Content-Type": "application/json"})
        response = json.load(urllib.request.urlopen(request))
        http_classes = [record["class_index"] for record in response["predictions"]]
        assert http_classes == predictor.predict(batch).tolist()
        print("HTTP answer matches the in-process answer:", http_classes)
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
