"""Neuron response and parameter-distribution analysis (Figs. 7 and 8, small scale).

Trains a small quadratic CNN, then:

* prints the per-layer spread of the quadratic eigenvalue parameters Λ
  (Fig. 7 — which layers actually use their second-order term), and
* compares the spatial-frequency content of the linear response ``wᵀx + b``
  and the quadratic response ``y₂ᵏ`` of the first quadratic convolution
  (Fig. 8 — the quadratic part focuses on low-frequency, whole-object
  structure).

Run with::

    python examples/neuron_response_analysis.py
"""

import _bootstrap  # noqa: F401  (puts the repo's src/ on sys.path)

from repro.analysis import (
    collect_parameter_distribution,
    frequency_energy_split,
    layer_responses,
    quadratic_significance,
)
from repro.experiments import get_scale
from repro.experiments.common import build_image_dataset, train_image_classifier
from repro.experiments.reporting import format_table
from repro.models import SimpleCNN
from repro.quadratic import EfficientQuadraticConv2d


def main() -> None:
    scale = get_scale("bench").with_overrides(epochs=8)
    dataset = build_image_dataset(scale, seed=11)
    model = SimpleCNN(num_classes=scale.num_classes, neuron_type="proposed", rank=scale.rank,
                      base_width=scale.base_width, image_size=scale.image_size, seed=11)
    print("training a small quadratic CNN ...")
    trainer, metrics = train_image_classifier(model, dataset, scale)
    print(f"test accuracy: {metrics['accuracy']:.3f}")

    print("\nFig. 7 — quadratic parameter spread per layer")
    stats = collect_parameter_distribution(model)
    significance = quadratic_significance(stats)
    rows = [{"layer": index, "lambda_spread_95_05": spread}
            for index, spread in sorted(significance.items())]
    print(format_table(rows))

    print("\nFig. 8 — response frequency analysis of the first quadratic convolution")
    layer = next(module for module in model.modules()
                 if isinstance(module, EfficientQuadraticConv2d))
    responses = layer_responses(layer, dataset.test_images[:4])
    rows = []
    for image_index in range(4):
        rows.append({
            "image": image_index,
            "linear_low_freq": frequency_energy_split(
                responses.linear[image_index])["low_fraction"],
            "quadratic_low_freq": frequency_energy_split(
                responses.quadratic[image_index])["low_fraction"],
        })
    print(format_table(rows))
    print("\nHigher 'quadratic_low_freq' than 'linear_low_freq' reproduces the paper's")
    print("observation that quadratic responses capture whole-object, low-frequency structure.")


if __name__ == "__main__":
    main()
