"""Machine translation with a quadratic Transformer (the Table II workload, small scale).

Trains the baseline Transformer and the quadratic Transformer (proposed
neurons in all attention projections, reduced model dimension) on the
synthetic translation task, then reports BLEU under the four Table II
evaluation settings and the parameter saving.

Run with::

    python examples/machine_translation_transformer.py [--epochs 8]
"""

import _bootstrap  # noqa: F401  (puts the repo's src/ on sys.path)

import argparse

from repro.data import SyntheticTranslationTask
from repro.experiments import get_scale
from repro.experiments.reporting import format_table
from repro.experiments.table2 import build_transformer, train_translation_model
from repro.metrics import EVALUATION_SETTINGS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8, help="training epochs")
    parser.add_argument("--train-size", type=int, default=256, help="parallel sentence pairs")
    parser.add_argument("--lambda-lr", type=float, default=1e-4,
                        help="learning rate of the quadratic parameters Λ")
    arguments = parser.parse_args()

    scale = get_scale("bench").with_overrides(translation_epochs=arguments.epochs,
                                              translation_train_size=arguments.train_size)
    task = SyntheticTranslationTask(train_size=scale.translation_train_size,
                                    test_size=scale.translation_test_size, seed=7)
    print(f"task: {task.describe()}")

    results = {}
    models = {}
    for neuron_type in ("linear", "proposed"):
        model = build_transformer(task, scale, neuron_type=neuron_type)
        models[neuron_type] = model
        print(f"\ntraining {neuron_type} transformer "
              f"({model.num_parameters():,} parameters) ...")
        trainer = train_translation_model(model, task, scale,
                                          quadratic_lr=arguments.lambda_lr)
        results[neuron_type] = trainer.evaluate_bleu(task)

    rows = []
    for tokenization, cased in EVALUATION_SETTINGS:
        rows.append({
            "tokenization": tokenization,
            "cased": cased,
            "baseline_bleu": results["linear"][(tokenization, cased)],
            "quadratic_bleu": results["proposed"][(tokenization, cased)],
        })
    print()
    print(format_table(rows))

    baseline_params = models["linear"].num_parameters()
    quadratic_params = models["proposed"].num_parameters()
    print(f"\nbaseline parameters : {baseline_params:,}")
    print(f"quadratic parameters: {quadratic_params:,} "
          f"({quadratic_params / baseline_params - 1:+.1%})")
    print("\nsample translations (quadratic transformer):")
    for hypothesis, pair in list(zip(results["proposed"]["hypotheses"], task.test_pairs))[:3]:
        print(f"  src: {pair.source_text}")
        print(f"  ref: {pair.target_text}")
        print(f"  hyp: {hypothesis}")


if __name__ == "__main__":
    main()
