"""Shared path bootstrap for the standalone example scripts.

Importing this module (Python puts the script's own directory on
``sys.path``) makes ``python examples/<name>.py`` work without an installed
package or a ``PYTHONPATH`` override by putting the repo's ``src/`` first.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
