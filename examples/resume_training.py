"""Checkpoint/resume walkthrough: interrupt training and continue bit-identically.

The script demonstrates the checkpoint subsystem end to end:

1. train a small quadratic CNN for 6 epochs straight through;
2. train the same configuration for 3 epochs, checkpointing every epoch,
   then build a *fresh* trainer and resume from ``last.npz`` to epoch 6;
3. verify the two loss curves are bit-identical (the loader's shuffle and
   augmentation RNG streams are part of the checkpoint);
4. reload the best epoch's weights from ``best.npz``.

Run with::

    python examples/resume_training.py
"""

import _bootstrap  # noqa: F401  (puts the repo's src/ on sys.path)

import tempfile
from pathlib import Path

import numpy as np

from repro import nn
from repro.data import DataLoader, SyntheticImageClassification, standard_cifar_augmentation
from repro.io import load_checkpoint
from repro.models import SimpleCNN
from repro.optim import SGD, MultiStepLR, split_parameter_groups
from repro.training import Trainer

EPOCHS = 6
INTERRUPT_AT = 3


def make_trainer() -> Trainer:
    model = SimpleCNN(num_classes=4, neuron_type="proposed", rank=3, base_width=4,
                      image_size=10, seed=1)
    groups = split_parameter_groups(model, base_lr=0.05, quadratic_lr=1e-3)
    optimizer = SGD(groups, lr=0.05, momentum=0.9, weight_decay=1e-4)
    scheduler = MultiStepLR(optimizer, milestones=[3, 5], gamma=0.1)
    return Trainer(model, optimizer, nn.CrossEntropyLoss(), scheduler=scheduler)


def make_loader(dataset: SyntheticImageClassification) -> DataLoader:
    return DataLoader(dataset.train_images, dataset.train_labels, batch_size=32,
                      shuffle=True, augmentation=standard_cifar_augmentation(1), seed=7)


def main() -> None:
    dataset = SyntheticImageClassification(num_classes=4, image_size=10,
                                           train_size=128, test_size=48, seed=0)
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro_ckpt_"))

    print(f"Reference run: {EPOCHS} epochs straight through")
    reference = make_trainer()
    reference.fit(make_loader(dataset), EPOCHS,
                  eval_inputs=dataset.test_images, eval_targets=dataset.test_labels)

    print(f"Interrupted run: stop after epoch {INTERRUPT_AT} "
          f"(checkpoints in {checkpoint_dir})")
    interrupted = make_trainer()
    interrupted.fit(make_loader(dataset), INTERRUPT_AT,
                    eval_inputs=dataset.test_images, eval_targets=dataset.test_labels,
                    checkpoint_dir=checkpoint_dir, checkpoint_every=1)

    print(f"Resume: fresh trainer continues from last.npz to epoch {EPOCHS}")
    resumed = make_trainer()
    history = resumed.fit(make_loader(dataset), EPOCHS,
                          eval_inputs=dataset.test_images, eval_targets=dataset.test_labels,
                          resume_from=checkpoint_dir / "last.npz")

    identical = history.to_list() == reference.history.to_list()
    print(f"\nloss curves bit-identical: {identical}")
    for reference_record, resumed_record in zip(reference.history, history):
        marker = "resumed" if reference_record["epoch"] > INTERRUPT_AT else "       "
        print(f"  epoch {reference_record['epoch']}  {marker}  "
              f"train_loss={resumed_record['train_loss']:.6f}  "
              f"eval_accuracy={resumed_record.get('eval_accuracy', float('nan')):.3f}")
    if not identical:
        raise SystemExit("resume drifted from the reference run")

    best = load_checkpoint(checkpoint_dir / "best.npz")
    best_model = SimpleCNN(num_classes=4, neuron_type="proposed", rank=3, base_width=4,
                           image_size=10, seed=1)
    best.restore(model=best_model)
    print(f"\nbest checkpoint: epoch {best.extra['best_epoch']} "
          f"(eval_accuracy={best.extra['best_metric']:.3f}) restored into a fresh model")


if __name__ == "__main__":
    main()
