"""Quickstart: build, inspect and train the paper's efficient quadratic neuron.

The script walks through the public API in four steps:

1. decompose a quadratic-form matrix (Lemma 1 + top-k eigen truncation);
2. build an :class:`EfficientQuadraticLinear` layer and inspect its cost
   against Table I;
3. train a tiny quadratic model on a second-order task a linear model cannot
   solve (the sign of a product of two inputs);
4. swap a convolution of a small CNN for the quadratic counterpart.

Run with::

    python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  (puts the repo's src/ on sys.path)

import numpy as np

from repro import nn
from repro.optim import Adam
from repro.quadratic import (
    EfficientQuadraticConv2d,
    EfficientQuadraticLinear,
    QuadraticDecomposition,
    neuron_complexity,
    table_i_rows,
)
from repro.tensor import Tensor


def step1_decomposition() -> None:
    print("=" * 70)
    print("Step 1 — quadratic matrix decomposition (Sec. III-A)")
    rng = np.random.default_rng(0)
    matrix = rng.standard_normal((8, 8))
    for rank in (1, 3, 8):
        decomposition = QuadraticDecomposition.from_matrix(matrix, rank)
        print(f"  rank {rank}: Frobenius error of M ≈ QᵏΛᵏ(Qᵏ)ᵀ = "
              f"{decomposition.residual_error:.4f}")
    x = rng.standard_normal(8)
    decomposition = QuadraticDecomposition.from_matrix(matrix, 8)
    print(f"  full-rank quadratic form matches xᵀMx: "
          f"{np.isclose(decomposition.evaluate(x), x @ ((matrix + matrix.T) / 2) @ x)}")


def step2_complexity() -> None:
    print("=" * 70)
    print("Step 2 — neuron cost model (Table I, n = 27, k = 9)")
    for row in table_i_rows(27, 9):
        print(f"  {row['neuron']:<14s} params={row['parameters']:>4d}  macs={row['macs']:>4d}  "
              f"per-output params={row['parameters_per_output']:.1f}")
    layer = EfficientQuadraticLinear(27, 4, rank=9, rng=np.random.default_rng(1))
    print(f"  instantiated layer: {layer}")
    print(f"  parameter count (Eq. 9 x 4 neurons): {layer.parameter_count()} "
          f"== {4 * neuron_complexity('proposed', 27, 9).parameters}")


def step3_train_on_second_order_task() -> None:
    print("=" * 70)
    print("Step 3 — train on sign(x0*x1), a task linear neurons cannot solve")
    rng = np.random.default_rng(2)
    inputs = rng.standard_normal((400, 6)).astype(np.float32)
    targets = (inputs[:, 0] * inputs[:, 1] > 0).astype(np.int64)

    candidates = {
        "linear": nn.Sequential(nn.Linear(6, 2, rng=np.random.default_rng(3))),
        "proposed quadratic": nn.Sequential(
            EfficientQuadraticLinear(6, 2, rank=3, vectorized_output=False, lambda_init=0.1,
                                     rng=np.random.default_rng(3))),
    }
    for name, model in candidates.items():
        optimizer = Adam(model.parameters(), lr=0.05)
        loss_fn = nn.CrossEntropyLoss()
        for _ in range(60):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(inputs)), targets)
            loss.backward()
            optimizer.step()
        predictions = model(Tensor(inputs)).data.argmax(axis=1)
        print(f"  {name:<20s} train accuracy = {(predictions == targets).mean():.3f}  "
              f"parameters = {model.num_parameters()}")


def step4_drop_in_convolution() -> None:
    print("=" * 70)
    print("Step 4 — drop-in quadratic convolution (Fig. 3)")
    images = Tensor(np.random.default_rng(4).standard_normal((2, 3, 16, 16)).astype(np.float32))
    conv = nn.Conv2d(3, 20, 3, padding=1, rng=np.random.default_rng(5))
    quadratic_conv = EfficientQuadraticConv2d.for_output_channels(
        3, 20, 3, rank=9, padding=1, rng=np.random.default_rng(5))
    print(f"  standard conv : out {conv(images).shape}, parameters {conv.num_parameters()}")
    print(f"  quadratic conv: out {quadratic_conv(images).shape}, "
          f"parameters {quadratic_conv.num_parameters()} "
          f"({quadratic_conv.num_filters} neurons x (k + 1) outputs)")


if __name__ == "__main__":
    step1_decomposition()
    step2_complexity()
    step3_train_on_second_order_task()
    step4_drop_in_convolution()
    print("=" * 70)
    print("Done. See examples/image_classification_resnet.py and "
          "examples/machine_translation_transformer.py for full workloads.")
