"""Image classification with quadratic ResNets (the Fig. 4 workload, small scale).

Trains a linear ResNet and a proposed-quadratic ResNet of the same depth on
the synthetic CIFAR-10 stand-in, then compares accuracy, parameters and MACs —
the same comparison the paper draws in Fig. 4, at a laptop-friendly scale.

Run with::

    python examples/image_classification_resnet.py [--depth 8] [--epochs 12]
"""

import _bootstrap  # noqa: F401  (puts the repo's src/ on sys.path)

import argparse

from repro.experiments import get_scale
from repro.experiments.common import (
    build_image_dataset,
    profile_classifier,
    train_image_classifier,
)
from repro.experiments.reporting import format_table
from repro.models import CifarResNet


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--depth", type=int, default=8, help="ResNet depth (6n + 2)")
    parser.add_argument("--epochs", type=int, default=12, help="training epochs")
    parser.add_argument("--rank", type=int, default=3, help="decomposition rank k")
    parser.add_argument("--base-width", type=int, default=4, help="stage-1 channel width")
    arguments = parser.parse_args()

    scale = get_scale("bench").with_overrides(epochs=arguments.epochs, rank=arguments.rank,
                                              base_width=arguments.base_width)
    dataset = build_image_dataset(scale)
    print(f"dataset: {dataset.describe()}")

    rows = []
    for neuron_type in ("linear", "proposed"):
        model = CifarResNet(arguments.depth, num_classes=scale.num_classes,
                            neuron_type=neuron_type, rank=scale.rank,
                            base_width=scale.base_width, seed=42)
        profile = profile_classifier(model, dataset)
        print(f"\ntraining ResNet-{arguments.depth} with {neuron_type} neurons "
              f"({profile.summary()}) ...")
        trainer, metrics = train_image_classifier(model, dataset, scale)
        rows.append({
            "neuron": neuron_type,
            "test_accuracy": metrics["accuracy"],
            "best_train_accuracy": trainer.history.best("train_accuracy"),
            "parameters": profile.total_parameters,
            "macs": profile.total_macs,
        })

    print()
    print(format_table(rows))
    linear_row, proposed_row = rows
    print(f"\naccuracy difference (proposed - linear): "
          f"{proposed_row['test_accuracy'] - linear_row['test_accuracy']:+.3f}")
    print(f"parameter overhead of the proposed neuron: "
          f"{proposed_row['parameters'] / linear_row['parameters'] - 1:+.1%}")


if __name__ == "__main__":
    main()
