"""Complexity analysis: regenerate Table I and the cost axes of Figs. 4 and 5.

This example needs no training at all — it reproduces every *analytic* claim
of the paper: the per-neuron costs of Table I, the whole-model parameter/MAC
budgets of the CIFAR ResNets, and the savings of the proposed neuron over the
prior quadratic neurons.

Run with::

    python examples/complexity_analysis.py
"""

import _bootstrap  # noqa: F401  (puts the repo's src/ on sys.path)

import numpy as np

from repro.experiments.fig4 import paper_scale_costs
from repro.experiments.reporting import format_table
from repro.metrics import profile_model
from repro.models import CifarResNet
from repro.quadratic import table_i_rows
from repro.tensor import Tensor


def print_table_i() -> None:
    print("=" * 70)
    print("Table I — neuron complexity for a 3x3x3 receptive field (n = 27), k = 9")
    rows = table_i_rows(27, 9)
    print(format_table(rows, columns=["neuron", "formula", "parameters", "macs",
                                      "parameters_per_output", "macs_per_output"]))


def print_paper_scale_resnet_costs() -> None:
    print("=" * 70)
    print("Fig. 4 cost axes — CIFAR ResNets at the paper's scale (32x32, width 16, k = 9)")
    rows = paper_scale_costs(depths=(20, 32, 44, 56), rank=9)
    print(format_table(rows, columns=["model", "parameters_millions", "macs_millions"]))
    by_model = {row["model"]: row for row in rows}
    for quadratic_depth, linear_depth in ((32, 44), (20, 32)):
        quadratic = by_model[f"ResNet-{quadratic_depth}/proposed"]
        linear = by_model[f"ResNet-{linear_depth}/linear"]
        saving = quadratic["parameters_millions"] / linear["parameters_millions"] - 1
        print(f"  quadratic ResNet-{quadratic_depth} vs linear ResNet-{linear_depth}: "
              f"{saving:+.1%} parameters")


def print_fig5_style_savings() -> None:
    print("=" * 70)
    print("Fig. 5 cost comparison — proposed vs Quad-1/Quad-2 at equal depth/width")
    example = Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32))
    profiles = {}
    for neuron_type in ("proposed", "quad1", "quad2"):
        model = CifarResNet(20, neuron_type=neuron_type, rank=9, base_width=16, seed=0)
        profiles[neuron_type] = profile_model(model, example)
    rows = [{"neuron": name, "parameters_millions": profile.parameters_millions,
             "macs_millions": profile.macs_millions}
            for name, profile in profiles.items()]
    print(format_table(rows))
    for baseline in ("quad1", "quad2"):
        saving = profiles["proposed"].total_parameters / profiles[baseline].total_parameters - 1
        print(f"  proposed vs {baseline}: {saving:+.1%} parameters")


if __name__ == "__main__":
    print_table_i()
    print_paper_scale_resnet_costs()
    print_fig5_style_savings()
