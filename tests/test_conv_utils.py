"""Tests for the convolution / unfold / pooling primitives."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    check_gradients,
    col2im,
    conv2d,
    conv_output_size,
    global_avg_pool2d,
    im2col,
    max_pool2d,
    unfold,
)


def _naive_conv2d(x, w, b, stride, padding):
    """Direct quadruple-loop reference convolution."""
    n, c_in, h, width = x.shape
    c_out, _, k, _ = w.shape
    out_h = conv_output_size(h, k, stride, padding)
    out_w = conv_output_size(width, k, stride, padding)
    x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, c_out, out_h, out_w))
    for i in range(out_h):
        for j in range(out_w):
            patch = x_pad[:, :, i * stride:i * stride + k, j * stride:j * stride + k]
            for f in range(c_out):
                out[:, f, i, j] = (patch * w[f]).sum(axis=(1, 2, 3))
    if b is not None:
        out += b[None, :, None, None]
    return out


class TestConvOutputSize:
    @pytest.mark.parametrize("size,k,s,p,expected", [
        (32, 3, 1, 1, 32),
        (32, 3, 2, 1, 16),
        (8, 3, 1, 0, 6),
        (7, 2, 2, 0, 3),
        (5, 5, 1, 2, 5),
    ])
    def test_formula(self, size, k, s, p, expected):
        assert conv_output_size(size, k, s, p) == expected


class TestIm2Col:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_shape(self):
        x = self.rng.standard_normal((2, 3, 8, 8))
        cols = im2col(x, 3, 1, 1)
        assert cols.shape == (2, 8, 8, 27)

    def test_patch_content(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 1, 0)
        # top-left 2x2 patch
        np.testing.assert_allclose(cols[0, 0, 0], [0, 1, 4, 5])
        np.testing.assert_allclose(cols[0, 2, 2], [10, 11, 14, 15])

    def test_col2im_adjointness(self):
        """col2im must be the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = self.rng.standard_normal((2, 3, 6, 6))
        cols = im2col(x, 3, 2, 1)
        y = self.rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 2, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-6)

    def test_unfold_gradcheck(self):
        x = Tensor(self.rng.standard_normal((1, 2, 5, 5)), requires_grad=True)
        check_gradients(lambda: (unfold(x, 3, 2, 1) ** 2).sum(), [x], tolerance=1e-4)


class TestConv2d:
    def setup_method(self):
        self.rng = np.random.default_rng(1)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive_reference(self, stride, padding):
        x = self.rng.standard_normal((2, 3, 7, 7))
        w = self.rng.standard_normal((4, 3, 3, 3))
        b = self.rng.standard_normal(4)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = _naive_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, expected, rtol=1e-5, atol=1e-6)

    def test_no_bias(self):
        x = self.rng.standard_normal((1, 2, 5, 5))
        w = self.rng.standard_normal((3, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), None, padding=1)
        assert out.shape == (1, 3, 5, 5)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((1, 2, 5, 5))), Tensor(np.zeros((3, 4, 3, 3))))

    def test_rectangular_kernel_raises(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((1, 2, 5, 5))), Tensor(np.zeros((3, 2, 3, 2))))

    def test_gradients(self):
        x = Tensor(self.rng.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(self.rng.standard_normal((3, 2, 3, 3)) * 0.3, requires_grad=True)
        b = Tensor(self.rng.standard_normal(3) * 0.1, requires_grad=True)

        def objective():
            return conv2d(x, w, b, stride=2, padding=1).tanh().sum()

        check_gradients(objective, [x, w, b], tolerance=1e-4)

    def test_1x1_convolution(self):
        x = self.rng.standard_normal((2, 4, 6, 6))
        w = self.rng.standard_normal((8, 4, 1, 1))
        out = conv2d(Tensor(x), Tensor(w), None)
        expected = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out.data, expected, rtol=1e-5, atol=1e-6)


class TestPooling:
    def setup_method(self):
        self.rng = np.random.default_rng(2)

    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradients_flow_to_argmax_only(self):
        x = Tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_pool_gradcheck(self):
        x = Tensor(self.rng.standard_normal((1, 2, 6, 6)), requires_grad=True)
        check_gradients(lambda: (max_pool2d(x * 1.0, 2).sum()
                                 + avg_pool2d(x * 1.0, 3, stride=3).sum()), [x],
                        tolerance=1e-4)

    def test_global_avg_pool(self):
        x = self.rng.standard_normal((2, 3, 4, 4))
        out = global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), rtol=1e-5)

    def test_stride_differs_from_kernel(self):
        x = self.rng.standard_normal((1, 1, 6, 6)).astype(np.float32)
        out = max_pool2d(Tensor(x), 3, stride=1)
        assert out.shape == (1, 1, 4, 4)
