"""Finite-difference gradient checks for every autograd primitive."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    check_gradients,
    check_registered_ops,
    max_relative_error,
    numerical_gradient,
    op_names,
)
from repro.tensor import functional as F


def _tensor(shape, seed=0, scale=1.0, positive=False):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape).astype(np.float64) * scale
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


UNARY_CASES = [
    ("exp", lambda t: t.exp(), {}),
    ("log", lambda t: t.log(), {"positive": True}),
    ("sqrt", lambda t: t.sqrt(), {"positive": True}),
    ("tanh", lambda t: t.tanh(), {}),
    ("sigmoid", lambda t: t.sigmoid(), {}),
    ("abs", lambda t: t.abs(), {"scale": 2.0}),
    ("neg", lambda t: -t, {}),
    ("pow3", lambda t: t ** 3, {}),
    ("relu", lambda t: t.relu(), {"scale": 2.0}),
    ("clip", lambda t: t.clip(-0.5, 0.5), {"scale": 2.0}),
    ("reshape", lambda t: t.reshape(-1), {}),
    ("transpose", lambda t: t.transpose(), {}),
    ("getitem", lambda t: t[1:, :2], {}),
    ("pad", lambda t: t.pad(((1, 0), (0, 2))), {}),
    ("sum_axis0", lambda t: t.sum(axis=0), {}),
    ("mean", lambda t: t.mean(axis=1, keepdims=True), {}),
    ("var", lambda t: t.var(axis=0), {}),
    ("max_axis", lambda t: t.max(axis=1), {}),
    ("min", lambda t: t.min(axis=0), {}),
    ("expand_dims", lambda t: t.expand_dims(1), {}),
    ("sigmoid_chain", lambda t: (t * 2 + 1).sigmoid() * t, {}),
]


@pytest.mark.parametrize("name,op,opts", UNARY_CASES, ids=[c[0] for c in UNARY_CASES])
def test_unary_op_gradients(name, op, opts):
    tensor = _tensor((3, 4), seed=hash(name) % 1000, scale=opts.get("scale", 1.0),
                     positive=opts.get("positive", False))

    def objective():
        return (op(tensor) * 1.7).sum()

    report = check_gradients(objective, [tensor], tolerance=1e-4)
    assert max(report.values()) < 1e-4


BINARY_CASES = [
    ("add", lambda a, b: a + b, (3, 4), (3, 4)),
    ("add_broadcast", lambda a, b: a + b, (3, 4), (4,)),
    ("sub", lambda a, b: a - b, (2, 5), (2, 5)),
    ("mul", lambda a, b: a * b, (3, 4), (3, 4)),
    ("mul_broadcast", lambda a, b: a * b, (2, 3, 4), (3, 4)),
    ("div", lambda a, b: a / b, (3, 3), (3, 3)),
    ("matmul", lambda a, b: a @ b, (3, 4), (4, 5)),
    ("matmul_batched", lambda a, b: a @ b, (2, 3, 4), (2, 4, 5)),
    ("matmul_vec", lambda a, b: a @ b, (3, 4), (4,)),
    ("maximum", lambda a, b: a.maximum(b), (4, 4), (4, 4)),
]


@pytest.mark.parametrize("name,op,shape_a,shape_b", BINARY_CASES,
                         ids=[c[0] for c in BINARY_CASES])
def test_binary_op_gradients(name, op, shape_a, shape_b):
    a = _tensor(shape_a, seed=1)
    b = _tensor(shape_b, seed=2, positive=(name == "div"))

    def objective():
        return (op(a, b) ** 2).sum()

    report = check_gradients(objective, [a, b], tolerance=1e-4)
    assert max(report.values()) < 1e-4


def test_cat_gradients():
    a, b = _tensor((2, 3), seed=3), _tensor((2, 2), seed=4)

    def objective():
        return (Tensor.cat([a, b], axis=1) ** 2).sum()

    check_gradients(objective, [a, b], tolerance=1e-4)


def test_stack_gradients():
    a, b = _tensor((2, 3), seed=5), _tensor((2, 3), seed=6)

    def objective():
        return (Tensor.stack([a, b], axis=0).tanh()).sum()

    check_gradients(objective, [a, b], tolerance=1e-4)


def test_softmax_gradients():
    logits = _tensor((4, 6), seed=7)

    def objective():
        return (F.softmax(logits, axis=-1) * Tensor(np.arange(6, dtype=np.float64))).sum()

    check_gradients(objective, [logits], tolerance=1e-4)


def test_log_softmax_gradients():
    logits = _tensor((4, 6), seed=8)

    def objective():
        return (F.log_softmax(logits, axis=-1)[:, 2]).sum()

    check_gradients(objective, [logits], tolerance=1e-4)


def test_cross_entropy_gradients():
    logits = _tensor((5, 4), seed=9)
    targets = np.array([0, 1, 2, 3, 1])

    def objective():
        return F.cross_entropy_with_logits(logits, targets, label_smoothing=0.1)

    check_gradients(objective, [logits], tolerance=1e-4)


def test_gelu_gradients():
    x = _tensor((3, 5), seed=10)

    def objective():
        return F.gelu(x).sum()

    check_gradients(objective, [x], tolerance=1e-4)


def test_numerical_gradient_matches_known_derivative():
    x = Tensor(np.array([2.0], dtype=np.float64), requires_grad=True)
    numeric = numerical_gradient(lambda: (x ** 2).sum(), x)
    np.testing.assert_allclose(numeric, [4.0], rtol=1e-5)


def test_max_relative_error_symmetric():
    a = np.array([1.0, 2.0])
    assert max_relative_error(a, a) == 0.0
    assert max_relative_error(a, a * 1.1) > 0.0


def test_check_gradients_raises_on_missing_gradient():
    used = _tensor((2, 2), seed=11)
    unused = _tensor((2, 2), seed=12)
    with pytest.raises(AssertionError):
        check_gradients(lambda: (used * 2).sum(), [unused])


# ---------------------------------------------------------------------------
# Registry-driven sweep: every registered op, no hand-picked list.
# ---------------------------------------------------------------------------

def test_registry_sweep_covers_every_registered_op():
    report = check_registered_ops(tolerance=1e-4)
    assert sorted(report) == op_names()
    assert max(report.values()) < 1e-4


def test_registry_sweep_accepts_subset():
    report = check_registered_ops(names=["matmul", "quadratic_response"])
    assert sorted(report) == ["matmul", "quadratic_response"]


def test_registry_sweep_rejects_unknown_name():
    with pytest.raises(KeyError):
        check_registered_ops(names=["not_a_real_op"])
