"""End-to-end expressivity tests: quadratic neurons solve problems linear neurons cannot.

These integration tests exercise the full stack (data → model → optimizer →
training loop) on tasks engineered around second-order structure — the
motivation for quadratic neurons in the first place.
"""

import numpy as np
import pytest

from repro import nn
from repro.optim import SGD, Adam
from repro.quadratic import EfficientQuadraticLinear
from repro.tensor import Tensor


def _product_sign_task(n_samples=400, n_features=6, seed=0):
    """Binary task whose label is the sign of x₀·x₁ — invisible to any linear model."""
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal((n_samples, n_features)).astype(np.float32)
    targets = (inputs[:, 0] * inputs[:, 1] > 0).astype(np.int64)
    return inputs, targets


def _train(model, inputs, targets, epochs=60, lr=0.05, optimizer_cls=Adam):
    optimizer = optimizer_cls(model.parameters(), lr=lr)
    loss_fn = nn.CrossEntropyLoss()
    for _ in range(epochs):
        optimizer.zero_grad()
        loss = loss_fn(model(Tensor(inputs)), targets)
        loss.backward()
        optimizer.step()
    logits = model(Tensor(inputs)).data
    return float((logits.argmax(axis=1) == targets).mean())


class TestProductSignTask:
    def test_single_linear_layer_fails(self):
        inputs, targets = _product_sign_task()
        model = nn.Sequential(nn.Linear(6, 2, rng=np.random.default_rng(0)))
        accuracy = _train(model, inputs, targets)
        assert accuracy < 0.7

    def test_single_quadratic_layer_succeeds(self):
        inputs, targets = _product_sign_task()
        model = nn.Sequential(
            EfficientQuadraticLinear(6, 2, rank=3, vectorized_output=False,
                                     lambda_init=0.1, rng=np.random.default_rng(0)))
        accuracy = _train(model, inputs, targets)
        assert accuracy > 0.9

    def test_quadratic_beats_linear_at_equal_parameter_budget(self):
        inputs, targets = _product_sign_task(seed=1)
        linear = nn.Sequential(nn.Linear(6, 2, rng=np.random.default_rng(1)))
        quadratic = nn.Sequential(
            EfficientQuadraticLinear(6, 2, rank=2, vectorized_output=False,
                                     lambda_init=0.1, rng=np.random.default_rng(1)))
        assert _train(quadratic, inputs, targets) > _train(linear, inputs, targets) + 0.15


class TestEndToEndTrainingSGD:
    def test_quadratic_mlp_trains_with_two_learning_rates(self):
        """Full recipe: SGD + separate Λ learning rate, as in the paper's experiments."""
        from repro.optim import split_parameter_groups
        inputs, targets = _product_sign_task(seed=2)
        model = nn.Sequential(
            EfficientQuadraticLinear(6, 4, rank=3, lambda_init=0.05,
                                     rng=np.random.default_rng(2)),
            nn.ReLU(),
            nn.Linear(16, 2, rng=np.random.default_rng(3)))
        groups = split_parameter_groups(model, base_lr=0.05, quadratic_lr=0.005)
        optimizer = SGD(groups, lr=0.05, momentum=0.9)
        loss_fn = nn.CrossEntropyLoss()
        first_loss = None
        for _ in range(80):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(inputs)), targets)
            if first_loss is None:
                first_loss = float(loss.data)
            loss.backward()
            optimizer.step()
        assert float(loss.data) < first_loss * 0.7

    def test_lambda_parameters_move_during_training(self):
        inputs, targets = _product_sign_task(seed=3)
        layer = EfficientQuadraticLinear(6, 2, rank=3, vectorized_output=False,
                                         lambda_init=0.01, rng=np.random.default_rng(4))
        model = nn.Sequential(layer)
        initial = layer.lambdas.data.copy()
        _train(model, inputs, targets, epochs=30)
        assert not np.allclose(layer.lambdas.data, initial)

    def test_quadratic_term_learns_product_structure(self):
        """After training on sign(x₀·x₁), the learned quadratic form must couple x₀ and x₁."""
        inputs, targets = _product_sign_task(seed=4)
        layer = EfficientQuadraticLinear(6, 2, rank=2, vectorized_output=False,
                                         lambda_init=0.1, rng=np.random.default_rng(5))
        _train(nn.Sequential(layer), inputs, targets, epochs=80)
        # Reconstruct the effective quadratic matrix of the first output neuron.
        q = layer.q_weight.data[:, :2].astype(np.float64)
        lam = layer.lambdas.data[0].astype(np.float64)
        matrix = (q * lam) @ q.T
        coupling = abs(matrix[0, 1])
        other = np.abs(matrix[2:, 2:]).max()
        assert coupling > other
