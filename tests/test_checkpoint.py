"""Checkpoint/resume subsystem: serialization, optimizer state, bit-identical resume."""

import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader, standard_cifar_augmentation
from repro.io import CHECKPOINT_VERSION, load_checkpoint, save_checkpoint, to_jsonable
from repro.models import SimpleCNN
from repro.optim import SGD, Adam, MultiStepLR, NoamLR, split_parameter_groups
from repro.tensor import Tensor
from repro.training import History, Trainer


def _bowl(parameter):
    return ((parameter - 3.0) ** 2).sum()


class TestSerialization:
    def test_numpy_and_tuple_keys(self):
        value = {
            ("13a", True): np.float32(1.5),
            "array": np.arange(3),
            "nested": {"tuple": (1, 2), 7: "seven"},
        }
        converted = to_jsonable(value)
        assert converted["13a/True"] == 1.5
        assert converted["array"] == [0, 1, 2]
        assert converted["nested"] == {"tuple": [1, 2], "7": "seven"}


class TestOptimizerStateDict:
    def _trajectory(self, optimizer_factory, steps=5, resume_at=3):
        """Run `steps` steps straight vs save/restore at `resume_at`; compare."""
        p_full = nn.Parameter(np.zeros(4, dtype=np.float64))
        full = optimizer_factory([p_full])
        for _ in range(steps):
            full.zero_grad()
            _bowl(p_full).backward()
            full.step()

        p_a = nn.Parameter(np.zeros(4, dtype=np.float64))
        first = optimizer_factory([p_a])
        for _ in range(resume_at):
            first.zero_grad()
            _bowl(p_a).backward()
            first.step()
        state = first.state_dict()

        p_b = nn.Parameter(p_a.data.copy())
        second = optimizer_factory([p_b])
        second.load_state_dict(state)
        for _ in range(steps - resume_at):
            second.zero_grad()
            _bowl(p_b).backward()
            second.step()
        np.testing.assert_array_equal(p_full.data, p_b.data)

    def test_sgd_momentum_resume_bit_identical(self):
        self._trajectory(lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-2))

    def test_adam_resume_bit_identical(self):
        self._trajectory(lambda ps: Adam(ps, lr=0.1))

    def test_adam_state_contains_moments_and_step(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float64))
        optimizer = Adam([p], lr=0.1)
        optimizer.zero_grad()
        _bowl(p).backward()
        optimizer.step()
        state = optimizer.state_dict()
        assert state["state"]["0"]["step"] == 1
        assert state["state"]["0"]["m"].shape == (2,)
        assert state["param_groups"][0]["lr"] == 0.1

    def test_group_count_mismatch_raises(self):
        p = nn.Parameter(np.zeros(2))
        optimizer = SGD([p], lr=0.1)
        two_groups = SGD([{"params": [nn.Parameter(np.zeros(2))]},
                          {"params": [nn.Parameter(np.zeros(2))]}], lr=0.1)
        with pytest.raises(ValueError):
            optimizer.load_state_dict(two_groups.state_dict())

    def test_scheduler_modified_lr_restored(self):
        p = nn.Parameter(np.zeros(1))
        optimizer = SGD([p], lr=1.0)
        scheduler = MultiStepLR(optimizer, milestones=[1], gamma=0.1)
        scheduler.step()
        assert optimizer.param_groups[0]["lr"] == pytest.approx(0.1)
        saved_opt, saved_sched = optimizer.state_dict(), scheduler.state_dict()

        fresh_p = nn.Parameter(np.zeros(1))
        fresh_opt = SGD([fresh_p], lr=1.0)
        fresh_sched = MultiStepLR(fresh_opt, milestones=[1], gamma=0.1)
        fresh_opt.load_state_dict(saved_opt)
        fresh_sched.load_state_dict(saved_sched)
        assert fresh_opt.param_groups[0]["lr"] == pytest.approx(0.1)
        assert fresh_sched.last_step == 1
        # The next decay continues from the restored counter.
        fresh_sched.step()
        assert fresh_opt.param_groups[0]["lr"] == pytest.approx(0.1)

    def test_noam_scheduler_state_roundtrip(self):
        p = nn.Parameter(np.zeros(1))
        optimizer = SGD([p], lr=1.0)
        scheduler = NoamLR(optimizer, model_dim=64, warmup_steps=10)
        for _ in range(7):
            scheduler.step()
        fresh_opt = SGD([nn.Parameter(np.zeros(1))], lr=1.0)
        fresh = NoamLR(fresh_opt, model_dim=64, warmup_steps=10)
        fresh.load_state_dict(scheduler.state_dict())
        assert fresh_opt.param_groups[0]["lr"] == pytest.approx(
            optimizer.param_groups[0]["lr"])


class TestClipGradNorm:
    def test_scales_in_place(self):
        p = nn.Parameter(np.zeros(3, dtype=np.float64))
        optimizer = SGD([p], lr=0.1)
        optimizer.zero_grad()
        (p * Tensor(np.array([100.0, 100.0, 100.0]))).sum().backward()
        grad_before = p.grad
        norm = optimizer.clip_grad_norm(1.0)
        assert p.grad is grad_before, "clipping must not reallocate the gradient"
        assert norm == pytest.approx(np.sqrt(3) * 100, rel=1e-5)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)


class TestModuleLoadStateDict:
    def _block(self):
        model = nn.Sequential(nn.Linear(3, 4, rng=np.random.default_rng(0)))
        return model

    def test_missing_keys_raise(self):
        model = self._block()
        state = model.state_dict()
        state.pop(sorted(state)[0])
        with pytest.raises(KeyError, match="missing keys"):
            model.load_state_dict(state)

    def test_error_reports_both_lists(self):
        model = self._block()
        state = model.state_dict()
        removed = sorted(state)[0]
        state.pop(removed)
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError) as excinfo:
            model.load_state_dict(state)
        assert removed in str(excinfo.value)
        assert "bogus" in str(excinfo.value)

    def test_non_strict_returns_both_lists(self):
        model = self._block()
        state = model.state_dict()
        removed = sorted(state)[0]
        state.pop(removed)
        state["bogus"] = np.zeros(1)
        missing, unexpected = model.load_state_dict(state, strict=False)
        assert missing == [removed]
        assert unexpected == ["bogus"]

    def test_shape_mismatch_raises(self):
        model = self._block()
        state = model.state_dict()
        key = sorted(state)[0]
        state[key] = np.zeros((1, 1), dtype=state[key].dtype)
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state)

    def test_shape_mismatch_writes_nothing(self):
        # Shapes are validated before any assignment: a mismatch must not
        # leave the module half-loaded.
        model = self._block()
        before = {name: value.copy() for name, value in model.state_dict().items()}
        state = model.state_dict()
        keys = sorted(state)
        state[keys[0]] = state[keys[0]] + 1.0          # valid, would change the model
        state[keys[-1]] = np.zeros((1, 1), dtype=state[keys[-1]].dtype)  # invalid
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[name])


class TestDataLoaderRNG:
    def _data(self):
        rng = np.random.default_rng(0)
        return rng.standard_normal((20, 3, 6, 6)).astype(np.float32), rng.integers(0, 3, 20)

    def test_shuffle_order_independent_of_augmentation(self):
        inputs, targets = self._data()
        plain = DataLoader(inputs, targets, batch_size=4, shuffle=True, seed=7)
        augmented = DataLoader(inputs, targets, batch_size=4, shuffle=True, seed=7,
                               augmentation=standard_cifar_augmentation(1))
        for _ in range(3):  # same example order every epoch, with or without augmentation
            plain_targets = [batch_targets for _, batch_targets in plain]
            augmented_targets = [batch_targets for _, batch_targets in augmented]
            for a, b in zip(plain_targets, augmented_targets):
                np.testing.assert_array_equal(a, b)

    def test_state_roundtrip_reproduces_batches(self):
        inputs, targets = self._data()
        loader = DataLoader(inputs, targets, batch_size=4, shuffle=True, seed=3,
                            augmentation=standard_cifar_augmentation(1))
        list(loader)  # advance one epoch
        state = loader.state_dict()
        epoch_a = [(bi.copy(), bt.copy()) for bi, bt in loader]

        other = DataLoader(inputs, targets, batch_size=4, shuffle=True, seed=3,
                           augmentation=standard_cifar_augmentation(1))
        other.load_state_dict(state)
        epoch_b = list(other)
        for (inputs_a, targets_a), (inputs_b, targets_b) in zip(epoch_a, epoch_b):
            np.testing.assert_array_equal(inputs_a, inputs_b)
            np.testing.assert_array_equal(targets_a, targets_b)

    def test_mid_epoch_state_resumes_remaining_batches(self):
        inputs, targets = self._data()

        def fresh():
            return DataLoader(inputs, targets, batch_size=4, shuffle=True, seed=3,
                              augmentation=standard_cifar_augmentation(1))

        reference = fresh()
        iterator = iter(reference)
        consumed = [next(iterator) for _ in range(2)]
        state = reference.state_dict()  # mid-epoch: carries the cursor
        assert state["cursor"]["batch_index"] == 2
        remaining = [(bi.copy(), bt.copy()) for bi, bt in iterator]
        next_epoch = [(bi.copy(), bt.copy()) for bi, bt in reference]

        resumed = fresh()
        resumed.load_state_dict(state)
        resumed_remaining = list(resumed)
        assert len(resumed_remaining) == len(remaining)
        for (a_in, a_t), (b_in, b_t) in zip(remaining, resumed_remaining):
            np.testing.assert_array_equal(a_in, b_in)
            np.testing.assert_array_equal(a_t, b_t)
        # The epoch after the resumed one matches too (RNG streams line up),
        # and none of the already-consumed batches are replayed.
        for (a_in, a_t), (b_in, b_t) in zip(next_epoch, resumed):
            np.testing.assert_array_equal(a_in, b_in)
            np.testing.assert_array_equal(a_t, b_t)
        assert len(consumed) == 2

    def test_v1_epoch_boundary_state_loads_unchanged(self):
        inputs, targets = self._data()
        loader = DataLoader(inputs, targets, batch_size=4, shuffle=True, seed=3)
        list(loader)  # one full epoch; state is the v1 two-stream format
        state = loader.state_dict()
        assert "cursor" not in state
        reference = [bt.copy() for _, bt in loader]

        resumed = DataLoader(inputs, targets, batch_size=4, shuffle=True, seed=3)
        resumed.load_state_dict(state)
        for a, (_, b) in zip(reference, resumed):
            np.testing.assert_array_equal(a, b)


class TestHistoryJSON:
    def test_roundtrip(self):
        history = History()
        history.append(epoch=1, train_loss=0.5, diverged=False)
        history.append(epoch=2, train_loss=float("inf"), diverged=True)
        restored = History.from_json(history.to_json())
        assert restored.to_list() == history.to_list()

    def test_save_load(self, tmp_path):
        history = History()
        history.append(epoch=1, train_loss=np.float32(0.25))
        path = history.save(tmp_path / "history.json")
        restored = History.load(path)
        assert restored.last("train_loss") == pytest.approx(0.25)


class TestCheckpointFile:
    def test_roundtrip_preserves_dtype_and_values(self, tmp_path):
        model = nn.Sequential(nn.Linear(3, 2, rng=np.random.default_rng(1)))
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        rng = np.random.default_rng(9)
        rng.standard_normal(5)  # advance the stream
        path = save_checkpoint(tmp_path / "ckpt.npz", model=model, optimizer=optimizer,
                               rng=rng, extra={"epoch": 3})
        checkpoint = load_checkpoint(path)
        assert checkpoint.version == CHECKPOINT_VERSION
        assert checkpoint.extra["epoch"] == 3
        for name, value in model.state_dict().items():
            stored = checkpoint.sections["model"][name]
            assert stored.dtype == value.dtype
            np.testing.assert_array_equal(stored, value)
        fresh_rng = np.random.default_rng(0)
        checkpoint.restore(rng=fresh_rng)
        np.testing.assert_array_equal(fresh_rng.standard_normal(4),
                                      rng.standard_normal(4))

    def test_future_version_refused(self, tmp_path):
        model = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(0)))
        path = save_checkpoint(tmp_path / "future.npz", model=model,
                               version=CHECKPOINT_VERSION + 1)
        with pytest.raises(ValueError, match="format version"):
            load_checkpoint(path)

    def test_missing_section_raises_on_restore(self, tmp_path):
        model = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(0)))
        path = save_checkpoint(tmp_path / "model_only.npz", model=model)
        optimizer = SGD(model.parameters(), lr=0.1)
        with pytest.raises(KeyError, match="optimizer"):
            load_checkpoint(path).restore(optimizer=optimizer)

    def test_missing_section_restores_nothing(self, tmp_path):
        # Sections are validated before any restore: the model must be
        # untouched when a later-requested section is absent.
        source = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(0)))
        path = save_checkpoint(tmp_path / "model_only.npz", model=source)
        target = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(4)))
        optimizer = SGD(target.parameters(), lr=0.1)
        before = {name: value.copy() for name, value in target.state_dict().items()}
        with pytest.raises(KeyError, match="optimizer"):
            load_checkpoint(path).restore(model=target, optimizer=optimizer)
        for name, value in target.state_dict().items():
            np.testing.assert_array_equal(value, before[name])

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_identical_state_hashes_identically(self, tmp_path):
        # The writer pins zip timestamps/compression, so checkpoint bytes are
        # a pure function of the state — the property the CI sha256 gates use.
        import hashlib
        import time

        model = nn.Sequential(nn.Linear(3, 2, rng=np.random.default_rng(1)))
        first = save_checkpoint(tmp_path / "a.npz", model=model,
                                extra={"epoch": 1})
        time.sleep(1.1)  # cross a zip mtime granularity boundary
        second = save_checkpoint(tmp_path / "b.npz", model=model,
                                 extra={"epoch": 1})
        assert hashlib.sha256(first.read_bytes()).hexdigest() == \
            hashlib.sha256(second.read_bytes()).hexdigest()

    def test_version_1_checkpoints_still_load(self, tmp_path):
        # Version 2 added the deterministic writer and mid-epoch loader
        # cursors; the reader must keep accepting v1 files unchanged.
        model = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(0)))
        path = save_checkpoint(tmp_path / "v1.npz", model=model, version=1)
        checkpoint = load_checkpoint(path)
        assert checkpoint.version == 1
        target = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(4)))
        checkpoint.restore(model=target)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(target.state_dict()[name], value)


def _make_trainer():
    model = SimpleCNN(num_classes=4, neuron_type="proposed", rank=2, base_width=4,
                      image_size=8, seed=3)
    groups = split_parameter_groups(model, base_lr=0.05, quadratic_lr=1e-3)
    optimizer = SGD(groups, lr=0.05, momentum=0.9, weight_decay=1e-4)
    scheduler = MultiStepLR(optimizer, milestones=[2, 3], gamma=0.1)
    return Trainer(model, optimizer, nn.CrossEntropyLoss(), scheduler=scheduler)


def _make_loader(inputs, targets):
    return DataLoader(inputs, targets, batch_size=16, shuffle=True,
                      augmentation=standard_cifar_augmentation(1), seed=5)


@pytest.mark.slow
class TestTrainerResume:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.inputs = rng.standard_normal((48, 3, 8, 8)).astype(np.float32)
        self.targets = rng.integers(0, 4, 48)
        self.eval_inputs = rng.standard_normal((16, 3, 8, 8)).astype(np.float32)
        self.eval_targets = rng.integers(0, 4, 16)

    def test_resume_reproduces_uninterrupted_run_bit_identically(self, tmp_path):
        # Uninterrupted reference: 4 epochs straight through.
        straight = _make_trainer()
        straight_history = straight.fit(
            _make_loader(self.inputs, self.targets), 4,
            eval_inputs=self.eval_inputs, eval_targets=self.eval_targets)

        # Interrupt after epoch 2 (checkpoint written), then resume to epoch 4.
        interrupted = _make_trainer()
        interrupted.fit(_make_loader(self.inputs, self.targets), 2,
                        eval_inputs=self.eval_inputs, eval_targets=self.eval_targets,
                        checkpoint_dir=tmp_path, checkpoint_every=2)
        resumed = _make_trainer()
        resumed_history = resumed.fit(
            _make_loader(self.inputs, self.targets), 4,
            eval_inputs=self.eval_inputs, eval_targets=self.eval_targets,
            resume_from=tmp_path / "last.npz")

        assert resumed_history.to_list() == straight_history.to_list()
        straight_params = dict(straight.model.named_parameters())
        for name, parameter in resumed.model.named_parameters():
            np.testing.assert_array_equal(parameter.data, straight_params[name].data)
        for (_, buffer_a), (_, buffer_b) in zip(resumed.model.named_buffers(),
                                                straight.model.named_buffers()):
            np.testing.assert_array_equal(buffer_a, buffer_b)

    def test_best_checkpoint_and_epoch_files_written(self, tmp_path):
        trainer = _make_trainer()
        trainer.fit(_make_loader(self.inputs, self.targets), 2,
                    eval_inputs=self.eval_inputs, eval_targets=self.eval_targets,
                    checkpoint_dir=tmp_path, checkpoint_every=1)
        assert (tmp_path / "best.npz").exists()
        assert (tmp_path / "last.npz").exists()
        assert (tmp_path / "epoch_0001.npz").exists()
        assert (tmp_path / "epoch_0002.npz").exists()
        assert trainer.best_epoch is not None
        assert trainer.best_metric is not None

    def test_resume_without_loader_section_raises(self, tmp_path):
        # A checkpoint saved without loader state cannot silently back a
        # bit-identical resume — requesting one must fail loudly.
        trainer = _make_trainer()
        trainer.save_checkpoint(tmp_path / "no_loader.npz")
        fresh = _make_trainer()
        with pytest.raises(KeyError, match="loader"):
            fresh.fit(_make_loader(self.inputs, self.targets), 4,
                      resume_from=tmp_path / "no_loader.npz")

    def test_second_fit_resets_best_tracking(self):
        trainer = _make_trainer()
        trainer.fit(_make_loader(self.inputs, self.targets), 1,
                    eval_inputs=self.eval_inputs, eval_targets=self.eval_targets)
        stage_one_best = trainer.best_metric
        assert stage_one_best is not None
        trainer.stopped_early = True  # stale state a fresh fit must clear
        trainer.fit(_make_loader(self.inputs, self.targets), 1,
                    eval_inputs=self.eval_inputs, eval_targets=self.eval_targets)
        assert not trainer.stopped_early
        assert trainer.best_epoch == 1  # re-established by stage two, not inherited

    def test_early_stopping_on_flat_metric(self):
        trainer = _make_trainer()
        for group in trainer.optimizer.param_groups:
            group["lr"] = 0.0  # loss can never improve after the first epoch
        trainer.scheduler = None
        # Identical batches every epoch (no shuffle/augmentation) + lr 0 ⇒ flat loss.
        loader = DataLoader(self.inputs, self.targets, batch_size=16, shuffle=False)
        history = trainer.fit(loader, 10, early_stopping_patience=2)
        assert trainer.stopped_early
        assert len(history) == 3  # best at epoch 1 + 2 patience epochs
        assert trainer.best_epoch == 1
