"""Tests for the Table I / Eq. (9) / Eq. (10) cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quadratic import (
    NEURON_FORMULAS,
    neuron_complexity,
    proposed_mac_count,
    proposed_parameter_count,
    table_i_rows,
)


class TestProposedCounts:
    def test_eq9_parameter_count(self):
        # (k+1)n + k with n=27, k=9 -> 279
        assert proposed_parameter_count(27, 9) == 279

    def test_eq10_mac_count(self):
        # (k+1)n + 2k with n=27, k=9 -> 288
        assert proposed_mac_count(27, 9) == 288

    def test_per_output_costs_near_linear(self):
        cost = neuron_complexity("proposed", 100, 9)
        assert cost.parameters_per_output == pytest.approx(100 + 9 / 10)
        assert cost.macs_per_output == pytest.approx(100 + 18 / 10)

    def test_outputs_per_neuron(self):
        assert neuron_complexity("proposed", 27, 9).outputs_per_neuron == 10
        assert neuron_complexity("linear", 27, 9).outputs_per_neuron == 1


class TestTableIFormulas:
    @pytest.mark.parametrize("neuron,params,macs", [
        ("linear", 27, 27),
        ("general", 27 * 27 + 27, 27 * 27 + 54),
        ("pure", 27 * 27, 27 * 27 + 27),
        ("quad_residual", 54, 54),
        ("factorized", 2 * 9 * 27 + 27, 2 * 9 * 27 + 9),
        ("quad1", 81, 108),
        ("quad2", 81, 81),
        ("proposed", 279, 288),
    ])
    def test_counts_for_n27_k9(self, neuron, params, macs):
        cost = neuron_complexity(neuron, 27, 9)
        assert cost.parameters == params
        assert cost.macs == macs

    def test_unknown_neuron_type(self):
        with pytest.raises(KeyError):
            neuron_complexity("cubic", 10)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            neuron_complexity("linear", 0)
        with pytest.raises(ValueError):
            neuron_complexity("proposed", 10, 0)

    def test_registry_covers_all_table_rows(self):
        rows = table_i_rows(27, 9)
        assert {row["neuron"] for row in rows} == set(NEURON_FORMULAS)

    def test_table_rows_contain_per_output_costs(self):
        rows = {row["neuron"]: row for row in table_i_rows(64, 4)}
        assert rows["proposed"]["parameters_per_output"] < rows["quad2"]["parameters_per_output"]
        assert rows["proposed"]["macs_per_output"] < rows["quad1"]["macs_per_output"]


class TestOrderingProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=4, max_value=512), st.integers(min_value=1, max_value=16))
    def test_proposed_cheaper_per_output_than_prior_quadratics(self, n, k):
        """The proposed neuron's per-output cost beats every prior quadratic design."""
        proposed = neuron_complexity("proposed", n, k)
        for baseline in ("general", "pure", "quad1", "quad2", "factorized"):
            cost = neuron_complexity(baseline, n, k)
            assert proposed.parameters_per_output < cost.parameters_per_output
            assert proposed.macs_per_output <= cost.macs_per_output

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=2, max_value=512), st.integers(min_value=1, max_value=16))
    def test_proposed_per_output_overhead_bounded(self, n, k):
        """Per-output overhead over a linear neuron is < 1 parameter and < 2 MACs (Sec. III-C)."""
        proposed = neuron_complexity("proposed", n, k)
        linear = neuron_complexity("linear", n, k)
        assert proposed.parameters_per_output - linear.parameters < 1.0
        assert proposed.macs_per_output - linear.macs < 2.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=256), st.integers(min_value=1, max_value=8))
    def test_factorized_cost_grows_with_k_but_proposed_per_output_does_not(self, n, k):
        """Table I claim: [18] pays 2kn for rank k; the proposed neuron amortizes it away."""
        factorized_k = neuron_complexity("factorized", n, k)
        factorized_k1 = neuron_complexity("factorized", n, k + 1)
        assert factorized_k1.parameters - factorized_k.parameters == 2 * n

        proposed_k = neuron_complexity("proposed", n, k)
        proposed_k1 = neuron_complexity("proposed", n, k + 1)
        assert proposed_k1.parameters_per_output - proposed_k.parameters_per_output < 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=128))
    def test_general_quadratic_cost(self, n):
        assert neuron_complexity("general", n).parameters == n * n + n
