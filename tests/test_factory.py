"""Tests for the neuron-type factory used by the model zoo."""

import numpy as np
import pytest

from repro.quadratic import CONV_NEURON_TYPES, DENSE_NEURON_TYPES, make_conv, make_dense
from repro.tensor import Tensor


RNG = np.random.default_rng(0)


class TestConvFactory:
    @pytest.mark.parametrize("neuron_type", sorted(CONV_NEURON_TYPES))
    def test_every_type_produces_requested_geometry(self, neuron_type):
        layer = make_conv(neuron_type, 3, 12, 3, stride=1, padding=1, rank=3,
                          rng=np.random.default_rng(1))
        out = layer(Tensor(RNG.standard_normal((2, 3, 6, 6)).astype(np.float32)))
        assert out.shape == (2, 12, 6, 6)

    @pytest.mark.parametrize("neuron_type", sorted(CONV_NEURON_TYPES))
    def test_every_type_supports_stride(self, neuron_type):
        layer = make_conv(neuron_type, 3, 8, 3, stride=2, padding=1, rank=3,
                          rng=np.random.default_rng(2))
        out = layer(Tensor(RNG.standard_normal((1, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 8, 4, 4)

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            make_conv("septic", 3, 8, 3)

    def test_registry_contains_expected_types(self):
        assert {"linear", "proposed", "quad1", "quad2", "kervolution",
                "factorized", "general", "pure", "quad_residual"} <= set(CONV_NEURON_TYPES)

    def test_proposed_cost_close_to_linear(self):
        # 30 output channels with rank 9 → exactly 3 neurons, no ceiling effect.
        linear = make_conv("linear", 8, 30, 3, rank=9, bias=False,
                           rng=np.random.default_rng(3))
        proposed = make_conv("proposed", 8, 30, 3, rank=9, bias=False,
                             rng=np.random.default_rng(3))
        quad2 = make_conv("quad2", 8, 30, 3, rank=9, bias=False,
                          rng=np.random.default_rng(3))
        # The proposed layer stays within ~2% of the plain convolution while
        # Quad-2 pays the full 3x factor of Table I.
        assert proposed.num_parameters() < 1.02 * linear.num_parameters()
        assert quad2.num_parameters() == pytest.approx(3 * linear.num_parameters(), rel=1e-6)

    def test_neuron_kwargs_forwarded(self):
        layer = make_conv("kervolution", 3, 4, 3, rng=np.random.default_rng(4), degree=4)
        assert layer.degree == 4


class TestDenseFactory:
    @pytest.mark.parametrize("neuron_type", sorted(DENSE_NEURON_TYPES))
    def test_every_type_produces_requested_geometry(self, neuron_type):
        layer = make_dense(neuron_type, 10, 7, rank=3, rng=np.random.default_rng(5))
        out = layer(Tensor(RNG.standard_normal((4, 10)).astype(np.float32)))
        assert out.shape == (4, 7)

    @pytest.mark.parametrize("neuron_type", ["linear", "proposed", "quad2"])
    def test_sequence_inputs_supported(self, neuron_type):
        layer = make_dense(neuron_type, 10, 8, rank=3, rng=np.random.default_rng(6))
        out = layer(Tensor(RNG.standard_normal((2, 5, 10)).astype(np.float32)))
        assert out.shape == (2, 5, 8)

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            make_dense("cubic", 4, 4)
